"""Shared analysis utilities: increase rates and empirical CDFs."""

from repro.analysis.cdf import empirical_cdf, fraction_at_value, value_at_fraction
from repro.analysis.stats import (
    ConfidenceInterval,
    bootstrap_mean_ci,
    means_differ,
    percentile_band,
)
from repro.analysis.sensitivity import (
    Sensitivity,
    parameter_sensitivity,
    render_sensitivity,
    sensitivity_matrix,
)
from repro.analysis.rates import (
    RateSummary,
    fit_slope,
    increase_rates,
    is_convex,
    summarize_rates,
)

__all__ = [
    "ConfidenceInterval",
    "RateSummary",
    "Sensitivity",
    "parameter_sensitivity",
    "render_sensitivity",
    "sensitivity_matrix",
    "bootstrap_mean_ci",
    "means_differ",
    "percentile_band",
    "empirical_cdf",
    "fit_slope",
    "fraction_at_value",
    "increase_rates",
    "is_convex",
    "summarize_rates",
    "value_at_fraction",
]
