"""Calibration sensitivity analysis.

DESIGN.md anchors the simulator to the paper's measured numbers via the
constants in :class:`~repro.xen.calibration.XenCalibration`.  This
module quantifies how sensitive a reproduced output is to each
constant: perturb one parameter by a relative delta, re-evaluate an
output functional, and report the elasticity

    (dOutput / Output) / (dParam / Param).

High-elasticity constants are the load-bearing ones -- the sensitivity
benchmark documents that the headline anchors respond to their intended
parameters and not to incidental ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence

from repro.xen.calibration import DEFAULT_CALIBRATION, XenCalibration

#: An output functional: calibration -> scalar observable.
OutputFn = Callable[[XenCalibration], float]


@dataclass(frozen=True)
class Sensitivity:
    """Elasticity of one output with respect to one parameter."""

    parameter: str
    output: str
    base_value: float
    perturbed_value: float
    elasticity: float

    @property
    def significant(self) -> bool:
        """Whether the output visibly responds (|elasticity| > 0.05)."""
        return abs(self.elasticity) > 0.05


def parameter_sensitivity(
    parameter: str,
    output_name: str,
    output_fn: OutputFn,
    *,
    calibration: XenCalibration = DEFAULT_CALIBRATION,
    rel_delta: float = 0.1,
) -> Sensitivity:
    """Central-difference elasticity of ``output_fn`` w.r.t. ``parameter``."""
    if not hasattr(calibration, parameter):
        raise ValueError(f"unknown calibration parameter {parameter!r}")
    if not 0.0 < rel_delta < 1.0:
        raise ValueError("rel_delta must be in (0, 1)")
    base_param = getattr(calibration, parameter)
    if base_param == 0:
        raise ValueError(f"parameter {parameter!r} is zero; elasticity undefined")
    base_out = output_fn(calibration)
    hi = output_fn(
        calibration.with_overrides(**{parameter: base_param * (1 + rel_delta)})
    )
    lo = output_fn(
        calibration.with_overrides(**{parameter: base_param * (1 - rel_delta)})
    )
    if base_out == 0:
        raise ValueError(f"output {output_name!r} is zero at baseline")
    elasticity = ((hi - lo) / base_out) / (2 * rel_delta)
    return Sensitivity(
        parameter=parameter,
        output=output_name,
        base_value=base_out,
        perturbed_value=hi,
        elasticity=elasticity,
    )


def sensitivity_matrix(
    parameters: Sequence[str],
    outputs: Dict[str, OutputFn],
    *,
    calibration: XenCalibration = DEFAULT_CALIBRATION,
    rel_delta: float = 0.1,
) -> Dict[str, Dict[str, Sensitivity]]:
    """Elasticity of every output w.r.t. every parameter."""
    if not parameters or not outputs:
        raise ValueError("parameters and outputs must be non-empty")
    return {
        param: {
            name: parameter_sensitivity(
                param, name, fn, calibration=calibration, rel_delta=rel_delta
            )
            for name, fn in outputs.items()
        }
        for param in parameters
    }


def render_sensitivity(matrix: Dict[str, Dict[str, Sensitivity]]) -> str:
    """Fixed-width elasticity table."""
    outputs = sorted(next(iter(matrix.values())))
    width = max(len(p) for p in matrix) + 2
    lines = [
        "".ljust(width) + "  ".join(f"{o:>14}" for o in outputs),
    ]
    for param in sorted(matrix):
        row = matrix[param]
        cells = "  ".join(f"{row[o].elasticity:>14.3f}" for o in outputs)
        lines.append(param.ljust(width) + cells)
    return "\n".join(lines)
