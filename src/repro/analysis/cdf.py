"""Empirical CDF helpers for the Figure 7-9 error plots."""

from __future__ import annotations

import numpy as np


def empirical_cdf(values) -> tuple[np.ndarray, np.ndarray]:
    """``(sorted values, cumulative fraction in percent)``.

    The y-axis is in percent to match the paper's "CDF of prediction
    error (%)" axes.
    """
    v = np.sort(np.asarray(values, dtype=float))
    if v.size == 0:
        raise ValueError("no values")
    frac = 100.0 * np.arange(1, len(v) + 1) / len(v)
    return v, frac


def value_at_fraction(values, fraction_pct: float) -> float:
    """Smallest value v with ``CDF(v) >= fraction_pct``."""
    if not (0.0 < fraction_pct <= 100.0):
        raise ValueError("fraction_pct must be in (0, 100]")
    v, frac = empirical_cdf(values)
    idx = int(np.searchsorted(frac, fraction_pct))
    idx = min(idx, len(v) - 1)
    return float(v[idx])


def fraction_at_value(values, threshold: float) -> float:
    """CDF evaluated at ``threshold``, in percent."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ValueError("no values")
    return 100.0 * float(np.mean(v <= threshold))
