"""Resampling statistics for experiment summaries.

The paper's Figure 10 error bars show the 10th/90th percentile over 10
placement trials.  These helpers add the standard machinery for
reporting such small-sample results honestly: bootstrap confidence
intervals for means and percentile bands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.sim.rng import generator_from_seed


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided interval around a point estimate."""

    point: float
    lo: float
    hi: float
    level: float

    def __post_init__(self) -> None:
        if not self.lo <= self.hi:
            raise ValueError("interval bounds out of order")
        if not 0.0 < self.level < 1.0:
            raise ValueError("level must be in (0, 1)")

    @property
    def halfwidth(self) -> float:
        """Half the interval width."""
        return (self.hi - self.lo) / 2.0

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies in the interval."""
        return self.lo <= value <= self.hi


def bootstrap_mean_ci(
    values,
    *,
    level: float = 0.9,
    n_resamples: int = 2000,
    rng: Optional[np.random.Generator] = None,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI for the mean of ``values``."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ValueError("no values")
    if not 0.0 < level < 1.0:
        raise ValueError("level must be in (0, 1)")
    if n_resamples < 10:
        raise ValueError("n_resamples must be >= 10")
    rng = rng or generator_from_seed(0)
    idx = rng.integers(0, len(v), size=(n_resamples, len(v)))
    means = v[idx].mean(axis=1)
    alpha = (1.0 - level) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return ConfidenceInterval(
        point=float(v.mean()), lo=float(lo), hi=float(hi), level=level
    )


def percentile_band(
    values, *, lo_pct: float = 10.0, hi_pct: float = 90.0
) -> Tuple[float, float]:
    """The paper's error-bar band: (lo, hi) percentiles of the trials."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ValueError("no values")
    if not 0.0 <= lo_pct < hi_pct <= 100.0:
        raise ValueError("need 0 <= lo_pct < hi_pct <= 100")
    return (
        float(np.percentile(v, lo_pct)),
        float(np.percentile(v, hi_pct)),
    )


def means_differ(
    a,
    b,
    *,
    level: float = 0.9,
    n_resamples: int = 2000,
    rng: Optional[np.random.Generator] = None,
) -> bool:
    """Bootstrap test: does mean(a) - mean(b) exclude zero?

    Used by the Figure 10 analysis to state "VOA beats VOU" with a
    resampling justification rather than a bare mean comparison.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    rng = rng or generator_from_seed(0)
    idx_a = rng.integers(0, len(a), size=(n_resamples, len(a)))
    idx_b = rng.integers(0, len(b), size=(n_resamples, len(b)))
    diffs = a[idx_a].mean(axis=1) - b[idx_b].mean(axis=1)
    alpha = (1.0 - level) / 2.0
    lo, hi = np.quantile(diffs, [alpha, 1.0 - alpha])
    return lo > 0.0 or hi < 0.0
