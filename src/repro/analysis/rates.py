"""Increase-rate analysis (paper Section IV).

The paper characterizes every overhead curve by its *increase rate*
``dY/dX`` -- "the increase of Y value for each unit increase of X
value" -- and frequently reports how the rate grows along the curve
(e.g. Dom0 CPU rate growing from 0.01 to 0.31 under CPU load).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def increase_rates(xs, ys) -> np.ndarray:
    """Pairwise ``dY/dX`` along a curve sampled at increasing ``xs``."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("xs and ys must be equal-length 1-D arrays")
    if len(x) < 2:
        raise ValueError("need at least two points")
    dx = np.diff(x)
    if np.any(dx <= 0):
        raise ValueError("xs must be strictly increasing")
    return np.diff(y) / dx


@dataclass(frozen=True)
class RateSummary:
    """First/last/overall increase rates of one curve."""

    initial: float
    final: float
    overall: float

    @property
    def growth(self) -> float:
        """``final / initial`` (inf when the initial rate is ~0)."""
        if abs(self.initial) < 1e-12:
            return float("inf")
        return self.final / self.initial


def summarize_rates(xs, ys) -> RateSummary:
    """The paper-style rate summary of a swept curve."""
    rates = increase_rates(xs, ys)
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    overall = (y[-1] - y[0]) / (x[-1] - x[0])
    return RateSummary(
        initial=float(rates[0]), final=float(rates[-1]), overall=float(overall)
    )


def fit_slope(xs, ys) -> float:
    """Least-squares slope of y on x (for "constant increase rate" checks)."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if len(x) < 2:
        raise ValueError("need at least two points")
    xc = x - x.mean()
    denom = float(np.dot(xc, xc))
    if denom == 0:
        raise ValueError("xs are all identical")
    return float(np.dot(xc, y - y.mean()) / denom)


def is_convex(ys, *, tolerance: float = 1e-9) -> bool:
    """Whether a uniformly sampled curve has non-decreasing increments."""
    y = np.asarray(ys, dtype=float)
    if len(y) < 3:
        raise ValueError("need at least three points")
    increments = np.diff(y)
    return bool(np.all(np.diff(increments) >= -tolerance))
