"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands
-----------
``repro list``
    Enumerate every reproducible artifact id.
``repro run fig2a [--fast] [--out DIR]``
    Reproduce one artifact (or a whole group like ``fig2``) and print
    the series and shape-check verdicts; non-zero exit if a check fails.
``repro all [--fast]``
    The full reproduction sweep.
``repro chaos [sweep] [--fast] [--dropout F] [--outliers F]``
    Fault-injection sweep: model degradation under monitor faults plus
    a placement-resilience run with flaky migrations.  ``--seed N``
    pins the placement seed and ``--plan-out PLAN.json`` captures the
    concrete fault schedule as a replayable plan.
``repro chaos fuzz [--seed N] [--runs N] [--out-dir DIR]``
    Deterministic chaos-fuzz campaign: sample fault plans across every
    fault surface, execute them through the sim/serve/worker stacks,
    check the invariant oracles, shrink any violation to a minimal
    replayable plan, and write a ``resilience.json`` scorecard.
``repro chaos replay PLAN.json``
    Re-execute a captured or fuzzed fault plan bit-identically and
    re-check the oracles; exit 1 if any invariant fails.
``repro chaos shrink PLAN.json [--out FILE]``
    Delta-debug a failing plan down to a minimal plan that still
    violates the same oracle(s).
``repro lint [paths ...]``
    Determinism/correctness static analysis (REPxxx rules) over the
    source tree; nonzero exit on any violation.
``repro cache stats|clear [--cache-dir DIR]``
    Inspect or empty the content-addressed result cache.
``repro runs status|resume|gc DIR``
    Inspect, continue, or clean a crash-safe run directory.
``repro fleet [--pms N] [--vms N] [--clients N] [--shards N] [--fast]``
    Datacenter-scale VOA-vs-VOU experiment over the sharded fleet
    simulator with streaming per-cell aggregation; artifacts are
    byte-identical at any ``--shards`` value and serial vs ``--jobs``.
``repro bench [--fast] [--jobs N] [--chunk N] [--out FILE] [--compare BASELINE]``
    Perf harness: run the fixed bench matrix serial / parallel / cold /
    warm-cache and write a ``BENCH_<rev>.json`` record; ``--compare``
    exits non-zero on a >20 % regression in ``events_per_sec`` or
    ``parallel_speedup`` against a baseline record.
``repro obs summary|export|spans [--obs-dir DIR]``
    Inspect an observability directory written by ``--obs-dir``:
    ``summary`` prints per-source span/error/wall totals plus counter
    totals (``--require sim,executor`` exits 1 if a source is absent),
    ``export`` re-emits the validated OpenMetrics exposition, and
    ``spans`` lists recorded spans (``--source``, ``--limit``).

``repro run`` and ``repro chaos`` accept ``--sanitize`` to attach the
runtime determinism sanitizer (event tie-break assertions, per-stream
RNG draw accounting, NaN guards on training inputs).  ``repro run``,
``repro all``, ``repro report`` and ``repro fleet`` accept ``--jobs N``
(parallel cell
execution over the warm process pool; 0 = all CPUs), ``--chunk N``
(cells per worker task; 0 = cost-model default) and ``--cache-dir DIR``
(content-addressed result cache) -- all preserve byte-identical
output -- plus the
crash-safety options: ``--run-dir DIR`` records a checkpointed run
manifest, ``--resume DIR`` restores completed cells from one, and
``--cell-deadline`` / ``--cell-attempts`` tune the supervisor.
``--obs-dir DIR`` attaches the observability layer (metrics + spans)
and exports it there after the run; without the flag nothing is
recorded and output stays byte-identical.

Exit codes for the experiment commands: 0 when everything succeeded
(including cells that needed retries -- those print a warning
summary), 1 on shape-check failures, 2 on usage errors, 3 when cells
failed permanently despite supervision (re-run with ``--resume`` after
fixing the cause).
"""

from __future__ import annotations

import argparse
import shutil
import sys
from pathlib import Path
from typing import List, Optional

from repro.experiments import runner
from repro.experiments.base import ExperimentResult
from repro.lint import cli as lint_cli
from repro.sim import sanitize

#: Default cache location of ``repro cache`` when ``--cache-dir`` is
#: not given (matches what most runs pass to ``--cache-dir``).
DEFAULT_CACHE_DIR = Path(".repro-cache")

#: Default directory of ``repro obs`` when ``--obs-dir`` is not given.
DEFAULT_OBS_DIR = Path(".repro-obs")


def _write_out(results: List[ExperimentResult], out_dir: Path) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    for res in results:
        (out_dir / f"{res.experiment_id}.txt").write_text(res.render() + "\n")
        if res.series:
            # Long-format CSV so differently-shaped series (sweeps, CDF
            # curves) coexist in one file per artifact.
            lines = ["series,x,y"]
            for s in res.series:
                for x, y in zip(s.x, s.y):
                    lines.append(f"{s.label},{x:.9g},{y:.9g}")
            (out_dir / f"{res.experiment_id}.csv").write_text(
                "\n".join(lines) + "\n"
            )


def _report(results: List[ExperimentResult], out: Optional[Path]) -> int:
    for res in results:
        print(res.render())
        print()
    if out is not None:
        _write_out(results, out)
    failed = [r for r in results if not r.passed]
    if failed:
        ids = ", ".join(r.experiment_id for r in failed)
        print(f"FAILED shape checks in: {ids}", file=sys.stderr)
        return 1
    print(f"All shape checks passed ({len(results)} artifact(s)).")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for 'Profiling and Understanding "
            "Virtualization Overhead in Cloud' (ICPP 2015)"
        ),
        epilog=(
            "common workflows: 'repro run fig2 --fast' (one artifact), "
            "'repro all' (full sweep), 'repro validate' (model fit "
            "quality), 'repro chaos' (fault injection), 'repro lint src' "
            "(determinism static analysis; see 'repro lint --list-rules'). "
            "Add --sanitize to run/chaos for runtime determinism checks."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all reproducible artifact ids")

    run_p = sub.add_parser("run", help="reproduce one artifact or group")
    run_p.add_argument("id", help="artifact id (fig2a) or group id (fig2)")
    run_p.add_argument(
        "--fast",
        action="store_true",
        help="shrink durations/trials for a quick smoke run",
    )
    run_p.add_argument(
        "--out", type=Path, default=None, help="directory to write reports"
    )
    run_p.add_argument(
        "--sanitize",
        action="store_true",
        help="attach the runtime determinism sanitizer (tie-break "
        "assertions, RNG draw accounting, NaN guards)",
    )
    _add_perf_options(run_p)

    all_p = sub.add_parser("all", help="reproduce every table and figure")
    all_p.add_argument("--fast", action="store_true")
    all_p.add_argument("--out", type=Path, default=None)
    _add_perf_options(all_p)

    report_p = sub.add_parser(
        "report", help="run everything and write EXPERIMENTS.md"
    )
    report_p.add_argument("--fast", action="store_true")
    report_p.add_argument(
        "--out", type=Path, default=Path("EXPERIMENTS.md"),
        help="output markdown file (default: EXPERIMENTS.md)",
    )
    _add_perf_options(report_p)

    cache_p = sub.add_parser(
        "cache", help="inspect or clear the content-addressed result cache"
    )
    cache_p.add_argument(
        "action", choices=("stats", "clear"),
        help="stats: entry/hit counts; clear: delete every entry",
    )
    cache_p.add_argument(
        "--cache-dir", type=Path, default=DEFAULT_CACHE_DIR,
        help=f"cache directory (default: {DEFAULT_CACHE_DIR})",
    )

    runs_p = sub.add_parser(
        "runs",
        help="inspect, continue, or clean a crash-safe run directory "
        "(--run-dir)",
    )
    runs_p.add_argument(
        "action", choices=("status", "resume", "gc"),
        help="status: cell ledger summary; resume: re-issue the "
        "recorded command with --resume; gc: drop orphaned/stale "
        "checkpoints",
    )
    runs_p.add_argument(
        "dir", type=Path, help="run directory written by --run-dir"
    )

    fleet_p = sub.add_parser(
        "fleet",
        help="datacenter-scale VOA-vs-VOU sweep over the sharded fleet "
        "simulator (streaming aggregation, shard-count-invariant output)",
    )
    fleet_p.add_argument(
        "--pms", type=int, default=None, metavar="N",
        help="physical machines in the fleet (default 1000)",
    )
    fleet_p.add_argument(
        "--vms", type=int, default=None, metavar="N",
        help="virtual machines to deploy (default 10000)",
    )
    fleet_p.add_argument(
        "--clients", type=int, default=None, metavar="N",
        help="peak open-loop client population (default 100000)",
    )
    fleet_p.add_argument(
        "--duration", type=float, default=None, metavar="S",
        help="simulated seconds per trial (default 300)",
    )
    fleet_p.add_argument(
        "--epoch", type=float, default=None, metavar="S",
        help="cross-shard barrier epoch length (default 10)",
    )
    fleet_p.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="event-queue shards the PMs are partitioned over; any "
        "value produces byte-identical output (default 1)",
    )
    fleet_p.add_argument(
        "--trials", type=int, default=None, metavar="N",
        help="seeds per strategy (default 2)",
    )
    fleet_p.add_argument(
        "--seed", type=int, default=2015,
        help="master seed of trial 0 (default 2015)",
    )
    fleet_p.add_argument(
        "--fast", action="store_true",
        help="smoke scale: 24 PMs, 240 VMs, 20k clients, one trial",
    )
    fleet_p.add_argument(
        "--out", type=Path, default=None,
        help="directory to write reports",
    )
    fleet_p.add_argument(
        "--sanitize", action="store_true",
        help="attach the runtime determinism sanitizer",
    )
    _add_perf_options(fleet_p)

    bench_p = sub.add_parser(
        "bench",
        help="perf harness: serial/parallel/cold/warm bench matrix, "
        "writes BENCH_<rev>.json",
    )
    bench_p.add_argument(
        "--fast", action="store_true",
        help="reduced matrix for CI smoke runs",
    )
    bench_p.add_argument(
        "--jobs", type=int, default=0,
        help="workers for the parallel phase (0 = all CPUs, default)",
    )
    bench_p.add_argument(
        "--chunk", type=int, default=None, metavar="N",
        help="cells per worker task in the parallel phase (0 = "
        "cost-model default)",
    )
    bench_p.add_argument(
        "--out", type=Path, default=None,
        help="output JSON path (default: BENCH_<rev>.json in the cwd)",
    )
    bench_p.add_argument(
        "--compare", type=Path, default=None, metavar="BASELINE",
        help="exit non-zero when events_per_sec or parallel_speedup "
        "regresses more than 20%% against this baseline BENCH json",
    )

    validate_p = sub.add_parser(
        "validate",
        help="train the overhead model and print fit quality + "
        "cross-validated RMSE",
    )
    validate_p.add_argument("--fast", action="store_true")

    chaos_p = sub.add_parser(
        "chaos",
        help="fault injection: sweep (default), seed-driven fuzzing with "
        "invariant oracles, plan replay, and failing-plan shrinking",
    )
    chaos_p.add_argument(
        "action",
        nargs="?",
        default="sweep",
        choices=("sweep", "fuzz", "replay", "shrink"),
        help="sweep: degradation + resilience experiments (default); "
        "fuzz: randomized fault campaigns judged by invariant oracles; "
        "replay PLAN.json: re-execute a plan bit-identically; "
        "shrink PLAN.json: minimize a failing plan",
    )
    chaos_p.add_argument(
        "plan", nargs="?", type=Path, default=None,
        help="fault plan file (replay/shrink)",
    )
    chaos_p.add_argument("--fast", action="store_true")
    chaos_p.add_argument(
        "--dropout", type=float, default=None,
        help="probe a single monitor-dropout probability instead of the "
        "default sweep",
    )
    chaos_p.add_argument(
        "--outliers", type=float, default=None,
        help="outlier-corruption probability for the single probed level "
        "(default 0)",
    )
    chaos_p.add_argument("--out", type=Path, default=None)
    chaos_p.add_argument(
        "--sanitize",
        action="store_true",
        help="attach the runtime determinism sanitizer",
    )
    chaos_p.add_argument(
        "--seed", type=int, default=None,
        help="sweep: placement seed of the chaosb scenario; "
        "fuzz: campaign master seed (default 2015)",
    )
    chaos_p.add_argument(
        "--plan-out", type=Path, default=None,
        help="write the concrete fault schedule as a replayable plan",
    )
    chaos_p.add_argument(
        "--runs", type=int, default=4,
        help="fuzz: scenarios per campaign (default 4)",
    )
    chaos_p.add_argument(
        "--out-dir", type=Path, default=Path(".repro-chaos"),
        help="fuzz: campaign artifact directory (plans/, repros/, "
        "resilience.json; default .repro-chaos)",
    )

    serve_p = sub.add_parser(
        "serve",
        help="online overhead-prediction service: crash-safe ingest, "
        "drift-aware refitting, versioned model registry",
    )
    serve_p.add_argument(
        "action", choices=("run", "query", "status", "rollback"),
        help="run: replay a deterministic client swarm against the "
        "service; query: answer one placement query from the promoted "
        "registry; status: stream/registry/stats digest; rollback: "
        "revert one PM to its previous promoted version",
    )
    serve_p.add_argument(
        "--state-dir", type=Path, required=True, metavar="DIR",
        help="service state directory (WAL + model registry); a "
        "SIGKILL'd run resumes from it byte-identically",
    )
    serve_p.add_argument(
        "--pms", type=int, default=3, metavar="N",
        help="fleet size of the synthetic trace (default 3)",
    )
    serve_p.add_argument(
        "--ticks", type=int, default=240, metavar="N",
        help="trace length in sim seconds (default 240)",
    )
    serve_p.add_argument(
        "--queries-per-tick", type=int, default=2, metavar="N",
        help="placement queries issued per tick (default 2)",
    )
    serve_p.add_argument(
        "--seed", type=int, default=0,
        help="master seed of the named trace/query streams",
    )
    serve_p.add_argument(
        "--drift-at", type=int, default=0, metavar="TICK",
        help="tick of the planted-coefficient regime shift (0 = none)",
    )
    serve_p.add_argument(
        "--drift-scale", type=float, default=1.6,
        help="coefficient multiplier applied at the shift (default 1.6)",
    )
    serve_p.add_argument(
        "--stop-after-tick", type=int, default=None, metavar="TICK",
        help="abandon the drive after TICK without draining (models a "
        "crash deterministically; re-run to resume)",
    )
    serve_p.add_argument(
        "--fault-loss", type=float, default=0.0, metavar="P",
        help="per-sample delivery-loss burst probability",
    )
    serve_p.add_argument(
        "--fault-dup", type=float, default=0.0, metavar="P",
        help="per-sample duplicated-delivery probability",
    )
    serve_p.add_argument(
        "--fault-reorder", type=float, default=0.0, metavar="P",
        help="per-sample reordered (delayed) delivery probability",
    )
    serve_p.add_argument(
        "--fault-stuck", type=float, default=0.0, metavar="P",
        help="per-sample stuck-counter burst probability",
    )
    serve_p.add_argument(
        "--fault-corrupt", type=float, default=0.0, metavar="P",
        help="per-sample NaN/outlier corruption burst probability "
        "(exercises quarantine)",
    )
    serve_p.add_argument(
        "--min-fit-samples", type=int, default=None, metavar="N",
        help="candidate maturity before promotion (default 24; pinned "
        "to the state dir on first open)",
    )
    serve_p.add_argument(
        "--staleness-s", type=float, default=None, metavar="S",
        help="dark-stream threshold for degraded answers (default 30; "
        "pinned to the state dir on first open)",
    )
    serve_p.add_argument(
        "--queue-capacity", type=int, default=None, metavar="N",
        help="bounded per-PM ingest queue (default 64; pinned to the "
        "state dir on first open)",
    )
    serve_p.add_argument(
        "--retries", type=int, default=3, metavar="N",
        help="supervised attempts for 'run' with exponential backoff "
        "between them (default 3)",
    )
    serve_p.add_argument(
        "--pm", default=None, metavar="PM",
        help="PM stream for 'query'/'rollback' (query defaults to "
        "every known PM)",
    )
    serve_p.add_argument(
        "--vm-util", default="0.3,0.3,0.1,0.1", metavar="C,M,I,B",
        help="query utilization vector cpu,mem,io,bw",
    )
    serve_p.add_argument(
        "--at", type=float, default=None, metavar="T",
        help="sim time of the query (default: the recovered service "
        "clock)",
    )
    serve_p.add_argument(
        "--obs-dir", type=Path, default=None, metavar="DIR",
        help="collect service metrics/spans and export them here "
        "(inspect with 'repro obs summary --require serve')",
    )

    obs_p = sub.add_parser(
        "obs",
        help="inspect an observability export written by --obs-dir",
    )
    obs_p.add_argument(
        "action", choices=("summary", "export", "spans"),
        help="summary: validate + digest; export: print the "
        "OpenMetrics text; spans: print recorded spans",
    )
    obs_p.add_argument(
        "--obs-dir", type=Path, default=DEFAULT_OBS_DIR,
        help=f"observability directory (default: {DEFAULT_OBS_DIR})",
    )
    obs_p.add_argument(
        "--require", default=None, metavar="SOURCES",
        help="comma-separated span sources that must be present "
        "(summary exits 1 when one is missing)",
    )
    obs_p.add_argument(
        "--source", default=None, metavar="SRC",
        help="restrict 'spans' output to one source",
    )
    obs_p.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="most recent spans shown by 'spans' (default 20)",
    )

    lint_p = sub.add_parser(
        "lint",
        help="determinism/correctness static analysis (REPxxx rules)",
    )
    lint_cli.configure_parser(lint_p)
    return parser


def _add_perf_options(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="run experiment cells over N worker processes (0 = all "
        "CPUs); output is byte-identical to serial",
    )
    sub_parser.add_argument(
        "--chunk", type=int, default=None, metavar="N",
        help="cells dispatched to a worker per pool task (0 = "
        "deterministic cost-model default); larger chunks amortize "
        "dispatch overhead, output stays byte-identical",
    )
    sub_parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="serve previously computed cells from this "
        "content-addressed cache (and populate it)",
    )
    sub_parser.add_argument(
        "--run-dir", type=Path, default=None, metavar="DIR",
        help="record a crash-safe run manifest here: every planned "
        "cell is ledgered and every completed cell checkpointed",
    )
    sub_parser.add_argument(
        "--resume", type=Path, default=None, metavar="DIR",
        help="resume an interrupted run: restore verified checkpoints "
        "from DIR and execute only pending/failed cells (implies "
        "--run-dir DIR)",
    )
    sub_parser.add_argument(
        "--cell-deadline", type=float, default=None, metavar="S",
        help="seconds before a cell's worker counts as hung and is "
        "retried (default 600; 0 disables the watchdog)",
    )
    sub_parser.add_argument(
        "--cell-attempts", type=int, default=None, metavar="N",
        help="total attempts per cell before it fails permanently "
        "(default 3)",
    )
    sub_parser.add_argument(
        "--obs-dir", type=Path, default=None, metavar="DIR",
        help="collect metrics and spans for this run and export them "
        "here (metrics.om, spans.jsonl, summary.json); output stays "
        "byte-identical either way -- inspect with 'repro obs'",
    )


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output was piped into a pager/head that closed early.
        return 0


def _sanitizer_summary() -> None:
    counts = sanitize.aggregate_draw_counts()
    print(
        f"sanitizer: {sanitize.total_pops()} event pops vetted, "
        f"{sum(counts.values())} RNG draws over {len(counts)} stream(s)"
    )


def _main(argv: Optional[List[str]] = None) -> int:
    raw_argv = list(argv) if argv is not None else sys.argv[1:]
    args = build_parser().parse_args(argv)
    if getattr(args, "sanitize", False):
        sanitize.set_default(True)
        sanitize.reset_collector()
    try:
        return _with_perf_defaults(args, raw_argv)
    finally:
        if getattr(args, "sanitize", False):
            sanitize.set_default(False)


#: Exit code of the experiment commands when cells failed permanently.
EXIT_CELLS_FAILED = 3


def _supervisor_config(args: argparse.Namespace):
    """Build the supervisor config from CLI knobs (None = defaults)."""
    from repro.perf.supervisor import SupervisorConfig

    overrides = {}
    deadline = getattr(args, "cell_deadline", None)
    if deadline is not None:
        overrides["deadline_s"] = None if deadline <= 0 else deadline
    attempts = getattr(args, "cell_attempts", None)
    if attempts is not None:
        if attempts < 1:
            raise ValueError("--cell-attempts must be >= 1")
        overrides["max_attempts"] = attempts
    return SupervisorConfig(**overrides) if overrides else None


def _with_perf_defaults(args: argparse.Namespace, raw_argv: List[str]) -> int:
    """Install the perf/crash-safety defaults for the dispatch, then reset."""
    jobs = getattr(args, "jobs", None)
    chunk = getattr(args, "chunk", None)
    cache_dir = getattr(args, "cache_dir", None)
    resume_dir = getattr(args, "resume", None)
    run_dir = getattr(args, "run_dir", None) or resume_dir
    obs_dir = getattr(args, "obs_dir", None)
    if args.command not in ("run", "all", "report", "fleet") or (
        jobs is None and chunk is None and cache_dir is None
        and run_dir is None and obs_dir is None
        and getattr(args, "cell_deadline", None) is None
        and getattr(args, "cell_attempts", None) is None
    ):
        # Only the experiment commands fan out through the executor;
        # bench manages its own phases and cache has its own dispatch.
        return _dispatch(args)
    from repro.perf.cache import ResultCache
    from repro.perf.executor import execution_defaults
    from repro.perf.manifest import RunManifest
    from repro.perf.supervisor import (
        CellExecutionError,
        reset_stats,
        stats,
    )

    try:
        supervisor = _supervisor_config(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    manifest = None
    if run_dir is not None:
        manifest = RunManifest(run_dir)
        manifest.open_run(raw_argv, resumed=resume_dir is not None)
        args._manifest = manifest
    collector = None
    if obs_dir is not None:
        from repro.obs import runtime as obs_runtime

        collector = obs_runtime.install(obs_runtime.ObsCollector())
        obs_runtime.set_default(True)
    reset_stats()
    failed_cells = None
    try:
        with execution_defaults(
            jobs=jobs,
            chunk=chunk,
            cache=cache,
            manifest=manifest,
            resume=resume_dir is not None,
            supervisor=supervisor,
        ):
            try:
                code = _dispatch(args)
            except CellExecutionError as exc:
                failed_cells = exc
                code = EXIT_CELLS_FAILED
    finally:
        # The warm pool's explicit end-of-invocation shutdown (the
        # atexit hook is only the backstop for API users).
        from repro.perf import pool as warm_pool

        warm_pool.shutdown_pool()
        if collector is not None:
            obs_runtime.set_default(False)
            obs_runtime.uninstall()
    if collector is not None:
        from repro.obs.export import write_obs_dir

        obs_summary = write_obs_dir(collector, obs_dir)
        print(
            f"observability: wrote {obs_dir} "
            f"({obs_summary['spans']} span(s), "
            f"{obs_summary['series']} series; "
            f"sources: {', '.join(obs_summary['span_sources']) or '-'})",
            file=sys.stderr,
        )
    supervision = stats()
    if supervision.retries or supervision.failed:
        print(supervision.summary(), file=sys.stderr)
    if failed_cells is not None:
        print(f"error: {failed_cells}", file=sys.stderr)
        if manifest is not None:
            print(
                f"hint: fix the cause, then 'repro runs resume "
                f"{run_dir}' to re-execute only the failed cells",
                file=sys.stderr,
            )
    if cache is not None:
        cache.flush_stats()
        print(cache.stats().render(), file=sys.stderr)
    if manifest is not None:
        print(
            f"run manifest: {run_dir} "
            f"({manifest.restored} restored, {manifest.executed} executed)",
            file=sys.stderr,
        )
    return code


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        for artifact in runner.ALL_IDS:
            print(artifact)
        return 0
    if args.command == "lint":
        return lint_cli.run_from_args(args)
    if args.command == "run":
        try:
            if args.id in runner.GROUP_IDS:
                results = runner.run_group(args.id, fast=args.fast)
            else:
                results = [runner.run(args.id, fast=args.fast)]
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        if args.sanitize:
            _sanitizer_summary()
        return _report(results, args.out)
    if args.command == "report":
        from repro.experiments.report import generate_experiments_md

        results = runner.run_all(fast=args.fast)
        args.out.write_text(
            generate_experiments_md(
                results, fast=args.fast, provenance=_provenance(args)
            )
            + "\n"
        )
        failed = [r.experiment_id for r in results if not r.passed]
        print(f"wrote {args.out} ({len(results)} artifacts)")
        if failed:
            print(f"shape-check failures: {', '.join(failed)}", file=sys.stderr)
            return 1
        return 0
    if args.command == "validate":
        return _validate(fast=args.fast)
    if args.command == "chaos":
        return _chaos(args)
    if args.command == "cache":
        return _cache(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "obs":
        return _obs_cmd(args)
    if args.command == "runs":
        return _runs(args)
    if args.command == "bench":
        return _bench(args)
    if args.command == "fleet":
        return _fleet(args)
    assert args.command == "all"
    return _report(runner.run_all(fast=args.fast), args.out)


def _provenance(args: argparse.Namespace) -> Optional[List[str]]:
    """Report provenance lines -- only for resumed runs.

    Non-resumed reports get ``None`` so their output stays byte-identical
    to a harness without the crash-safety layer at all.
    """
    manifest = getattr(args, "_manifest", None)
    if manifest is None or getattr(args, "resume", None) is None:
        return None
    return [
        f"Run provenance: resumed from run directory `{manifest.root}` "
        f"({manifest.restored} cell(s) restored from verified "
        f"checkpoints, {manifest.executed} executed in this invocation).",
    ]


def _strip_run_flags(command: List[str]) -> List[str]:
    """Drop ``--run-dir``/``--resume`` (and values) from a recorded command."""
    out: List[str] = []
    skip = False
    for token in command:
        if skip:
            skip = False
            continue
        if token in ("--run-dir", "--resume"):
            skip = True
            continue
        if token.startswith(("--run-dir=", "--resume=")):
            continue
        out.append(token)
    return out


def _runs(args: argparse.Namespace) -> int:
    from repro.perf.manifest import RunManifest

    manifest = RunManifest(args.dir)
    if args.action == "status":
        print(manifest.status().render())
        return 0
    if args.action == "gc":
        removed = manifest.gc()
        print(
            f"gc {args.dir}: removed {removed['orphaned']} orphaned and "
            f"{removed['stale']} stale checkpoint(s) "
            f"({removed['bytes']} bytes)"
        )
        return 0
    assert args.action == "resume"
    status = manifest.status()
    if not status.command:
        print(
            f"error: {args.dir} has no recorded command to resume "
            "(was it created with --run-dir?)",
            file=sys.stderr,
        )
        return 2
    if status.complete:
        print(f"nothing to resume: every cell in {args.dir} is done")
        return 0
    command = _strip_run_flags(status.command)
    command += ["--resume", str(args.dir)]
    print(f"resuming: repro {' '.join(command)}", file=sys.stderr)
    return _main(command)


def _cache(args: argparse.Namespace) -> int:
    from repro.perf.cache import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached cell(s) from {args.cache_dir}")
        return 0
    assert args.action == "stats"
    print(cache.stats().render())
    return 0


def _serve(args: argparse.Namespace) -> int:
    from repro.serve import PredictionService, ServiceConfig

    overrides = {
        key: value
        for key, value in (
            ("queue_capacity", args.queue_capacity),
            ("min_fit_samples", args.min_fit_samples),
            ("staleness_s", args.staleness_s),
        )
        if value is not None
    }
    try:
        # None lets an existing state dir answer from its pinned config;
        # explicit knobs only matter on the open that creates the dir.
        service_config = ServiceConfig(**overrides) if overrides else None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.action == "run":
        return _serve_run(args, service_config)
    if not args.state_dir.is_dir():
        # Read-only actions must not conjure (and pin) a state dir.
        print(
            f"error: no service state at {args.state_dir}", file=sys.stderr
        )
        return 2
    service = PredictionService(args.state_dir, config=service_config)
    try:
        if args.action == "status":
            print(service.status_report())
            return 0
        if args.action == "rollback":
            return _serve_rollback(args, service)
        assert args.action == "query"
        return _serve_query(args, service)
    finally:
        service.wal.close()


def _serve_run(args: argparse.Namespace, service_config) -> int:
    from repro.faults.service import ServiceFaultConfig
    from repro.perf.supervisor import SupervisorConfig, _backoff_sleep
    from repro.serve import SwarmConfig, run_swarm

    try:
        faults = ServiceFaultConfig(
            loss_prob=args.fault_loss,
            dup_prob=args.fault_dup,
            reorder_prob=args.fault_reorder,
            stuck_prob=args.fault_stuck,
            corrupt_prob=args.fault_corrupt,
        )
        swarm_config = SwarmConfig(
            pms=args.pms,
            ticks=args.ticks,
            queries_per_tick=args.queries_per_tick,
            seed=args.seed,
            drift_at=args.drift_at,
            drift_scale=args.drift_scale,
            faults=faults if faults.faulty() else None,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    collector = None
    if args.obs_dir is not None:
        from repro.obs import runtime as obs_runtime

        collector = obs_runtime.install(obs_runtime.ObsCollector())
        obs_runtime.set_default(True)
    # Supervised drive: a transient failure (filesystem hiccup, OOM
    # kill of a child) retries with the PR-4 backoff schedule -- the WAL
    # makes every retry a resume, so attempts converge, never diverge.
    supervisor = SupervisorConfig(max_attempts=max(1, args.retries))
    attempt = 0
    try:
        while True:
            try:
                report = run_swarm(
                    args.state_dir,
                    swarm_config,
                    service_config=service_config,
                    stop_after_tick=args.stop_after_tick,
                )
                break
            except OSError as exc:
                attempt += 1
                if attempt >= supervisor.max_attempts:
                    print(
                        f"error: swarm run failed after {attempt} "
                        f"attempt(s): {exc}",
                        file=sys.stderr,
                    )
                    return 1
                delay = supervisor.backoff_s(attempt + 1)
                print(
                    f"serve: attempt {attempt} failed ({exc}); "
                    f"resuming from WAL in {delay:.1f}s",
                    file=sys.stderr,
                )
                _backoff_sleep(delay)
    finally:
        if collector is not None:
            from repro.obs import runtime as obs_runtime

            obs_runtime.set_default(False)
            obs_runtime.uninstall()
    if collector is not None:
        from repro.obs.export import write_obs_dir

        obs_summary = write_obs_dir(collector, args.obs_dir)
        print(
            f"observability: wrote {args.obs_dir} "
            f"({obs_summary['spans']} span(s), "
            f"{obs_summary['series']} series; "
            f"sources: {', '.join(obs_summary['span_sources']) or '-'})",
            file=sys.stderr,
        )
    print(report.render())
    return 0


def _serve_query(args: argparse.Namespace, service) -> int:
    from repro.monitor.metrics import ResourceVector

    try:
        parts = [float(v) for v in args.vm_util.split(",")]
        if len(parts) != 4:
            raise ValueError(f"expected 4 components, got {len(parts)}")
        vm_util = ResourceVector(*parts)
    except ValueError as exc:
        print(f"error: --vm-util: {exc}", file=sys.stderr)
        return 2
    at = args.at if args.at is not None else service.now
    pms = [args.pm] if args.pm else sorted(
        set(service.registry.pms()) | set(service.queue_depths())
    )
    if not pms:
        print("error: empty service state (nothing to query)", file=sys.stderr)
        return 2
    for pm in pms:
        print(service.query(pm, vm_util, now=at).render())
    return 0


def _serve_rollback(args: argparse.Namespace, service) -> int:
    from repro.serve import RegistryError

    if not args.pm:
        print("error: rollback requires --pm", file=sys.stderr)
        return 2
    try:
        target = service.rollback(args.pm, now=service.now)
    except RegistryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{args.pm}: rolled back to v{target.version} "
          f"(promoted at tick {target.tick}, {target.n_samples} samples)")
    return 0


def _obs_cmd(args: argparse.Namespace) -> int:
    from repro.obs import Span
    from repro.obs.export import METRICS_FILE, ObsExportError, load_obs_dir

    try:
        _metrics, spans, summary = load_obs_dir(args.obs_dir)
    except ObsExportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.action == "export":
        # Re-emit the (just validated) OpenMetrics exposition verbatim
        # so it can be piped straight into a scrape endpoint or file.
        sys.stdout.write((args.obs_dir / METRICS_FILE).read_text())
        return 0
    if args.action == "spans":
        rows = spans
        if args.source:
            rows = [r for r in rows if r["source"] == args.source]
        for row in rows[-args.limit:]:
            print(Span.from_dict(row).render())
        print(
            f"{len(rows)} span(s)"
            + (f" from source '{args.source}'" if args.source else "")
            + (f", showing last {args.limit}" if len(rows) > args.limit else ""),
            file=sys.stderr,
        )
        return 0
    assert args.action == "summary"
    from repro.obs.export import render_summary_text

    print(render_summary_text(summary))
    if args.require:
        wanted = [s.strip() for s in args.require.split(",") if s.strip()]
        missing = sorted(set(wanted) - set(summary["span_sources"]))
        if missing:
            print(
                f"error: required span source(s) missing from "
                f"{args.obs_dir}: {', '.join(missing)}",
                file=sys.stderr,
            )
            return 1
    return 0


def _bench(args: argparse.Namespace) -> int:
    import json

    from repro.perf.bench import (
        compare_bench,
        default_output_path,
        run_bench,
        write_bench,
    )

    baseline = None
    if args.compare is not None:
        try:
            baseline = json.loads(args.compare.read_text())
        except (OSError, ValueError) as exc:
            print(
                f"error: cannot read baseline {args.compare}: {exc}",
                file=sys.stderr,
            )
            return 2
    record = run_bench(fast=args.fast, jobs=args.jobs, chunk=args.chunk)
    out = args.out if args.out is not None else default_output_path()
    write_bench(record, out)
    metrics = record["metrics"]
    print(f"wrote {out}")
    for key in (
        "events_per_sec",
        "cells_per_sec",
        "parallel_speedup",
        "cache_warm_speedup",
        "cache_hit_rate",
    ):
        print(f"  {key:<20} {metrics[key]:.3f}")
    if baseline is not None:
        problems = compare_bench(record, baseline)
        if problems:
            for problem in problems:
                print(f"bench regression: {problem}", file=sys.stderr)
            print(
                f"bench: regression against {args.compare} "
                f"(baseline rev {baseline.get('revision', '?')})",
                file=sys.stderr,
            )
            return 1
        print(
            f"bench: no regression against {args.compare} "
            f"(baseline rev {baseline.get('revision', '?')})"
        )
    return 0


#: ``repro fleet --fast`` smoke scale (CI-sized; same code paths).
FLEET_FAST = {
    "pms": 24,
    "vms": 240,
    "clients": 20_000,
    "duration_s": 120.0,
    "trials": 1,
}


def _fleet(args: argparse.Namespace) -> int:
    from repro.experiments.fleet import run_fleet_experiment

    kwargs = dict(FLEET_FAST) if args.fast else {}
    for key, value in (
        ("pms", args.pms),
        ("vms", args.vms),
        ("clients", args.clients),
        ("duration_s", args.duration),
        ("epoch_s", args.epoch),
        ("trials", args.trials),
    ):
        if value is not None:
            kwargs[key] = value
    try:
        results = run_fleet_experiment(
            shards=args.shards, seed=args.seed, **kwargs
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.sanitize:
        _sanitizer_summary()
    return _report(results, args.out)


def _chaos(args: argparse.Namespace) -> int:
    if args.action == "fuzz":
        return _chaos_fuzz(args)
    if args.action == "replay":
        return _chaos_replay(args)
    if args.action == "shrink":
        return _chaos_shrink(args)
    return _chaos_sweep(args)


def _chaos_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import chaos
    from repro.faults.plan import dump_plan

    kwargs = runner._fast_kwargs("chaos", args.fast)
    if args.dropout is not None or args.outliers is not None:
        level = (args.dropout or 0.0, args.outliers or 0.0)
        for name, prob in zip(("--dropout", "--outliers"), level):
            if not 0.0 <= prob < 1.0:
                print(
                    f"error: {name} must be a probability in [0, 1), "
                    f"got {prob}",
                    file=sys.stderr,
                )
                return 2
        # Keep the clean level so degradation is always measured
        # against the fault-free baseline.
        kwargs["levels"] = ((0.0, 0.0), level)
    if args.seed is not None:
        kwargs["placement_seed"] = args.seed
    capture: dict = {}
    if args.plan_out is not None:
        kwargs["capture"] = capture
    results = chaos.run_chaos(**kwargs)
    if args.sanitize:
        _sanitizer_summary()
    if args.plan_out is not None and "plan" in capture:
        dump_plan(capture["plan"], args.plan_out)
        print(f"replayable fault plan written to {args.plan_out}")
    return _report(results, args.out)


def _chaos_fuzz(args: argparse.Namespace) -> int:
    from repro.faults.fuzz import FuzzConfig, run_campaign

    try:
        cfg = FuzzConfig(
            seed=args.seed if args.seed is not None else 2015,
            runs=args.runs,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    scorecard = run_campaign(cfg, args.out_dir)
    print(
        f"chaos fuzz: seed={scorecard['seed']} "
        f"runs={scorecard['runs']} -> {args.out_dir}"
    )
    oracles = scorecard["oracles"]
    for name in sorted(oracles):
        tally = oracles[name]
        if not tally["checked"]:
            continue
        print(
            f"  {name:<24} checked={tally['checked']:<3} "
            f"passed={tally['passed']:<3} failed={tally['failed']}"
        )
    coverage = scorecard["coverage"]
    print(
        "  coverage: "
        + " ".join(f"{k}={coverage[k]}" for k in sorted(coverage))
    )
    for violation in scorecard["violations"]:
        names = ", ".join(f["oracle"] for f in violation["failed"])
        print(
            f"  VIOLATION run {violation['run']}: {names} "
            f"-> {violation['min_plan']} "
            f"({violation['shrink_executions']} shrink execution(s))",
            file=sys.stderr,
        )
    if scorecard["all_passed"]:
        print("  all invariants held")
        return 0
    return 1


def _chaos_replay(args: argparse.Namespace) -> int:
    from repro.experiments import chaos
    from repro.faults.oracles import failures
    from repro.faults.plan import (
        DRIVER_CHAOSB,
        PlanError,
        dump_plan,
        load_plan,
    )

    if args.plan is None:
        print("error: replay needs a plan file", file=sys.stderr)
        return 2
    try:
        plan = load_plan(args.plan)
    except PlanError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.plan_out is not None:
        dump_plan(plan, args.plan_out)
    if plan.driver == DRIVER_CHAOSB:
        result = chaos.run_chaosb(plan=plan)
        return _report([result], args.out)
    from repro.faults.fuzz import execute_plan

    workdir = args.out_dir / "replay-work"
    try:
        _ctx, verdicts = execute_plan(plan, workdir=workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    print(f"replay {args.plan}: surfaces={', '.join(plan.surfaces())}")
    for verdict in verdicts:
        mark = "pass" if verdict.passed else "FAIL"
        print(f"  [{mark}] {verdict.name}: {verdict.detail}")
    return 1 if failures(verdicts) else 0


def _chaos_shrink(args: argparse.Namespace) -> int:
    from repro.faults.fuzz import _make_judge, default_model
    from repro.faults.plan import PlanError, dump_plan, load_plan
    from repro.faults.shrink import shrink_plan

    if args.plan is None:
        print("error: shrink needs a plan file", file=sys.stderr)
        return 2
    try:
        plan = load_plan(args.plan)
    except PlanError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    model = (
        default_model(plan.placement.train_duration)
        if plan.placement is not None else None
    )
    workdir = args.out_dir / "shrink-work"
    try:
        judge = _make_judge(model, workdir)
        failing = judge(plan)
        if not failing:
            print(
                f"{args.plan}: every invariant holds -- nothing to shrink",
                file=sys.stderr,
            )
            return 2
        result = shrink_plan(plan, failing, judge)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    out_path = args.out or Path(f"{args.plan}.min.json")
    dump_plan(result.min_plan, out_path)
    print(
        f"shrunk {args.plan} -> {out_path} "
        f"({result.executions} execution(s), "
        f"{len(result.steps)} reduction(s): "
        f"{', '.join(result.steps) or 'already minimal'})"
    )
    print(f"  still failing: {', '.join(sorted(set(failing)))}")
    return 0


def _validate(*, fast: bool) -> int:
    from repro.models import (
        MultiVMOverheadModel,
        TrainingConfig,
        cross_validate_multi,
        fit_quality,
        gather_training_samples,
        render_quality_table,
    )

    cfg = (
        TrainingConfig(vm_counts=(1, 2, 4), duration=20.0, warmup=3.0)
        if fast
        else TrainingConfig()
    )
    print("Gathering the micro-benchmark training sweep...")
    samples = gather_training_samples(cfg)
    model = MultiVMOverheadModel.fit(samples)
    from repro.models import describe_multi_vm

    print()
    print(describe_multi_vm(model))
    print(f"\nIn-sample fit quality ({len(samples)} observations):")
    print(render_quality_table(fit_quality(model, samples)))
    print("\n5-fold cross-validated RMSE per target:")
    for target, rmse in sorted(cross_validate_multi(samples).items()):
        print(f"  {target:<10} {rmse:8.4f}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
