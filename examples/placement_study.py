#!/usr/bin/env python3
"""Overhead-aware vs -unaware placement (the Figure 10 story, condensed).

Profiles the paper's 5-VM scenario with the CloudScale predictor,
places the VMs with VOA and with VOU, runs RUBiS on both deployments,
and reports throughput and total processing time.

Run:  python examples/placement_study.py
"""

from repro.models import TrainingConfig, train_multi_vm_model
from repro.placement import VOA, VOU, VM_NAMES, profile_demands, run_trial


def main() -> None:
    print("Training the Eq. (3) overhead model (condensed sweep)...")
    model = train_multi_vm_model(
        TrainingConfig(vm_counts=(1, 2, 4), duration=40.0, warmup=3.0)
    )

    scenario = 3  # all three aux VMs run lookbusy at 50 % CPU
    print(f"Profiling VM demands for scenario {scenario} via CloudScale...")
    demands = profile_demands(scenario, seed=11, profile_s=40.0)
    for name in VM_NAMES:
        d = demands[name]
        print(f"  {name:<8} cpu={d.cpu:6.1f}%  bw={d.bw:8.1f} Kb/s")

    # The adversarial deployment order: the web tier arrives first, the
    # three hogs next -- VOU happily packs all four onto PM1.
    order = ["vm1-web", "vm3", "vm4", "vm5", "vm2-db"]
    print(f"\nDeployment order: {order}\n")
    for strategy in (VOA, VOU):
        trial = run_trial(
            scenario,
            strategy,
            model if strategy == VOA else None,
            demands,
            order=order,
            seed=99,
            duration_s=120.0,
        )
        on_pm1 = trial.plan.vms_on("pm1")
        print(f"{strategy.upper()}: pm1 hosts {on_pm1}")
        print(
            f"      throughput {trial.throughput_rps:6.1f} req/s, "
            f"total time {trial.total_time_s:7.1f} s"
        )
    print(
        "\nVOU ignores Dom0/hypervisor CPU, overloads PM1, and the RUBiS "
        "web tier is squeezed; VOA's model-based check splits the load."
    )


if __name__ == "__main__":
    main()
