#!/usr/bin/env python3
"""Fair billing with overhead attribution.

The paper's introduction argues overhead estimation "is also critical
to accurately bill cloud customers": Dom0 and hypervisor CPU is real
cost that appears on no guest's meter.  This example:

1. meters a PM hosting a CPU-heavy and a network-heavy guest,
2. trains the overhead model,
3. attributes the measured Dom0/hypervisor burn back to the guests via
   the model's coefficients (network traffic drives Dom0; CPU activity
   drives the hypervisor),
4. prints per-guest invoices with and without overhead attribution.

Run:  python examples/billing_attribution.py
"""

from repro.models import (
    TrainingConfig,
    attribute_overhead,
    train_single_vm_model,
)
from repro.monitor.metrics import ResourceVector
from repro.sim import Simulator
from repro.workloads import CpuHog, PingLoad
from repro.xen import PhysicalMachine, UsageMeter, VMSpec

PRICE_PER_CORE_HOUR = 0.05  # dollars


def main() -> None:
    print("Training the overhead model (condensed sweep)...")
    model = train_single_vm_model(
        TrainingConfig(vm_counts=(1,), duration=40.0, warmup=3.0)
    )

    sim = Simulator(seed=13)
    pm = PhysicalMachine(sim, name="pm1")
    cpu_guy = pm.create_vm(VMSpec(name="cpu-guy"))
    net_guy = pm.create_vm(VMSpec(name="net-guy"))
    CpuHog(70.0).attach(cpu_guy)
    PingLoad(1200.0).attach(net_guy)

    meter = UsageMeter(pm)
    pm.start()
    sim.run_until(3.0)
    meter.start()
    hours = 1.0
    sim.run_until(sim.now + hours * 3600.0)
    meter.stop()

    snap = pm.snapshot()
    report = attribute_overhead(
        model,
        {
            name: ResourceVector(
                cpu=snap.vm(name).cpu_pct,
                mem=snap.vm(name).mem_mb,
                io=snap.vm(name).io_bps,
                bw=snap.vm(name).bw_kbps,
            )
            for name in pm.vms
        },
        measured_dom0_cpu_pct=snap.dom0_cpu_pct,
        measured_hyp_cpu_pct=snap.hypervisor_cpu_pct,
    )

    overhead_core_h = meter.platform_overhead_cpu_pct_s() / 100.0 / 3600.0
    print(f"\nOne simulated hour; platform overhead burned "
          f"{overhead_core_h:.3f} core-hours (Dom0 + hypervisor).\n")
    header = (f"{'guest':<10} {'own core-h':>11} {'naive bill':>11} "
              f"{'ovh share':>10} {'fair bill':>10}")
    print(header)
    print("-" * len(header))
    for name in pm.vms:
        own = meter.record(name).cpu_core_hours
        naive = own * PRICE_PER_CORE_HOUR
        frac = report.billed_fraction(name)
        billable_core_h = overhead_core_h - (
            (report.base_dom0_cpu_pct + report.base_hyp_cpu_pct)
            / 100.0
            * hours
        )
        fair = naive + frac * max(0.0, billable_core_h) * PRICE_PER_CORE_HOUR
        print(
            f"{name:<10} {own:>11.3f} ${naive:>10.4f} {frac:>9.0%} "
            f"${fair:>9.4f}"
        )
    print(
        "\nThe network-heavy guest looks cheap by its own meter but "
        "drives most of the Dom0 burn; attribution shifts the overhead "
        "cost to its cause."
    )


if __name__ == "__main__":
    main()
