#!/usr/bin/env python3
"""End-to-end prediction accuracy on a live application (Figure 7 story).

Trains the single-VM model on micro benchmarks, deploys a RUBiS pair
(web tier on PM1, database tier on PM2), predicts both PMs' CPU and
bandwidth utilization every second from the *guest* measurements alone,
and prints the prediction-error distribution.

Run:  python examples/overhead_prediction.py
"""

import numpy as np

from repro.experiments.prediction import run_prediction_experiment, trained_models


def main() -> None:
    print("Training Eq. (2)/(3) models on the micro-benchmark sweep...")
    single, multi = trained_models(duration=60.0)

    print("Running RUBiS at 300/500/700 clients and scoring predictions...\n")
    run = run_prediction_experiment(
        1, single, multi, client_counts=(300, 500, 700), duration=180.0
    )

    header = (f"{'PM':>4} {'metric':>7} {'clients':>8} {'p50 err %':>10} "
              f"{'p90 err %':>10} {'max err %':>10}")
    print(header)
    print("-" * len(header))
    for (pm, target, clients), rep in sorted(run.reports.items()):
        print(
            f"{pm:>4} {target.split('.')[1]:>7} {clients:>8} "
            f"{rep.percentile(50):>10.2f} {rep.p90:>10.2f} "
            f"{float(np.max(rep.errors)):>10.2f}"
        )
    print(
        "\nAs in the paper: bandwidth predictions are the sharpest, CPU "
        "errors shrink as the client load grows, and the web-tier PM is "
        "predicted from guest metrics alone within a few percent."
    )


if __name__ == "__main__":
    main()
