#!/usr/bin/env python3
"""Overhead-aware hotspot mitigation (Sandpiper-style, model-driven).

The paper motivates its model with cloud management tasks: detecting
that a PM is *actually* overloaded -- counting Dom0 and hypervisor
overhead -- and migrating VMs away.  This example:

1. trains the Eq. (3) overhead model,
2. deploys four busy guests on PM1 and one calm guest on PM2,
3. watches PM1 with the k-out-of-k hotspot detector,
4. plans overhead-aware migrations and applies them through the
   cluster's live-migration API,
5. shows the hotspot cleared and no new hotspot created.

Run:  python examples/hotspot_mitigation.py
"""

from repro.cluster import Cluster
from repro.models import TrainingConfig, train_multi_vm_model
from repro.monitor.metrics import vm_utilization_vector
from repro.placement import HotspotDetector, MigrationPlanner, VmObservation
from repro.sim import Simulator
from repro.workloads import CpuHog
from repro.xen import VMSpec


def observe(cluster, pm_name):
    pm = cluster.pms[pm_name]
    snap = pm.snapshot()
    return [
        VmObservation(
            name=name,
            demand=vm_utilization_vector(snap.vm(name)),
            mem_mb=pm.vms[name].spec.mem_mb,
        )
        for name in pm.vms
    ]


def main() -> None:
    print("Training the Eq. (3) overhead model (condensed sweep)...")
    model = train_multi_vm_model(
        TrainingConfig(vm_counts=(1, 2, 4), duration=40.0, warmup=3.0)
    )
    detector = HotspotDetector(model, k=3, threshold_frac=0.85)
    planner = MigrationPlanner(model, target_frac=0.8)

    sim = Simulator(seed=7)
    cluster = Cluster(sim)
    cluster.create_pm("pm1")
    cluster.create_pm("pm2")
    for k in range(4):
        CpuHog(60.0).attach(cluster.place_vm(VMSpec(name=f"busy{k}"), "pm1"))
    CpuHog(10.0).attach(cluster.place_vm(VMSpec(name="calm"), "pm2"))
    cluster.start()
    cluster.run(3.0)

    # Observed utilizations are *granted* CPU: a squeezed guest looks
    # smaller than its true demand, and migrating one VM away lets the
    # rest expand.  Sandpiper iterates for exactly this reason -- so do
    # we: observe -> detect -> migrate, until the hotspot clears.
    for round_no in range(1, 4):
        print(f"\nMitigation round {round_no}: monitoring PM1 at 1 Hz...")
        hot = False
        for _ in range(6):
            cluster.run(1.0)
            vms = observe(cluster, "pm1")
            predicted = detector.predicted_pm_cpu(vms)
            hot = detector.observe("pm1", vms)
            print(
                f"  t={sim.now:5.1f}s predicted PM1 CPU = {predicted:6.1f}% "
                f"(threshold {detector.threshold:.0f}%) hot={hot}"
            )
            if hot:
                break
        if not hot:
            print("  no sustained hotspot -- done.")
            break
        placement = {
            "pm1": observe(cluster, "pm1"),
            "pm2": observe(cluster, "pm2"),
        }
        moves = planner.plan("pm1", placement)
        if not moves:
            print("  nothing movable without creating a new hotspot.")
            break
        print(f"  moves: {[(m.vm, m.src, '->', m.dst) for m in moves]}")
        for mv in moves:
            cluster.migrate_vm(mv.vm, mv.dst)
        detector.reset("pm1")
        cluster.run(3.0)

    print()
    for pm_name in ("pm1", "pm2"):
        vms = observe(cluster, pm_name)
        predicted = detector.predicted_pm_cpu(vms)
        print(
            f"final: {pm_name} predicted CPU = {predicted:6.1f}% "
            f"({'OK' if predicted <= detector.threshold else 'STILL HOT'})"
        )


if __name__ == "__main__":
    main()
