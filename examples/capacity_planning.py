#!/usr/bin/env python3
"""Capacity planning with the virtualization-overhead model.

Trains the paper's Eq. (3) model on a (condensed) micro-benchmark
sweep, then answers the provisioning question the paper motivates: how
many identical application VMs fit on one PM *once Dom0 and hypervisor
overhead are counted*, versus the naive guest-sum estimate?

Run:  python examples/capacity_planning.py
"""

from repro.models import TrainingConfig, train_multi_vm_model
from repro.monitor import ResourceVector
from repro.xen import DEFAULT_CALIBRATION, MachineSpec


def main() -> None:
    print("Training the Eq. (3) overhead model on the micro-benchmark")
    print("sweep (1/2/4 co-located VMs, condensed durations)...")
    model = train_multi_vm_model(
        TrainingConfig(vm_counts=(1, 2, 4), duration=40.0, warmup=3.0)
    )

    # A typical application VM: 35 % CPU, 140 MB resident, light disk,
    # ~800 Kb/s of traffic.
    vm_demand = ResourceVector(cpu=35.0, mem=140.0, io=12.0, bw=800.0)
    spec = MachineSpec()
    capacity = DEFAULT_CALIBRATION.effective_capacity_pct

    print(f"\nPer-VM demand: cpu={vm_demand.cpu}%, mem={vm_demand.mem}MB, "
          f"io={vm_demand.io}blk/s, bw={vm_demand.bw}Kb/s")
    print(f"PM: {spec.cores} cores (nominal {spec.cpu_capacity_pct:.0f}%), "
          f"effective schedulable capacity {capacity:.0f}%\n")

    header = (f"{'N VMs':>6} {'naive cpu':>10} {'pred pm cpu':>12} "
              f"{'dom0':>7} {'hyp':>6} {'fits?':>6}")
    print(header)
    print("-" * len(header))
    naive_fit = model_fit = 0
    for n in range(1, 9):
        naive = n * vm_demand.cpu
        pred = model.predict([vm_demand] * n)
        naive_ok = naive <= spec.cpu_capacity_pct
        model_ok = pred.pm_cpu <= capacity
        if naive_ok:
            naive_fit = n
        if model_ok:
            model_fit = n
        print(
            f"{n:>6} {naive:>10.1f} {pred.pm_cpu:>12.1f} "
            f"{pred.dom0_cpu:>7.1f} {pred.hyp_cpu:>6.1f} "
            f"{'yes' if model_ok else 'NO':>6}"
        )

    print(
        f"\nNaive guest-sum provisioning would pack {naive_fit} VMs; the "
        f"overhead model shows only {model_fit} actually fit.  The gap is "
        "the virtualization overhead the paper warns about -- exactly why "
        "VOU placements end up with exhausted PMs in Figure 10."
    )


if __name__ == "__main__":
    main()
