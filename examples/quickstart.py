#!/usr/bin/env python3
"""Quickstart: measure virtualization overhead of a single busy guest.

Builds the paper's testbed PM (quad-core Xeon, 2 GB, XenServer-style
stack), runs a lookbusy-like CPU hog at 90 % inside one guest, monitors
everything with the unified measurement script for two minutes of
simulated time, and prints the utilization table the paper's Section IV
reasons about.

Run:  python examples/quickstart.py
"""

from repro.monitor import MeasurementScript
from repro.sim import Simulator
from repro.workloads import CpuHog
from repro.xen import PhysicalMachine, VMSpec


def main() -> None:
    sim = Simulator(seed=42)
    pm = PhysicalMachine(sim, name="pm1")
    vm = pm.create_vm(VMSpec(name="vm1"))
    CpuHog(90.0).attach(vm)

    pm.start()
    sim.run_until(3.0)  # let the scheduler fixed point settle
    report = MeasurementScript(pm).run(duration=120.0)

    print("Mean utilizations over 120 s (1 Hz sampling):\n")
    header = f"{'entity':<8} {'cpu %':>8} {'mem MB':>8} {'io blk/s':>9} {'bw Kb/s':>9}"
    print(header)
    print("-" * len(header))
    for entity in report.entities():
        if entity == "hyp":
            print(f"{entity:<8} {report.mean(entity, 'cpu'):>8.2f} "
                  f"{'-':>8} {'-':>9} {'-':>9}")
            continue
        print(
            f"{entity:<8} {report.mean(entity, 'cpu'):>8.2f} "
            f"{report.mean(entity, 'mem'):>8.1f} "
            f"{report.mean(entity, 'io'):>9.2f} "
            f"{report.mean(entity, 'bw'):>9.2f}"
        )

    vm_cpu = report.mean("vm1", "cpu")
    overhead = report.mean("dom0", "cpu") + report.mean("hyp", "cpu")
    print(
        f"\nThe guest consumed {vm_cpu:.1f}% of a VCPU, but keeping it "
        f"running cost the platform another {overhead:.1f}% (Dom0 + "
        "hypervisor) -- the virtualization overhead the paper models."
    )


if __name__ == "__main__":
    main()
