#!/usr/bin/env python3
"""Elastic vertical scaling (the CloudScale mechanism VOA builds on).

A guest's load follows a daily-pattern-style wave; the vertical scaler
predicts each interval's demand (FFT signature + Markov + padding) and
resizes the VM's credit-scheduler cap just above it -- the tenant gets
headroom without a static worst-case reservation, and the provider can
plan the reclaimed capacity using the overhead model.

Run:  python examples/elastic_scaling.py
"""

from repro.models import TrainingConfig, train_multi_vm_model
from repro.placement import VerticalScaler
from repro.sim import Simulator
from repro.workloads import CpuHog, DynamicWorkload
from repro.xen import PhysicalMachine, VMSpec
import math


def main() -> None:
    print("Training the overhead model (condensed sweep)...")
    model = train_multi_vm_model(
        TrainingConfig(vm_counts=(1, 2, 4), duration=30.0, warmup=3.0)
    )

    sim = Simulator(seed=5)
    pm = PhysicalMachine(sim, name="pm1")
    vm = pm.create_vm(VMSpec(name="app"))
    hog = CpuHog(0.0).attach(vm)
    # A 60-second "day": load swings between ~15 % and ~65 %.
    DynamicWorkload(
        sim, hog, lambda t: 40.0 + 25.0 * math.sin(2 * math.pi * t / 60.0)
    )

    scaler = VerticalScaler(pm, model)
    pm.start()
    scaler.start()

    # Let the FFT signature detector see two full waves first.
    sim.run_until(120.0)

    print("\n  time   demand   granted   cap")
    print("  " + "-" * 34)
    samples = []
    for _ in range(24):
        sim.run_until(sim.now + 5.0)
        snap = pm.snapshot()
        cap = scaler.current_caps()["app"]
        granted = snap.vm("app").cpu_pct
        demand = vm.cpu_demand_total
        samples.append((demand, granted, cap))
        print(
            f"  {sim.now:5.0f}s {demand:7.1f}% {granted:8.1f}% "
            f"{cap:6.1f}%"
        )

    pinned = sum(1 for _, g, c in samples if g >= c - 0.5)
    slack = sum(c - g for _, g, c in samples) / len(samples)
    print(
        f"\nCap-pinned intervals: {pinned}/{len(samples)}; mean cap "
        f"slack {slack:.1f} points -- the cap rides just above demand "
        "instead of a static 100 % reservation."
    )


if __name__ == "__main__":
    main()
