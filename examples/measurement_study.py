#!/usr/bin/env python3
"""Measurement study: sweep the Table II micro benchmarks.

Re-runs a condensed version of the paper's Section IV study -- every
benchmark kind at every intensity level on a single guest -- prints the
overhead curves with their increase rates (the paper's dY/dX metric),
and archives the raw series to CSV for external plotting.

Run:  python examples/measurement_study.py [output.csv]
"""

import sys

from repro.analysis import summarize_rates
from repro.experiments import microbench_sweep
from repro.traces import Trace, TraceSet, save_csv
from repro.workloads import KINDS, TABLE_II


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "measurement_study.csv"
    archive = TraceSet()
    for kind in KINDS:
        spec = TABLE_II[kind]
        sweep = microbench_sweep(kind, n_vms=1, duration=30.0, seed=7)
        print(f"\n=== {spec.label} workload ({spec.units}) ===")
        print(f"{'level':>8} {'vm.cpu':>8} {'dom0.cpu':>9} {'hyp.cpu':>8} "
              f"{'pm.io':>8} {'pm.bw':>9}")
        for i, level in enumerate(sweep.levels):
            print(
                f"{level:>8g} {sweep.series('vm0', 'cpu')[i]:>8.2f} "
                f"{sweep.series('dom0', 'cpu')[i]:>9.2f} "
                f"{sweep.series('hyp', 'cpu')[i]:>8.2f} "
                f"{sweep.series('pm', 'io')[i]:>8.2f} "
                f"{sweep.series('pm', 'bw')[i]:>9.1f}"
            )
        dom0 = summarize_rates(sweep.levels, sweep.series("dom0", "cpu"))
        print(
            f"Dom0 CPU increase rate: {dom0.initial:.4f} -> {dom0.final:.4f} "
            f"per unit of {spec.units}"
        )
        for entity in ("vm0", "dom0", "hyp", "pm"):
            resources = ("cpu",) if entity == "hyp" else ("cpu", "io", "bw")
            for res in resources:
                archive.add(
                    Trace(
                        f"{kind}.{entity}.{res}",
                        list(range(len(sweep.levels))),
                        sweep.series(entity, res),
                    )
                )
    save_csv(archive, out_path)
    print(f"\nRaw series archived to {out_path}")


if __name__ == "__main__":
    main()
