"""The fixer, the incremental cache, SARIF output, and docs sync."""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    FIXABLE_CODES,
    LintCache,
    LintEngine,
    all_rules,
    fix_source,
    sarif,
)
from repro.lint.config import LintConfig

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestFixes:
    def _fix(self, source: str, path: str = "repro/models/z.py"):
        return fix_source(source, path=path, config=LintConfig())

    def test_set_display_iteration_sorted(self):
        fixed, n = self._fix(
            "def f():\n    for k in {'b', 'a'}:\n        print(k)\n"
        )
        assert n == 1
        assert "for k in sorted({'b', 'a'}):" in fixed

    def test_dict_keys_becomes_sorted_dict(self):
        fixed, n = self._fix(
            "def f(d):\n    for k in d.keys():\n        print(k)\n"
        )
        assert n == 1
        assert "for k in sorted(d):" in fixed

    def test_mutable_default_sentinel_rewrite(self):
        fixed, n = self._fix(
            "def f(xs=[]):\n    xs.append(1)\n    return xs\n"
        )
        assert n == 1
        assert "def f(xs=None):" in fixed
        assert "if xs is None:" in fixed
        assert "xs = []" in fixed

    def test_nonempty_default_contents_preserved(self):
        fixed, n = self._fix(
            "def f(xs=[1, 2]):\n    return xs\n"
        )
        assert n == 1
        assert "xs = [1, 2]" in fixed

    def test_guard_inserted_after_docstring(self):
        fixed, n = self._fix(
            'def f(d={}):\n    """Doc."""\n    return d\n'
        )
        assert n == 1
        lines = fixed.splitlines()
        assert lines.index('    """Doc."""') < lines.index(
            "    if d is None:"
        )

    def test_fix_is_idempotent(self):
        source = (
            "def f(xs=[], d={}):\n"
            "    for k in {'b', 'a'}:\n"
            "        xs.append(k)\n"
            "    return xs, d\n"
        )
        fixed, n = self._fix(source)
        assert n == 3
        again, n2 = self._fix(fixed)
        assert n2 == 0
        assert again == fixed

    def test_fixed_output_lints_clean_of_fixable_codes(self):
        source = (
            "def f(xs=[]):\n"
            "    for k in {'b', 'a'}:\n"
            "        xs.append(k)\n"
            "    return xs\n"
        )
        fixed, _ = self._fix(source)
        left = [
            v for v in LintEngine(LintConfig()).lint_source(
                fixed, path="repro/models/z.py"
            )
            if v.code in FIXABLE_CODES
        ]
        assert left == []

    def test_noqa_suppressed_hit_is_not_touched(self):
        source = (
            "def f():\n"
            "    for k in {'b', 'a'}:  # repro: noqa[REP003] tiny set\n"
            "        print(k)\n"
        )
        fixed, n = self._fix(source)
        assert n == 0
        assert fixed == source

    def test_clean_source_is_byte_identical(self):
        source = "def f(xs):\n    return sorted(xs)\n"
        fixed, n = self._fix(source)
        assert n == 0
        assert fixed == source


class TestIncrementalCache:
    TREE = {
        "repro/leaf.py": "def one():\n    return 1\n",
        "repro/mid.py": (
            "from repro import leaf\n\n\n"
            "def two():\n    return leaf.one() + 1\n"
        ),
        "repro/island.py": "def alone():\n    return 0\n",
    }

    def _write(self, tmp_path):
        for rel, source in self.TREE.items():
            f = tmp_path / rel
            f.parent.mkdir(parents=True, exist_ok=True)
            f.write_text(source)

    def test_second_run_replays_everything(self, tmp_path):
        self._write(tmp_path)
        engine = LintEngine(LintConfig())
        cache_dir = tmp_path / ".cache"
        first = engine.run([tmp_path], cache=LintCache(cache_dir))
        assert first.analyzed == 3 and first.cached == 0
        second = engine.run([tmp_path], cache=LintCache(cache_dir))
        assert second.analyzed == 0 and second.cached == 3

    def test_touching_leaf_reanalyzes_only_dependents(self, tmp_path):
        self._write(tmp_path)
        engine = LintEngine(LintConfig())
        cache_dir = tmp_path / ".cache"
        engine.run([tmp_path], cache=LintCache(cache_dir))
        leaf = tmp_path / "repro" / "leaf.py"
        leaf.write_text(leaf.read_text() + "\n# touched\n")
        report = engine.run([tmp_path], cache=LintCache(cache_dir))
        # leaf + its dependent mid re-analyze; the island replays
        assert report.analyzed == 2
        assert report.cached == 1

    def test_config_change_invalidates_everything(self, tmp_path):
        self._write(tmp_path)
        cache_dir = tmp_path / ".cache"
        LintEngine(LintConfig()).run([tmp_path], cache=LintCache(cache_dir))
        changed = LintConfig(ignore=("REP004",))
        report = LintEngine(changed).run(
            [tmp_path], cache=LintCache(cache_dir)
        )
        assert report.analyzed == 3 and report.cached == 0

    def test_cached_run_reports_same_violations(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\n\ndef f():\n    return time.time()\n")
        engine = LintEngine(LintConfig())
        cache_dir = tmp_path / ".cache"
        first = engine.run([tmp_path], cache=LintCache(cache_dir))
        second = engine.run([tmp_path], cache=LintCache(cache_dir))
        assert second.cached == 1
        assert [v.render() for v in second.violations] == [
            v.render() for v in first.violations
        ]

    def test_corrupt_cache_degrades_to_full_run(self, tmp_path):
        self._write(tmp_path)
        cache_dir = tmp_path / ".cache"
        engine = LintEngine(LintConfig())
        engine.run([tmp_path], cache=LintCache(cache_dir))
        (cache_dir / "repro-lint-cache.json").write_text("{not json")
        report = engine.run([tmp_path], cache=LintCache(cache_dir))
        assert report.analyzed == 3
        assert report.violations == []

    def test_prune_drops_deleted_files(self, tmp_path):
        self._write(tmp_path)
        cache_dir = tmp_path / ".cache"
        engine = LintEngine(LintConfig())
        engine.run([tmp_path], cache=LintCache(cache_dir))
        (tmp_path / "repro" / "island.py").unlink()
        engine.run([tmp_path], cache=LintCache(cache_dir))
        data = json.loads(
            (cache_dir / "repro-lint-cache.json").read_text()
        )
        assert not any("island" in p for p in data["files"])


class TestSarif:
    def test_clean_run_validates(self):
        doc = sarif.render([], LintEngine(LintConfig()).rules())
        assert sarif.validate(doc) == []
        assert doc["version"] == "2.1.0"

    def test_violations_round_trip(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\n\ndef f():\n    return time.time()\n")
        engine = LintEngine(LintConfig())
        violations = engine.lint_paths([tmp_path])
        assert violations
        doc = sarif.render(violations, engine.rules())
        assert sarif.validate(doc) == []
        results = doc["runs"][0]["results"]
        assert {r["ruleId"] for r in results} == {v.code for v in violations}
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1

    def test_rule_catalogue_covers_every_result(self):
        engine = LintEngine(LintConfig())
        doc = sarif.render([], engine.rules())
        ids = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert {r.code for r in engine.rules()} <= ids
        assert "REP000" in ids  # parse failures resolve to a rule too

    def test_validator_catches_malformed_docs(self):
        assert sarif.validate([]) != []
        assert sarif.validate({"version": "2.1.0"}) != []
        doc = sarif.render([], [])
        doc["runs"][0]["results"] = [{"ruleId": 7}]
        assert sarif.validate(doc) != []

    def test_cli_sarif_output_parses_and_validates(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("x = y == 1.5\n")
        assert main(["lint", str(tmp_path), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert sarif.validate(doc) == []
        assert doc["runs"][0]["results"]


class TestCliAdditions:
    def test_stats_counts_cached_files(self, tmp_path, capsys):
        f = tmp_path / "repro" / "ok.py"
        f.parent.mkdir(parents=True)
        f.write_text("x = 1\n")
        cache_dir = str(tmp_path / ".cache")
        assert main(
            ["lint", str(tmp_path), "--cache-dir", cache_dir, "--stats"]
        ) == 0
        assert "1 file(s) analyzed, 0 replayed" in capsys.readouterr().out
        assert main(
            ["lint", str(tmp_path), "--cache-dir", cache_dir, "--stats"]
        ) == 0
        assert "0 file(s) analyzed, 1 replayed" in capsys.readouterr().out

    def test_fix_flag_rewrites_in_place(self, tmp_path, capsys):
        f = tmp_path / "repro" / "models" / "m.py"
        f.parent.mkdir(parents=True)
        f.write_text("def f(xs=[]):\n    return xs\n")
        assert main(["lint", str(tmp_path), "--fix"]) == 0
        assert "def f(xs=None):" in f.read_text()
        assert "rewrote 1 violation(s)" in capsys.readouterr().err

    def test_epilogue_range_tracks_registry(self, capsys):
        from repro.lint.cli import _catalogue_range

        rng = _catalogue_range()
        assert rng.startswith("REP001")
        assert rng.endswith(max(r.code for r in all_rules()))

    def test_list_rules_includes_project_scope(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REP106" in out and "project" in out


class TestDocsSync:
    """The README rule table stays in lock-step with the registry."""

    ROW = re.compile(
        r"^\|\s*(REP\d{3})\s*\|\s*([a-z0-9-]+)\s*\|", re.MULTILINE
    )

    def test_readme_table_matches_registry(self):
        text = (REPO_ROOT / "README.md").read_text()
        documented = {m.group(1): m.group(2) for m in self.ROW.finditer(text)}
        live = {r.code: r.name for r in all_rules()}
        assert documented == live, (
            "README 'Determinism enforcement' table out of sync with "
            "repro.lint REGISTRY"
        )

    def test_pyproject_comment_names_live_range(self):
        text = (REPO_ROOT / "pyproject.toml").read_text()
        assert "REP001..REP010" not in text
        codes = sorted(r.code for r in all_rules())
        file_codes = sorted(
            r.code for r in all_rules() if r.scope == "file"
        )
        project_codes = sorted(
            r.code for r in all_rules() if r.scope == "project"
        )
        assert f"{file_codes[0]}..{file_codes[-1]}" in text
        assert f"{project_codes[0]}..{project_codes[-1]}" in text
        assert codes  # registry is non-empty by construction

    def test_streams_manifest_covers_audited_call_sites(self):
        """Every statically-extractable stream in src/ is manifest-covered
        (the self-lint asserts this end to end; here we assert the
        manifest itself is non-trivial so REP102 runs in coverage mode)."""
        from repro.lint import load_config

        cfg = load_config(REPO_ROOT / "pyproject.toml")
        manifest = dict(cfg.streams)
        assert len(manifest) >= 10
        assert manifest["trial-clients"] == ("repro/placement/scenario.py",)
        assert "faults.worker.*" in manifest
