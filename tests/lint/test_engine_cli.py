"""Engine mechanics, config loading, the CLI, and the self-lint gate."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import LintEngine, Violation, lint_paths, load_config
from repro.lint.config import LintConfig
from repro.lint.rules import PARSE_ERROR_CODE

REPO_ROOT = Path(__file__).resolve().parents[2]

#: A fixture module with one known violation per rule (line numbers
#: don't matter; codes do).
SEEDED_BAD = """\
import random
import time
import numpy as np
from datetime import datetime


def stamp():
    return time.time(), datetime.now()


def draw(xs=[]):
    rng = np.random.default_rng(0)
    for x in set(xs):
        print(x)
    try:
        return rng.random() == 0.5
    except Exception:
        pass
    return sorted(xs, key=lambda v: hash(v))
"""

#: Every code the seeded fixture must trip.
SEEDED_CODES = {
    "REP001", "REP002", "REP003", "REP004", "REP005",
    "REP006", "REP007", "REP008", "REP010",
}


class TestEngine:
    def test_seeded_fixture_trips_every_rule(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(SEEDED_BAD)
        codes = {v.code for v in lint_paths([bad])}
        assert SEEDED_CODES <= codes

    def test_syntax_error_reports_rep000(self):
        engine = LintEngine()
        out = engine.lint_source("def broken(:\n", path="x.py")
        assert [v.code for v in out] == [PARSE_ERROR_CODE]
        assert "syntax error" in out[0].message

    def test_unreadable_file_reports_rep000(self, tmp_path):
        engine = LintEngine()
        out = engine.lint_file(tmp_path / "missing.py")
        assert [v.code for v in out] == [PARSE_ERROR_CODE]

    def test_walk_is_sorted_and_honors_exclude(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        skip = tmp_path / "__pycache__"
        skip.mkdir()
        (skip / "c.py").write_text("import random\n")
        files = LintEngine().walk([tmp_path])
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_violations_sorted_by_location(self, tmp_path):
        f = tmp_path / "repro" / "sim" / "two.py"
        f.parent.mkdir(parents=True)
        f.write_text("import random\nx = y == 1.5\n")
        out = lint_paths([f])
        assert [(v.line, v.code) for v in out] == [
            (1, "REP001"), (2, "REP004"),
        ]

    def test_render_is_clickable(self):
        v = Violation("REP004", "msg", "a/b.py", 3, 0)
        assert v.render() == "a/b.py:3:1: REP004 msg"


class TestConfig:
    def test_defaults_without_file(self, tmp_path):
        cfg = load_config(tmp_path / "pyproject.toml")
        assert cfg == LintConfig()

    def test_overrides_applied(self, tmp_path):
        pp = tmp_path / "pyproject.toml"
        pp.write_text(
            "[tool.repro.lint]\n"
            'ignore = ["REP004"]\n'
            'print-allowed = ["pkg/cli.py"]\n'
        )
        cfg = load_config(pp)
        assert cfg.ignore == ("REP004",)
        assert cfg.print_allowed == ("pkg/cli.py",)
        # untouched keys keep their defaults
        assert cfg.rng_allowed == LintConfig().rng_allowed

    def test_unknown_key_raises(self, tmp_path):
        pp = tmp_path / "pyproject.toml"
        pp.write_text("[tool.repro.lint]\nbogus = true\n")
        with pytest.raises(ValueError, match="bogus"):
            load_config(pp)

    def test_repo_pyproject_table_loads(self):
        cfg = load_config(REPO_ROOT / "pyproject.toml")
        assert "repro/sim/rng.py" in cfg.rng_allowed
        assert any("repro/sim" == p for p in cfg.wallclock_paths)


class TestCli:
    def _bad_tree(self, tmp_path) -> Path:
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(SEEDED_BAD)
        return tmp_path

    def test_seeded_fixture_exits_nonzero(self, tmp_path, capsys):
        tree = self._bad_tree(tmp_path)
        assert main(["lint", str(tree)]) == 1
        out = capsys.readouterr().out
        assert "REP007" in out
        assert "violation(s)" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        f = tmp_path / "ok.py"
        f.write_text("x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        tree = self._bad_tree(tmp_path)
        assert main(["lint", str(tree), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == len(payload["violations"])
        assert {"code", "message", "path", "line", "col"} <= set(
            payload["violations"][0]
        )

    def test_select_filters(self, tmp_path, capsys):
        tree = self._bad_tree(tmp_path)
        assert main(["lint", str(tree), "--select", "REP005"]) == 1
        out = capsys.readouterr().out
        assert "REP005" in out
        assert "REP007" not in out

    def test_unknown_code_is_usage_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path), "--select", "REP999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["lint", "no/such/dir"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REP001" in out and "REP010" in out

    def test_statistics_footer(self, tmp_path, capsys):
        tree = self._bad_tree(tmp_path)
        assert main(["lint", str(tree), "--statistics"]) == 1
        assert "float-equality" in capsys.readouterr().out


class TestSelfLint:
    """The tree stays clean by construction."""

    def test_src_is_clean(self):
        cfg = load_config(REPO_ROOT / "pyproject.toml")
        violations = lint_paths([REPO_ROOT / "src"], config=cfg)
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_cli_src_exits_zero(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "src"]) == 0
        assert "clean" in capsys.readouterr().out
