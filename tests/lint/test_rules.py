"""Per-rule fixtures: positive, negative, and noqa-suppressed cases."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import LintConfig, lint_source
from repro.lint.rules import REGISTRY, all_rules


def codes_in(source: str, path: str = "src/repro/sim/engine.py") -> list:
    src = textwrap.dedent(source)
    return [v.code for v in lint_source(src, path=path)]


class TestRegistry:
    def test_rule_codes_are_unique_and_sorted_catalogue(self):
        rules = all_rules()
        codes = [r.code for r in rules]
        assert codes == sorted(codes)
        assert len(set(codes)) == len(codes)

    def test_expected_rules_present(self):
        for code in (
            "REP001", "REP002", "REP003", "REP004", "REP005",
            "REP006", "REP007", "REP008", "REP009", "REP010",
            "REP011",
        ):
            assert code in REGISTRY

    def test_every_rule_has_name_and_summary(self):
        for rule in all_rules():
            assert rule.name and rule.summary


class TestRep001ModuleLevelRandom:
    def test_import_random_flagged(self):
        assert "REP001" in codes_in("import random\n")

    def test_from_random_flagged(self):
        assert "REP001" in codes_in("from random import choice\n")

    def test_legacy_numpy_draw_flagged(self):
        src = """
            import numpy as np
            x = np.random.rand(3)
        """
        assert "REP001" in codes_in(src)

    def test_registry_draws_clean(self):
        src = """
            def draw(sim):
                return sim.rng("noise").normal()
        """
        assert codes_in(src) == []

    def test_allowed_inside_rng_module(self):
        assert codes_in(
            "import random\n", path="src/repro/sim/rng.py"
        ) == []

    def test_noqa_suppresses(self):
        assert codes_in("import random  # repro: noqa[REP001]\n") == []


class TestRep002WallClock:
    def test_time_time_flagged_in_core(self):
        src = """
            import time
            def stamp():
                return time.time()
        """
        assert "REP002" in codes_in(src)

    def test_perf_counter_from_import_flagged(self):
        src = """
            from time import perf_counter
            def stamp():
                return perf_counter()
        """
        assert "REP002" in codes_in(src)

    def test_datetime_now_flagged(self):
        src = """
            from datetime import datetime
            def stamp():
                return datetime.now()
        """
        assert "REP002" in codes_in(src)

    def test_outside_core_paths_clean(self):
        src = """
            import time
            def stamp():
                return time.time()
        """
        assert codes_in(src, path="src/repro/lint/cli.py") == []

    def test_sim_now_clean(self):
        assert codes_in("def f(sim):\n    return sim.now\n") == []


class TestRep003UnorderedIteration:
    def test_set_literal_flagged(self):
        assert "REP003" in codes_in(
            "for x in {1, 2, 3}:\n    pass\n"
        )

    def test_set_call_flagged(self):
        assert "REP003" in codes_in(
            "for x in set(names):\n    pass\n"
        )

    def test_keys_call_flagged(self):
        assert "REP003" in codes_in(
            "for k in d.keys():\n    pass\n"
        )

    def test_comprehension_flagged(self):
        assert "REP003" in codes_in(
            "out = [x for x in set(names)]\n"
        )

    def test_sorted_wrap_clean(self):
        assert codes_in("for x in sorted(set(names)):\n    pass\n") == []

    def test_dict_iteration_clean(self):
        assert codes_in("for k in d:\n    pass\n") == []


class TestRep004FloatEquality:
    def test_eq_flagged(self):
        assert "REP004" in codes_in("ok = x == 1.5\n")

    def test_noteq_flagged(self):
        assert "REP004" in codes_in("ok = x != 0.0\n")

    def test_int_comparison_clean(self):
        assert codes_in("ok = x == 1\n") == []

    def test_float_inequality_clean(self):
        assert codes_in("ok = x >= 1.5\n") == []

    def test_noqa_sentinel(self):
        assert codes_in("ok = x == 0.0  # repro: noqa[REP004]\n") == []


class TestRep005MutableDefault:
    def test_list_default_flagged(self):
        assert "REP005" in codes_in("def f(xs=[]):\n    pass\n")

    def test_dict_call_default_flagged(self):
        assert "REP005" in codes_in("def f(m=dict()):\n    pass\n")

    def test_kwonly_set_default_flagged(self):
        assert "REP005" in codes_in("def f(*, s=set()):\n    pass\n")

    def test_none_default_clean(self):
        assert codes_in("def f(xs=None):\n    pass\n") == []

    def test_tuple_default_clean(self):
        assert codes_in("def f(xs=()):\n    pass\n") == []


class TestRep006SilentExcept:
    def test_bare_except_flagged(self):
        src = """
            try:
                work()
            except:
                pass
        """
        assert "REP006" in codes_in(src)

    def test_except_exception_pass_flagged(self):
        src = """
            try:
                work()
            except Exception:
                pass
        """
        assert "REP006" in codes_in(src)

    def test_except_exception_handled_clean(self):
        src = """
            try:
                work()
            except Exception as exc:
                log(exc)
        """
        assert codes_in(src) == []

    def test_narrow_except_pass_clean(self):
        src = """
            try:
                work()
            except KeyError:
                pass
        """
        assert codes_in(src) == []


class TestRep007RngBypass:
    def test_default_rng_flagged(self):
        src = """
            import numpy as np
            rng = np.random.default_rng(0)
        """
        assert "REP007" in codes_in(src)

    def test_from_import_default_rng_flagged(self):
        src = """
            from numpy.random import default_rng
            rng = default_rng(7)
        """
        assert "REP007" in codes_in(src)

    def test_reseed_flagged(self):
        assert "REP007" in codes_in("gen.seed(42)\n")

    def test_allowed_in_rng_module(self):
        src = """
            import numpy as np
            rng = np.random.default_rng(0)
        """
        assert codes_in(src, path="src/repro/sim/rng.py") == []

    def test_generator_from_seed_clean(self):
        src = """
            from repro.sim.rng import generator_from_seed
            rng = generator_from_seed(0)
        """
        assert codes_in(src) == []


class TestRep008PrintInLibrary:
    def test_print_flagged_in_library(self):
        assert "REP008" in codes_in("print('hi')\n")

    def test_print_allowed_in_cli(self):
        assert codes_in("print('hi')\n", path="src/repro/cli.py") == []

    def test_print_allowed_in_experiments(self):
        assert codes_in(
            "print('hi')\n", path="src/repro/experiments/report.py"
        ) == []


class TestRep009EnvRead:
    def test_environ_flagged_in_core(self):
        src = """
            import os
            seed = os.environ["SEED"]
        """
        assert "REP009" in codes_in(src)

    def test_getenv_flagged_in_core(self):
        src = """
            import os
            seed = os.getenv("SEED")
        """
        assert "REP009" in codes_in(src)

    def test_outside_core_clean(self):
        src = """
            import os
            seed = os.getenv("SEED")
        """
        assert codes_in(src, path="src/repro/lint/cli.py") == []


class TestRep010UnstableSortKey:
    def test_sorted_by_hash_flagged(self):
        assert "REP010" in codes_in(
            "out = sorted(xs, key=lambda v: hash(v.name))\n"
        )

    def test_sort_by_id_builtin_flagged(self):
        assert "REP010" in codes_in("xs.sort(key=id)\n")

    def test_stable_key_clean(self):
        assert codes_in(
            "out = sorted(xs, key=lambda v: v.name)\n"
        ) == []


class TestSuppression:
    def test_blanket_noqa_suppresses_all_codes(self):
        line = "rng = np.random.default_rng(0); print(rng)  # repro: noqa\n"
        assert codes_in("import numpy as np\n" + line) == []

    def test_listed_codes_only(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(0)  # repro: noqa[REP008]\n"
        )
        assert codes_in(src) == ["REP007"]

    def test_noqa_on_other_line_does_not_leak(self):
        src = (
            "ok = x == 1.5  # repro: noqa[REP004]\n"
            "bad = y == 2.5\n"
        )
        assert codes_in(src) == ["REP004"]

    def test_case_insensitive_marker(self):
        assert codes_in("ok = x == 1.5  # REPRO: NOQA[rep004]\n") == []


class TestSelectIgnore:
    SRC = "import random\nok = x == 1.5\n"

    def test_select_restricts(self):
        cfg = LintConfig(select=("REP004",))
        assert [
            v.code for v in lint_source(
                self.SRC, path="src/repro/sim/engine.py", config=cfg
            )
        ] == ["REP004"]

    def test_ignore_drops(self):
        cfg = LintConfig(ignore=("REP004",))
        assert [
            v.code for v in lint_source(
                self.SRC, path="src/repro/sim/engine.py", config=cfg
            )
        ] == ["REP001"]


class TestRep011JustifiedNoqa:
    AUDITED = "src/repro/perf/supervisor.py"
    CLOCK = "import time\nt = time.monotonic()"

    def test_unjustified_noqa_flagged_in_audited_file(self):
        src = self.CLOCK + "  # repro: noqa[REP002]\n"
        assert codes_in(src, path=self.AUDITED) == ["REP011"]

    def test_blanket_noqa_flagged_in_audited_file(self):
        src = self.CLOCK + "  # repro: noqa\n"
        assert codes_in(src, path=self.AUDITED) == ["REP011"]

    def test_justified_noqa_clean(self):
        src = (
            self.CLOCK
            + "  # repro: noqa[REP002] deadlines measure real liveness\n"
        )
        assert codes_in(src, path=self.AUDITED) == []

    def test_cannot_be_suppressed_by_its_own_noqa(self):
        # The audited comment *is* a noqa -- if REP011 respected
        # suppressions, a blanket noqa would silence the audit of
        # itself.
        src = self.CLOCK + "  # repro: noqa\n"
        assert "REP011" in codes_in(src, path=self.AUDITED)

    def test_unaudited_files_exempt(self):
        src = self.CLOCK + "  # repro: noqa[REP002]\n"
        assert codes_in(src, path="src/repro/sim/engine.py") == []

    def test_ignore_config_disables_audit(self):
        import textwrap

        from repro.lint import lint_source

        src = self.CLOCK + "  # repro: noqa[REP002]\n"
        cfg = LintConfig(ignore=("REP011",))
        assert [
            v.code
            for v in lint_source(
                textwrap.dedent(src), path=self.AUDITED, config=cfg
            )
        ] == []

    def test_audited_paths_configurable(self):
        import textwrap

        from repro.lint import lint_source

        src = self.CLOCK + "  # repro: noqa[REP002]\n"
        cfg = LintConfig(noqa_justify=("repro/sim/engine.py",))
        found = [
            v.code
            for v in lint_source(
                textwrap.dedent(src),
                path="src/repro/sim/engine.py",
                config=cfg,
            )
        ]
        assert found == ["REP011"]
