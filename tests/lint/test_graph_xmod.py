"""Whole-program analysis: graph building, taint, the REP1xx pack."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List

import pytest

from repro.lint import LintEngine, Violation
from repro.lint.config import LintConfig
from repro.lint.graph import ProjectGraph, module_name_for
from repro.lint.taint import clock_sources, propagate

REPO_ROOT = Path(__file__).resolve().parents[2]


def build_graph(
    files: Dict[str, str], config: LintConfig = None
) -> ProjectGraph:
    """Build a ProjectGraph from ``{posix_path: source}`` fixtures."""
    parsed = [
        (path, source, ast.parse(source)) for path, source in files.items()
    ]
    return ProjectGraph.build(parsed, config or LintConfig())


def lint_tree(
    tmp_path: Path, files: Dict[str, str], config: LintConfig = None
) -> List[Violation]:
    """Write ``{relpath: source}`` under ``tmp_path`` and lint it."""
    for rel, source in files.items():
        f = tmp_path / rel
        f.parent.mkdir(parents=True, exist_ok=True)
        f.write_text(source)
    return LintEngine(config or LintConfig()).lint_paths([tmp_path])


def codes(violations: List[Violation]) -> List[str]:
    return [v.code for v in violations]


class TestModuleNames:
    def test_rooted_at_repro(self):
        assert module_name_for("src/repro/sim/rng.py") == "repro.sim.rng"

    def test_tmp_prefix_stripped(self):
        assert (
            module_name_for("/tmp/x/repro/perf/executor.py")
            == "repro.perf.executor"
        )

    def test_init_collapses_to_package(self):
        assert module_name_for("src/repro/sim/__init__.py") == "repro.sim"


class TestGraph:
    FILES = {
        "repro/a.py": "import time\n\n\ndef src():\n    return time.time()\n",
        "repro/b.py": (
            "from repro import a\n\n\ndef mid():\n    return a.src()\n"
        ),
        "repro/c.py": (
            "from repro import b\n\n\ndef top():\n    return b.mid()\n"
        ),
    }

    def test_import_deps_bound(self):
        g = build_graph(self.FILES)
        assert "repro.a" in g.modules["repro.b"].deps
        assert "repro.b" in g.dependents["repro.a"] or (
            "repro.b" in g.dependents.get("repro.a", set())
        )

    def test_calls_bound_across_modules(self):
        g = build_graph(self.FILES)
        assert "repro.c.top" in g.callers["repro.b.mid"]
        assert "repro.b.mid" in g.callers["repro.a.src"]

    def test_dependency_closure_is_transitive(self):
        g = build_graph(self.FILES)
        assert g.dependency_closure("repro.c") >= {
            "repro.a", "repro.b", "repro.c",
        }
        assert g.dependency_closure("repro.a") == {"repro.a"}

    def test_dependents_closure_is_transitive(self):
        g = build_graph(self.FILES)
        assert g.dependents_closure("repro.a") >= {
            "repro.a", "repro.b", "repro.c",
        }

    def test_import_cycle_terminates(self):
        g = build_graph({
            "repro/x.py": "from repro import y\n",
            "repro/y.py": "from repro import x\n",
        })
        assert g.dependency_closure("repro.x") == {"repro.x", "repro.y"}
        assert g.dependency_closure("repro.y") == {"repro.x", "repro.y"}


class TestTaint:
    def test_multi_hop_chain(self):
        g = build_graph(TestGraph.FILES)
        tainted = propagate(g, clock_sources(g))
        assert "repro.c.top" in tainted
        assert tainted["repro.c.top"].chain == (
            "repro.c.top", "repro.b.mid", "repro.a.src",
        )
        assert tainted["repro.c.top"].read.resolved == "time.time"

    def test_call_cycle_terminates(self):
        g = build_graph({
            "repro/m.py": (
                "import time\n\n\n"
                "def f():\n    return g()\n\n\n"
                "def g():\n    return f() or time.time()\n"
            ),
        })
        tainted = propagate(g, clock_sources(g))
        assert "repro.m.f" in tainted and "repro.m.g" in tainted

    def test_noqa_at_funnel_stops_taint(self):
        g = build_graph({
            "repro/funnel.py": (
                "import time\n\n\n"
                "def wall_now():\n"
                "    return time.time()  # repro: noqa[REP002] funnel\n"
            ),
            "repro/core.py": (
                "from repro import funnel\n\n\n"
                "def step():\n    return funnel.wall_now()\n"
            ),
        })
        assert clock_sources(g) == {}
        assert propagate(g, clock_sources(g)) == {}

    def test_render_elides_long_chains(self):
        from repro.lint.graph import ClockRead
        from repro.lint.taint import Taint

        t = Taint(
            chain=("a", "b", "c", "d", "e", "f"),
            read=ClockRead("time.time", 1, 0, False),
        )
        assert t.render(max_hops=4) == "a -> b -> c -> ... -> f"


class TestRep101:
    """Laundered wall-clock: the acceptance-mandated planted violation."""

    def test_cross_module_wallclock_via_helper_is_caught(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/util.py": (
                "import time\n\n\n"
                "def helper():\n    return deeper()\n\n\n"
                "def deeper():\n    return time.time()\n"
            ),
            "repro/sim/core.py": (
                "from repro import util\n\n\n"
                "def step():\n    return util.helper()\n"
            ),
        })
        hits = [v for v in out if v.code == "REP101"]
        assert len(hits) == 1
        assert hits[0].path.endswith("repro/sim/core.py")
        assert "repro.util.deeper" in hits[0].message
        assert "time.time" in hits[0].message

    def test_funnel_routed_call_is_clean(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/util.py": (
                "import time\n\n\n"
                "def wall_now():\n"
                "    return time.time()  # repro: noqa[REP002] funnel\n"
            ),
            "repro/sim/core.py": (
                "from repro import util\n\n\n"
                "def step():\n    return util.wall_now()\n"
            ),
        })
        assert "REP101" not in codes(out)

    def test_direct_read_in_core_is_rep002_not_rep101(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/sim/core.py": (
                "import time\n\n\ndef step():\n    return time.time()\n"
            ),
        })
        assert "REP002" in codes(out)
        assert "REP101" not in codes(out)

    def test_env_read_also_taints(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/util.py": (
                "import os\n\n\n"
                "def mode():\n    return os.getenv('REPRO_MODE')\n"
            ),
            "repro/sim/core.py": (
                "from repro import util\n\n\n"
                "def step():\n    return util.mode()\n"
            ),
        })
        assert "REP101" in codes(out)


class TestRep102:
    """Stream provenance: the acceptance-mandated duplicated name."""

    def test_duplicated_stream_name_across_modules(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/sim/a.py": (
                "def run(rng):\n    return rng('noise')\n"
            ),
            "repro/sim/b.py": (
                "def run(rng):\n    return rng('noise')\n"
            ),
        })
        hits = [v for v in out if v.code == "REP102"]
        assert len(hits) == 2
        assert all("'noise'" in v.message for v in hits)

    def test_same_module_reuse_is_fine_without_manifest(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/sim/a.py": (
                "def run(rng):\n"
                "    g = rng('noise')\n"
                "    h = rng('noise')\n"
                "    return g, h\n"
            ),
        })
        assert "REP102" not in codes(out)

    def _manifest_cfg(self) -> LintConfig:
        return LintConfig(streams=(
            ("noise", ("repro/sim/a.py",)),
            ("faults.worker.*", ("repro/faults/workers.py",)),
        ))

    def test_manifest_undeclared_name_flags(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/sim/a.py": "def run(rng):\n    return rng('rogue')\n",
        }, self._manifest_cfg())
        hits = [v for v in out if v.code == "REP102"]
        assert len(hits) == 1
        assert "not declared" in hits[0].message

    def test_manifest_wrong_owner_flags(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/sim/b.py": "def run(rng):\n    return rng('noise')\n",
        }, self._manifest_cfg())
        hits = [v for v in out if v.code == "REP102"]
        assert len(hits) == 1
        assert "declared to" in hits[0].message

    def test_manifest_declared_use_is_clean(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/sim/a.py": "def run(rng):\n    return rng('noise')\n",
        }, self._manifest_cfg())
        assert "REP102" not in codes(out)

    def test_family_must_be_declared_verbatim(self, tmp_path):
        # "faults.worker.*" is declared; "faults.timer.*" is not, and a
        # family never matches by fnmatch -- only verbatim.
        out = lint_tree(tmp_path, {
            "repro/faults/workers.py": (
                "def spawn(rng, kind):\n"
                "    return rng(f'faults.worker.{kind}')\n"
            ),
            "repro/faults/timers.py": (
                "def spawn(rng, kind):\n"
                "    return rng(f'faults.timer.{kind}')\n"
            ),
        }, self._manifest_cfg())
        hits = [v for v in out if v.code == "REP102"]
        assert len(hits) == 1
        assert hits[0].path.endswith("timers.py")
        assert "verbatim" in hits[0].message

    def test_module_constant_substituted_into_family(self, tmp_path):
        cfg = LintConfig(streams=(
            ("faults.service.*", ("repro/faults/service.py",)),
        ))
        out = lint_tree(tmp_path, {
            "repro/faults/service.py": (
                "PREFIX = 'faults.service'\n\n\n"
                "def mint(rng, pm):\n"
                "    return rng(f'{PREFIX}.{pm}')\n"
            ),
        }, cfg)
        assert "REP102" not in codes(out)


class TestRep103:
    """Process-boundary races: the acceptance-mandated worker write."""

    POOL = (
        "def _pool_worker(payload):\n"
        "    {body}\n"
        "    return payload\n"
    )

    def _cfg(self) -> LintConfig:
        return LintConfig(
            worker_entrypoints=("repro.perf.executor._pool_worker",),
        )

    def test_worker_mutated_module_global(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/perf/executor.py": (
                "RESULTS = {}\n\n\n"
                "def _pool_worker(payload):\n"
                "    RESULTS['x'] = payload\n"
                "    return payload\n"
            ),
        }, self._cfg())
        hits = [v for v in out if v.code == "REP103"]
        assert len(hits) == 1
        assert "RESULTS" in hits[0].message
        assert "_pool_worker" in hits[0].message

    def test_write_reached_through_helper(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/perf/executor.py": (
                "from repro.perf import state\n\n\n"
                "def _pool_worker(payload):\n"
                "    return state.note(payload)\n"
            ),
            "repro/perf/state.py": (
                "SEEN = []\n\n\n"
                "def note(payload):\n"
                "    SEEN.append(payload)\n"
                "    return payload\n"
            ),
        }, self._cfg())
        hits = [v for v in out if v.code == "REP103"]
        assert len(hits) == 1
        assert hits[0].path.endswith("state.py")

    def test_cross_module_attribute_write(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/perf/state.py": "SHARED = {}\n",
            "repro/perf/executor.py": (
                "from repro.perf import state\n\n\n"
                "def _pool_worker(payload):\n"
                "    state.SHARED['k'] = payload\n"
                "    return payload\n"
            ),
        }, self._cfg())
        hits = [v for v in out if v.code == "REP103"]
        assert len(hits) == 1
        assert "repro.perf.state.SHARED" in hits[0].message

    def test_local_attribute_chain_is_clean(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/perf/executor.py": (
                "def _pool_worker(payload):\n"
                "    buf = type('B', (), {'items': []})()\n"
                "    buf.items.append(payload)\n"
                "    return payload\n"
            ),
        }, self._cfg())
        assert "REP103" not in codes(out)

    def test_allowed_module_is_exempt(self, tmp_path):
        cfg = LintConfig(
            worker_entrypoints=("repro.perf.executor._pool_worker",),
            worker_state_allowed=("repro/sim/sanitize.py",),
        )
        out = lint_tree(tmp_path, {
            "repro/perf/executor.py": (
                "from repro.sim import sanitize\n\n\n"
                "def _pool_worker(payload):\n"
                "    return sanitize.install(payload)\n"
            ),
            "repro/sim/sanitize.py": (
                "_STATE = {}\n\n\n"
                "def install(payload):\n"
                "    _STATE['mode'] = payload\n"
                "    return payload\n"
            ),
        }, cfg)
        assert "REP103" not in codes(out)

    def test_lambda_submit(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/perf/executor.py": (
                "def submit_all(pool, items):\n"
                "    return [pool.submit(lambda: i + 1) for i in items]\n"
            ),
        }, self._cfg())
        hits = [v for v in out if v.code == "REP103"]
        assert len(hits) == 1
        assert "lambda" in hits[0].message

    def test_nested_def_submit(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/perf/executor.py": (
                "def submit_all(pool, item):\n"
                "    def work():\n"
                "        return item + 1\n"
                "    return pool.submit(work)\n"
            ),
        }, self._cfg())
        hits = [v for v in out if v.code == "REP103"]
        assert len(hits) == 1
        assert "locally-nested" in hits[0].message

    def test_module_level_function_submit_is_clean(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/perf/executor.py": (
                "def work(item):\n"
                "    return item + 1\n\n\n"
                "def submit_all(pool, items):\n"
                "    return [pool.submit(work, i) for i in items]\n"
            ),
        }, self._cfg())
        assert "REP103" not in codes(out)


class TestRep104:
    def test_sum_over_set_display(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/models/m.py": (
                "def f():\n    return sum({1.0, 2.0})\n"
            ),
        })
        assert "REP104" in codes(out)

    def test_set_into_reduction_helper(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/models/merge.py": (
                "def total(values):\n"
                "    acc = 0.0\n"
                "    for v in values:\n"
                "        acc += v\n"
                "    return acc\n"
            ),
            "repro/models/sweep.py": (
                "from repro.models.merge import total\n\n\n"
                "def merge(cells):\n"
                "    return total({c for c in cells})\n"
            ),
        })
        hits = [v for v in out if v.code == "REP104"]
        assert len(hits) == 1
        assert hits[0].path.endswith("sweep.py")
        assert "total" in hits[0].message

    def test_sorted_input_is_clean(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/models/merge.py": (
                "def total(values):\n"
                "    acc = 0.0\n"
                "    for v in values:\n"
                "        acc += v\n"
                "    return acc\n\n\n"
                "def merge(cells):\n"
                "    return total(sorted(cells)) + sum([1.0, 2.0])\n"
            ),
        })
        assert "REP104" not in codes(out)


class TestRep105:
    def test_version_fork_across_modules(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/perf/wal.py": 'WAL_SCHEMA = "repro.perf.wal/v1"\n',
            "repro/perf/reader.py": 'EXPECTED = "repro.perf.wal/v2"\n',
        })
        hits = [v for v in out if v.code == "REP105"]
        assert len(hits) == 2
        assert all("multiple versions" in v.message for v in hits)

    def test_retyped_literal_names_owning_constant(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/perf/wal.py": 'WAL_SCHEMA = "repro.perf.wal/v1"\n',
            "repro/perf/reader.py": (
                "def check(tag):\n"
                '    return tag == "repro.perf.wal/v1"\n'
            ),
        })
        hits = [v for v in out if v.code == "REP105"]
        assert len(hits) == 1
        assert hits[0].path.endswith("reader.py")
        assert "WAL_SCHEMA" in hits[0].message

    def test_shared_constant_is_clean(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/perf/wal.py": 'WAL_SCHEMA = "repro.perf.wal/v1"\n',
            "repro/perf/reader.py": (
                "from repro.perf.wal import WAL_SCHEMA\n\n\n"
                "def check(tag):\n"
                "    return tag == WAL_SCHEMA\n"
            ),
        })
        assert "REP105" not in codes(out)


class TestRep106:
    def test_core_importing_obs_internals(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/sim/core.py": "from repro.obs import registry\n",
        })
        hits = [v for v in out if v.code == "REP106"]
        assert len(hits) == 1
        assert "repro.obs.registry" in hits[0].message

    def test_runtime_funnel_import_is_clean(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/sim/core.py": "from repro.obs import runtime\n",
        })
        assert "REP106" not in codes(out)

    def test_obs_package_itself_is_exempt(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/obs/exporters.py": "from repro.obs import registry\n",
        })
        assert "REP106" not in codes(out)

    def test_non_core_path_is_exempt(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/experiments/report.py": "from repro.obs import spans\n",
        })
        assert "REP106" not in codes(out)


class TestProjectSuppression:
    def test_noqa_silences_project_violation(self, tmp_path):
        out = lint_tree(tmp_path, {
            "repro/sim/a.py": (
                "def run(rng):\n"
                "    return rng('noise')  # repro: noqa[REP102] shared\n"
            ),
            "repro/sim/b.py": (
                "def run(rng):\n    return rng('noise')\n"
            ),
        })
        hits = [v for v in out if v.code == "REP102"]
        # only the un-noqa'd side still reports
        assert len(hits) == 1
        assert hits[0].path.endswith("b.py")
