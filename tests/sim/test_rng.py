"""Tests for the named RNG registry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.rng import RngRegistry


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        reg = RngRegistry(1)
        assert reg("a") is reg("a")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(42)("noise").random(10)
        b = RngRegistry(42)("noise").random(10)
        np.testing.assert_array_equal(a, b)

    def test_different_names_are_independent(self):
        reg = RngRegistry(7)
        x = reg("x").random(100)
        y = reg("y").random(100)
        assert not np.allclose(x, y)

    def test_different_seeds_differ(self):
        a = RngRegistry(1)("s").random(50)
        b = RngRegistry(2)("s").random(50)
        assert not np.allclose(a, b)

    def test_fresh_rewinds_stream(self):
        reg = RngRegistry(9)
        first = reg("w").random(5)
        reg("w").random(100)  # consume
        rewound = reg.fresh("w").random(5)
        np.testing.assert_array_equal(first, rewound)

    def test_spawn_is_independent_and_deterministic(self):
        reg = RngRegistry(3)
        child1 = reg.spawn(1)("s").random(20)
        child1_again = RngRegistry(3).spawn(1)("s").random(20)
        child2 = reg.spawn(2)("s").random(20)
        np.testing.assert_array_equal(child1, child1_again)
        assert not np.allclose(child1, child2)

    def test_rejects_bad_inputs(self):
        with pytest.raises(TypeError):
            RngRegistry("not-an-int")  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            RngRegistry(0)("")

    def test_seed_property(self):
        assert RngRegistry(11).seed == 11

    @given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
    def test_any_seed_and_name_work(self, seed, name):
        gen = RngRegistry(seed)(name)
        vals = gen.random(4)
        assert np.all((vals >= 0) & (vals < 1))
