"""Unit and property tests for the event queue."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.events import Event, EventQueue


def _collect(queue: EventQueue) -> list[Event]:
    out = []
    while True:
        ev = queue.pop()
        if ev is None:
            return out
        out.append(ev)


class TestEventQueueBasics:
    def test_empty_queue_pops_none(self):
        q = EventQueue()
        assert q.pop() is None
        assert q.peek_time() is None
        assert len(q) == 0
        assert not q

    def test_single_event_roundtrip(self):
        q = EventQueue()
        ev = q.push(1.5, lambda e: None, payload="x")
        assert len(q) == 1
        assert q.peek_time() == 1.5
        popped = q.pop()
        assert popped is ev
        assert popped.payload == "x"
        assert q.pop() is None

    def test_orders_by_time(self):
        q = EventQueue()
        q.push(3.0, lambda e: None, payload="c")
        q.push(1.0, lambda e: None, payload="a")
        q.push(2.0, lambda e: None, payload="b")
        assert [e.payload for e in _collect(q)] == ["a", "b", "c"]

    def test_same_time_orders_by_priority(self):
        q = EventQueue()
        q.push(1.0, lambda e: None, priority=5, payload="low")
        q.push(1.0, lambda e: None, priority=-1, payload="high")
        assert [e.payload for e in _collect(q)] == ["high", "low"]

    def test_same_time_same_priority_is_fifo(self):
        q = EventQueue()
        for i in range(10):
            q.push(2.0, lambda e: None, payload=i)
        assert [e.payload for e in _collect(q)] == list(range(10))

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        keep = q.push(1.0, lambda e: None, payload="keep")
        drop = q.push(0.5, lambda e: None, payload="drop")
        drop.cancel()
        assert q.peek_time() == 1.0
        assert q.pop() is keep
        assert len(q) == 0

    def test_cancelled_event_does_not_fire(self):
        fired = []
        q = EventQueue()
        ev = q.push(1.0, lambda e: fired.append(e))
        ev.cancel()
        ev.fire()
        assert fired == []

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        evs = [q.push(float(i), lambda e: None) for i in range(5)]
        evs[2].cancel()
        evs[4].cancel()
        assert len(q) == 3

    def test_clear_empties_queue(self):
        q = EventQueue()
        for i in range(5):
            q.push(float(i), lambda e: None)
        q.clear()
        assert len(q) == 0
        assert q.pop() is None

    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf")])
    def test_rejects_bad_times(self, bad):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(bad, lambda e: None)


class TestEventQueueProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=200))
    def test_pop_order_is_sorted_by_time(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda e: None)
        popped = [e.time for e in _collect(q)]
        assert popped == sorted(popped)
        assert len(popped) == len(times)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.integers(min_value=-3, max_value=3),
            ),
            max_size=100,
        )
    )
    def test_pop_order_respects_priority_then_fifo(self, items):
        q = EventQueue()
        for idx, (t, prio) in enumerate(items):
            q.push(t, lambda e: None, priority=prio, payload=idx)
        popped = _collect(q)
        keys = [(e.time, e.priority, e.payload) for e in popped]
        # payload is the insertion index, so full key ordering must hold.
        assert keys == sorted(keys)

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=60),
        st.data(),
    )
    def test_cancellation_never_leaks(self, times, data):
        q = EventQueue()
        evs = [q.push(t, lambda e: None) for t in times]
        to_cancel = data.draw(
            st.sets(st.integers(0, len(evs) - 1), max_size=len(evs))
        )
        for i in to_cancel:
            evs[i].cancel()
        popped = _collect(q)
        assert len(popped) == len(evs) - len(to_cancel)
        assert all(not e.cancelled for e in popped)

    @given(st.lists(st.floats(min_value=0, max_value=1e9), max_size=100))
    def test_peek_matches_pop(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda e: None)
        while True:
            pt = q.peek_time()
            ev = q.pop()
            if ev is None:
                assert pt is None
                break
            assert math.isclose(pt, ev.time)
