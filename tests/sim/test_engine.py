"""Tests for the Simulator clock and dispatch loop."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_initial_state(self):
        sim = Simulator()
        assert sim.now == 0.0
        assert sim.pending == 0
        assert sim.dispatched == 0

    def test_after_schedules_relative(self):
        sim = Simulator()
        fired = []
        sim.after(2.5, lambda ev: fired.append(sim.now))
        sim.run_until(10.0)
        assert fired == [2.5]
        assert sim.now == 10.0

    def test_at_schedules_absolute(self):
        sim = Simulator()
        fired = []
        sim.at(4.0, lambda ev: fired.append(sim.now))
        sim.run_until(4.0)
        assert fired == [4.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.after(1.0, lambda ev: None)
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.at(2.0, lambda ev: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-0.1, lambda ev: None)

    def test_run_until_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(4.0)

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.after(3.0, lambda ev: order.append("c"))
        sim.after(1.0, lambda ev: order.append("a"))
        sim.after(2.0, lambda ev: order.append("b"))
        sim.run_until(5.0)
        assert order == ["a", "b", "c"]

    def test_event_sees_its_own_timestamp(self):
        sim = Simulator()
        seen = []
        for t in (0.5, 1.5, 2.5):
            sim.at(t, lambda ev, t=t: seen.append((t, sim.now)))
        sim.run_until(3.0)
        assert all(want == got for want, got in seen)

    def test_callback_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(ev):
            fired.append(sim.now)
            if len(fired) < 5:
                sim.after(1.0, chain)

        sim.after(1.0, chain)
        sim.run_until(100.0)
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_events_beyond_horizon_stay_pending(self):
        sim = Simulator()
        sim.after(50.0, lambda ev: None)
        sim.run_until(10.0)
        assert sim.pending == 1
        assert sim.now == 10.0

    def test_cancelled_event_never_fires(self):
        sim = Simulator()
        fired = []
        ev = sim.after(1.0, lambda e: fired.append(1))
        ev.cancel()
        sim.run_until(5.0)
        assert fired == []

    def test_run_drains_queue(self):
        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 7.0):
            sim.at(t, lambda ev: fired.append(sim.now))
        sim.run()
        assert fired == [1.0, 2.0, 7.0]
        assert sim.pending == 0
        assert sim.now == 7.0

    def test_step_returns_false_on_empty(self):
        sim = Simulator()
        assert sim.step() is False

    def test_reset_rewinds_clock_and_clears(self):
        sim = Simulator()
        sim.after(1.0, lambda ev: None)
        sim.run_until(5.0)
        sim.after(1.0, lambda ev: None)
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending == 0

    def test_reset_rejected_while_running(self):
        sim = Simulator()
        seen = []

        def mid_run(ev):
            with pytest.raises(SimulationError):
                sim.reset()
            seen.append(sim.now)

        sim.after(1.0, mid_run)
        sim.after(2.0, lambda ev: seen.append(sim.now))
        sim.run_until(5.0)
        # The rejected reset must not have disturbed the run.
        assert seen == [1.0, 2.0]
        assert sim.now == 5.0

    def test_reset_allows_fresh_run(self):
        sim = Simulator()
        sim.after(1.0, lambda ev: None)
        sim.run_until(5.0)
        sim.reset()
        fired = []
        sim.after(1.0, lambda ev: fired.append(sim.now))
        sim.run_until(2.0)
        assert fired == [1.0]

    def test_reentrant_run_until_rejected(self):
        sim = Simulator()

        def nested(ev):
            with pytest.raises(SimulationError):
                sim.run_until(100.0)

        sim.after(1.0, nested)
        sim.run_until(5.0)


class TestSimulatorProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0), max_size=80))
    def test_dispatch_count_matches_events(self, times):
        sim = Simulator()
        for t in times:
            sim.at(t, lambda ev: None)
        sim.run_until(1000.0)
        assert sim.dispatched == len(times)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50
        ),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_horizon_partitions_events(self, times, horizon):
        sim = Simulator()
        fired = []
        for t in times:
            sim.at(t, lambda ev, t=t: fired.append(t))
        sim.run_until(horizon)
        assert sorted(fired) == sorted(t for t in times if t <= horizon)
        assert sim.pending == sum(1 for t in times if t > horizon)
