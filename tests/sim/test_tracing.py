"""Tests for the simulator event tracer."""

from __future__ import annotations

import pytest

from repro.sim import Simulator
from repro.sim.tracing import SimTracer, TraceEvent


@pytest.fixture()
def sim():
    return Simulator(seed=1)


class TestSimTracer:
    def test_records_with_sim_timestamps(self, sim):
        tracer = SimTracer(sim)
        tracer.emit("dom0", "boot")
        sim.after(5.0, lambda ev: tracer.emit("vm1", "spike"))
        sim.run_until(10.0)
        events = tracer.events()
        assert [(e.time, e.source) for e in events] == [
            (0.0, "dom0"),
            (5.0, "vm1"),
        ]

    def test_capacity_bound_drops_oldest(self, sim):
        tracer = SimTracer(sim, capacity=3)
        for i in range(5):
            tracer.emit("s", f"msg{i}")
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert tracer.emitted == 5
        assert [e.message for e in tracer.events()] == ["msg2", "msg3", "msg4"]

    def test_source_filter(self, sim):
        tracer = SimTracer(sim, source_filter=lambda s: s.startswith("vm"))
        tracer.emit("vm1", "kept")
        tracer.emit("dom0", "filtered")
        assert [e.source for e in tracer.events()] == ["vm1"]
        assert tracer.emitted == 2

    def test_query_by_source_and_time(self, sim):
        tracer = SimTracer(sim)
        tracer.emit("a", "x")
        sim.after(2.0, lambda ev: tracer.emit("b", "y"))
        sim.after(4.0, lambda ev: tracer.emit("a", "z"))
        sim.run_until(5.0)
        assert len(tracer.events(source="a")) == 2
        assert len(tracer.events(since=1.0)) == 2
        assert len(tracer.events(source="a", since=1.0)) == 1

    def test_tail(self, sim):
        tracer = SimTracer(sim)
        for i in range(10):
            tracer.emit("s", str(i))
        assert [e.message for e in tracer.tail(3)] == ["7", "8", "9"]
        with pytest.raises(ValueError):
            tracer.tail(0)

    def test_clear_keeps_counters(self, sim):
        tracer = SimTracer(sim)
        tracer.emit("s", "x")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.emitted == 1

    def test_render(self, sim):
        tracer = SimTracer(sim)
        tracer.emit("dom0", "hello")
        text = tracer.render()
        assert "dom0: hello" in text
        assert "0.000s" in text

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            SimTracer(sim, capacity=0)
        tracer = SimTracer(sim)
        with pytest.raises(ValueError):
            tracer.emit("", "msg")

    def test_event_render(self):
        ev = TraceEvent(time=1.5, source="x", message="m")
        assert "x: m" in ev.render()
