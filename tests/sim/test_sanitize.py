"""Runtime sanitizer: draw accounting, tie-break invariant, NaN guard."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.samples import samples_from_report
from repro.monitor.script import MeasurementReport
from repro.sim import (
    SanitizerError,
    Simulator,
    generator_from_seed,
    sanitized,
)
from repro.sim import sanitize
from repro.traces import Trace, TraceSet


class TestDrawAccounting:
    def test_draws_counted_per_stream(self):
        sim = Simulator(seed=7, sanitize=True)
        sim.rng("noise").normal()
        sim.rng("noise").normal()
        sim.rng("jitter").random()
        assert sim.sanitizer.snapshot() == {"jitter": 1, "noise": 2}

    def test_stream_registered_even_with_zero_draws(self):
        sim = Simulator(seed=7, sanitize=True)
        sim.rng("idle")
        assert sim.sanitizer.snapshot() == {"idle": 0}

    def test_sanitizing_never_changes_the_numbers(self):
        plain = Simulator(seed=11)
        checked = Simulator(seed=11, sanitize=True)
        a = [plain.rng("s").normal() for _ in range(20)]
        b = [checked.rng("s").normal() for _ in range(20)]
        assert a == b

    def test_fresh_rewinds_and_keeps_counting(self):
        sim = Simulator(seed=3, sanitize=True)
        first = sim.rng("s").normal()
        again = sim.rng.fresh("s").normal()
        assert first == again
        assert sim.sanitizer.snapshot() == {"s": 2}

    def test_non_callable_attributes_pass_through(self):
        sim = Simulator(seed=3, sanitize=True)
        assert isinstance(
            sim.rng("s").bit_generator, np.random.PCG64
        )


class TestTieBreakInvariant:
    def test_normal_run_passes(self):
        sim = Simulator(sanitize=True)
        fired = []
        for t in (2.0, 1.0, 1.0):
            sim.after(t, lambda ev: fired.append(ev.time))
        sim.run()
        assert fired == [1.0, 1.0, 2.0]
        assert sim.sanitizer.pops == 3

    def test_same_time_reschedule_is_legal(self):
        sim = Simulator(sanitize=True)
        order = []

        def first(ev):
            order.append("first")
            # same instant, lower priority, scheduled mid-dispatch:
            # fires after the queued priority-1 event by seq exemption.
            sim.at(sim.now, lambda e: order.append("late"), priority=-1)

        sim.at(5.0, first)
        sim.at(5.0, lambda e: order.append("second"), priority=1)
        sim.run()
        assert order == ["first", "late", "second"]

    def test_mutated_event_is_caught(self):
        sim = Simulator(sanitize=True)
        sim.at(5.0, lambda ev: None)
        ev = sim.at(5.0, lambda ev: None, priority=1)
        ev.priority = -10  # corrupt the queued event in place
        with pytest.raises(SanitizerError, match="tie-break"):
            sim.run()

    def test_non_finite_time_is_caught(self):
        sim = Simulator(sanitize=True)
        ev = sim.at(1.0, lambda ev: None)
        ev.time = float("nan")
        with pytest.raises(SanitizerError, match="non-finite"):
            sim.run()

    def test_unsanitized_simulator_has_no_hooks(self):
        assert Simulator().sanitizer is None


class TestGlobalDefault:
    def test_sanitized_context_flips_default(self):
        assert not sanitize.default_enabled()
        with sanitized():
            assert sanitize.default_enabled()
            sim = Simulator(seed=1)
            assert sim.sanitizer is not None
            sim.rng("noise").normal()
            assert sanitize.aggregate_draw_counts() == {"noise": 1}
        assert not sanitize.default_enabled()

    def test_explicit_false_overrides_default(self):
        with sanitized():
            assert Simulator(sanitize=False).sanitizer is None

    def test_aggregation_merges_simulators(self):
        with sanitized():
            Simulator(seed=1).rng("a").normal()
            Simulator(seed=2).rng("a").normal()
            Simulator(seed=3).rng("b").normal()
            assert sanitize.aggregate_draw_counts() == {"a": 2, "b": 1}


def _report_with_gap() -> MeasurementReport:
    times = np.array([0.0, 1.0, 2.0, 3.0])
    validity = np.array([True, True, False, True])

    def trace(name, bad=False):
        values = np.array([1.0, 2.0, np.nan if bad else 3.0, 4.0])
        return Trace(name, times, values, units="%")

    names = ["vm1.cpu", "vm1.mem", "vm1.io", "vm1.bw"]
    targets = ["dom0.cpu", "hyp.cpu", "pm.mem", "pm.io", "pm.bw"]
    traces = TraceSet(
        [trace(n) for n in names]
        + [trace(t, bad=(t == "hyp.cpu")) for t in targets]
    )
    return MeasurementReport(pm_name="pm1", traces=traces, validity=validity)


class TestNaNGuard:
    def test_guard_is_noop_when_disabled(self):
        report = _report_with_gap()
        samples = samples_from_report(report)  # NaN passes through silently
        assert len(samples) == 4

    def test_nan_leak_caught_under_sanitize(self):
        report = _report_with_gap()
        with sanitized():
            with pytest.raises(SanitizerError, match="hyp.cpu"):
                samples_from_report(report)

    def test_masked_training_input_passes(self):
        report = _report_with_gap()
        with sanitized():
            samples = samples_from_report(report, valid_only=True)
        assert len(samples) == 3

    def test_guard_finite_matrix_direct(self):
        with sanitized():
            sanitize.guard_finite_matrix(
                {"ok": np.array([1.0, 2.0])}, context="test"
            )
            with pytest.raises(SanitizerError, match="tick 1"):
                sanitize.guard_finite_matrix(
                    {"bad": np.array([1.0, np.inf])}, context="test"
                )


class TestGeneratorFromSeed:
    def test_matches_default_rng(self):
        a = generator_from_seed(123).normal(size=4)
        b = np.random.default_rng(123).normal(size=4)
        assert np.array_equal(a, b)
