"""Tests for PeriodicProcess."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess


class TestPeriodicProcess:
    def test_ticks_on_exact_lattice(self):
        sim = Simulator()
        ticks = []
        PeriodicProcess(sim, 1.0, lambda now: ticks.append(now))
        sim.run_until(5.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_start_at_override(self):
        sim = Simulator()
        ticks = []
        PeriodicProcess(sim, 2.0, lambda now: ticks.append(now), start_at=0.5)
        sim.run_until(5.0)
        assert ticks == [0.5, 2.5, 4.5]

    def test_no_drift_with_fractional_interval(self):
        sim = Simulator()
        ticks = []
        PeriodicProcess(sim, 0.3, lambda now: ticks.append(now))
        sim.run_until(3.0)
        # 0.3, 0.6, ..., 3.0 -> 10 ticks; lattice is exact (additive, not
        # accumulated float error from repeated multiplication).
        assert len(ticks) == 10
        assert ticks[-1] == pytest.approx(3.0)

    def test_stop_halts_ticking(self):
        sim = Simulator()
        ticks = []
        proc = PeriodicProcess(sim, 1.0, lambda now: ticks.append(now))
        sim.run_until(2.0)
        proc.stop()
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0]
        assert proc.stopped

    def test_stop_from_within_body(self):
        sim = Simulator()
        proc_holder = {}

        def body(now):
            if now >= 3.0:
                proc_holder["p"].stop()

        proc_holder["p"] = PeriodicProcess(sim, 1.0, body)
        sim.run_until(10.0)
        assert proc_holder["p"].ticks == 3

    def test_tick_counter(self):
        sim = Simulator()
        proc = PeriodicProcess(sim, 0.5, lambda now: None)
        sim.run_until(4.0)
        assert proc.ticks == 8

    def test_rejects_nonpositive_interval(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicProcess(sim, 0.0, lambda now: None)
        with pytest.raises(ValueError):
            PeriodicProcess(sim, -1.0, lambda now: None)

    def test_two_processes_interleave_deterministically(self):
        sim = Simulator()
        order = []
        PeriodicProcess(sim, 1.0, lambda now: order.append(("a", now)), priority=0)
        PeriodicProcess(sim, 1.0, lambda now: order.append(("b", now)), priority=1)
        sim.run_until(2.0)
        assert order == [("a", 1.0), ("b", 1.0), ("a", 2.0), ("b", 2.0)]
