"""Epoch-barrier mailbox ordering: the fleet's determinism substrate.

The shard-count invariance of :mod:`repro.cluster.fleet` rests on one
property: :func:`merge_epoch` imposes a single total delivery order --
``(time, src_shard, seq)`` -- regardless of how many outboxes the
messages arrived through.  These tests pin the tie-breaks, the empty
epoch, and the coordinator's CONTROL precedence.
"""

from __future__ import annotations

from repro.cluster.mailbox import CONTROL, Message, Outbox, merge_epoch


class TestOutbox:
    def test_seq_is_per_outbox_and_monotonic(self):
        box = Outbox(0)
        msgs = [box.send(1.0, 1, "ping") for _ in range(3)]
        assert [m.seq for m in msgs] == [0, 1, 2]
        assert box.sent == 3

    def test_drain_empties_but_keeps_seq_running(self):
        box = Outbox(0)
        box.send(1.0, 1, "a")
        assert [m.kind for m in box.drain()] == ["a"]
        assert box.drain() == []
        # seq continues across epochs: later messages sort after.
        later = box.send(1.0, 1, "b")
        assert later.seq == 1

    def test_payload_round_trips_as_dict(self):
        box = Outbox(2)
        msg = box.send(3.0, CONTROL, "hotspot", pm=7, vm=42)
        assert msg.data() == {"pm": 7, "vm": 42}

    def test_payload_item_order_is_key_sorted(self):
        # Keyword order must not leak into the frozen payload tuple
        # (it would make Message equality/pickling order-sensitive).
        a = Outbox(0).send(0.0, 1, "k", b=2, a=1)
        b = Outbox(0).send(0.0, 1, "k", a=1, b=2)
        assert a.payload == b.payload == (("a", 1), ("b", 2))


class TestMergeEpoch:
    def test_empty_epoch_merges_to_empty_batch(self):
        assert merge_epoch([Outbox(0), Outbox(1), Outbox(2)]) == []

    def test_orders_by_time_first(self):
        early, late = Outbox(1), Outbox(0)
        late.send(5.0, CONTROL, "late")
        early.send(2.0, CONTROL, "early")
        kinds = [m.kind for m in merge_epoch([late, early])]
        assert kinds == ["early", "late"]

    def test_equal_time_breaks_by_src_shard(self):
        boxes = [Outbox(shard) for shard in (3, 0, 2, 1)]
        for box in boxes:
            box.send(1.0, CONTROL, f"from{box.shard}")
        batch = merge_epoch(boxes)
        assert [m.src_shard for m in batch] == [0, 1, 2, 3]

    def test_equal_time_and_shard_breaks_by_seq(self):
        box = Outbox(0)
        box.send(1.0, CONTROL, "first")
        box.send(1.0, CONTROL, "second")
        assert [m.kind for m in merge_epoch([box])] == ["first", "second"]

    def test_control_sorts_before_every_shard_at_equal_time(self):
        coord, shard = Outbox(CONTROL), Outbox(0)
        shard.send(4.0, CONTROL, "hotspot")
        coord.send(4.0, 0, "migrate_out")
        batch = merge_epoch([shard, coord])
        assert [m.src_shard for m in batch] == [CONTROL, 0]

    def test_merge_order_independent_of_outbox_iteration_order(self):
        def build():
            a, b = Outbox(0), Outbox(1)
            a.send(2.0, 1, "x")
            b.send(1.0, 0, "y")
            a.send(1.0, 1, "z")
            return a, b

        a1, b1 = build()
        a2, b2 = build()
        assert merge_epoch([a1, b1]) == merge_epoch([b2, a2])

    def test_sort_key_matches_message_fields(self):
        msg = Message(time=2.5, src_shard=3, seq=7, dst_shard=0, kind="k")
        assert msg.sort_key() == (2.5, 3, 7)
