"""Sharded fleet simulator: shard-count invariance and model shape.

The tentpole guarantee: partitioning the fleet over any number of
event-queue shards changes *nothing* observable -- every field of
:meth:`FleetSummary.invariant_dict` (totals, per-epoch float series,
event counts) is byte-identical at ``shards`` 1, 2 and 4, and the
sanitizer sees the same per-stream RNG draw counts.  Plus the model's
headline shape: VOA absorbs the open-loop load that overloads VOU's
overhead-blind packing.
"""

from __future__ import annotations

import pytest

from repro.cluster.fleet import FleetConfig, pm_stream, run_fleet
from repro.placement.placer import VOA, VOU
from repro.sim import sanitize


def _config(shards: int = 1, strategy: str = VOU, **overrides) -> FleetConfig:
    # Small but overcommitted: VOU packs ~64 * ~15% CPU of guests onto
    # few PMs and overloads; VOA spreads.  Big enough for migrations.
    kwargs = dict(
        pms=8,
        vms=64,
        clients=6_000,
        duration_s=40.0,
        epoch_s=10.0,
        ramp_s=15.0,
        shards=shards,
        strategy=strategy,
        seed=7,
    )
    kwargs.update(overrides)
    return FleetConfig(**kwargs)


def _sanitized_run(config: FleetConfig):
    sanitize.reset_collector()
    with sanitize.sanitized():
        summary = run_fleet(config)
    return summary, dict(sanitize.aggregate_draw_counts())


class TestShardInvariance:
    @pytest.mark.parametrize("strategy", [VOA, VOU])
    def test_invariant_dict_identical_at_shards_1_2_4(self, strategy):
        base = run_fleet(_config(1, strategy)).invariant_dict()
        for shards in (2, 4):
            sharded = run_fleet(_config(shards, strategy)).invariant_dict()
            assert sharded == base, f"shards={shards} diverged"

    def test_float_series_are_bitwise_equal_across_shards(self):
        # Dict equality tolerates -0.0 == 0.0 etc; compare exact reprs
        # to pin the byte-identical artifact guarantee.
        one = run_fleet(_config(1)).invariant_dict()
        four = run_fleet(_config(4)).invariant_dict()
        for key in ("epoch_offered", "epoch_served", "offered_total"):
            assert repr(one[key]) == repr(four[key])

    def test_sanitizer_draw_counts_identical_across_shards(self):
        _, base = _sanitized_run(_config(1))
        assert base, "sanitized run recorded no draws"
        for shards in (2, 4):
            _, counts = _sanitized_run(_config(shards))
            assert counts == base, f"shards={shards} draw counts diverged"

    def test_rng_streams_are_named_per_pm_not_per_shard(self):
        _, counts = _sanitized_run(_config(2))
        config = _config(2)
        for index in range(config.pms):
            assert pm_stream(index) in counts
        assert "fleet.deploy" in counts

    def test_cross_shard_migrations_occur_and_only_that_field_differs(self):
        one = run_fleet(_config(1))
        four = run_fleet(_config(4))
        assert one.migrations_cross_shard == 0
        assert four.migrations > 0
        assert four.migrations_cross_shard > 0
        assert four.invariant_dict() == one.invariant_dict()

    def test_same_seed_same_summary_different_seed_differs(self):
        a = run_fleet(_config(1)).as_dict()
        b = run_fleet(_config(1)).as_dict()
        assert a == b
        c = run_fleet(_config(1, seed=8)).as_dict()
        assert c != a


class TestModelShape:
    def test_voa_serves_what_overloads_vou(self):
        voa = run_fleet(_config(1, VOA))
        vou = run_fleet(_config(1, VOU))
        assert voa.served_fraction > vou.served_fraction
        assert vou.overloaded_pm_ticks > voa.overloaded_pm_ticks
        assert vou.migrations > voa.migrations
        assert voa.pms_used > vou.pms_used

    def test_served_never_exceeds_offered(self):
        summary = run_fleet(_config(1, VOU))
        assert summary.served_total <= summary.offered_total
        for offered, served in zip(
            summary.epoch_offered, summary.epoch_served
        ):
            assert served <= offered + 1e-9

    def test_epoch_series_cover_the_run(self):
        config = _config(1)
        summary = run_fleet(config)
        assert len(summary.epoch_time) == config.epochs
        assert summary.epoch_time[-1] == pytest.approx(config.duration_s)
        assert summary.events == config.pms * int(
            config.duration_s / config.tick_s
        )

    def test_migration_cap_bounds_each_epoch(self):
        capped = run_fleet(_config(1, max_migrations_per_epoch=2))
        assert capped.epoch_migrations
        assert max(capped.epoch_migrations) <= 2
        assert capped.migrations_rejected > 0


class TestConfigValidation:
    def test_shards_must_not_exceed_pms(self):
        with pytest.raises(ValueError, match="shards"):
            FleetConfig(pms=4, shards=5)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            FleetConfig(strategy="best-effort")

    def test_duration_must_cover_an_epoch(self):
        with pytest.raises(ValueError, match="duration"):
            FleetConfig(duration_s=5.0, epoch_s=10.0)

    def test_shard_of_partitions_contiguously_and_exhaustively(self):
        config = FleetConfig(pms=10, shards=3)
        owners = [config.shard_of(i) for i in range(10)]
        assert owners == sorted(owners)
        assert set(owners) == {0, 1, 2}
