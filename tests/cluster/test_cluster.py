"""Tests for multi-PM cluster orchestration and inter-PM routing."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.sim import Simulator
from repro.xen import Flow, VMSpec


@pytest.fixture()
def cluster():
    sim = Simulator(seed=21)
    cl = Cluster(sim)
    cl.create_pm("pm1")
    cl.create_pm("pm2")
    return cl


class TestTopology:
    def test_create_and_lookup(self, cluster):
        vm = cluster.place_vm(VMSpec(name="a"), "pm1")
        assert cluster.pm_of("a").name == "pm1"
        assert cluster.find_vm("a") is vm
        assert {v.name for v in cluster.all_vms()} == {"a"}

    def test_duplicate_pm_rejected(self, cluster):
        with pytest.raises(ValueError):
            cluster.create_pm("pm1")

    def test_unknown_lookups(self, cluster):
        with pytest.raises(KeyError):
            cluster.pm_of("ghost")
        with pytest.raises(KeyError):
            cluster.place_vm(VMSpec(name="x"), "pm9")

    def test_migration_moves_vm(self, cluster):
        cluster.place_vm(VMSpec(name="a"), "pm1")
        cluster.migrate_vm("a", "pm2")
        assert cluster.pm_of("a").name == "pm2"

    def test_migration_to_same_pm_is_noop(self, cluster):
        vm = cluster.place_vm(VMSpec(name="a"), "pm1")
        assert cluster.migrate_vm("a", "pm1") is vm

    def test_migration_rolls_back_on_memory_error(self, cluster):
        cluster.place_vm(VMSpec(name="a"), "pm1")
        # Fill pm2 to the brim.
        for k in range(6):
            cluster.place_vm(VMSpec(name=f"fill{k}"), "pm2")
        with pytest.raises(MemoryError):
            cluster.migrate_vm("a", "pm2")
        assert cluster.pm_of("a").name == "pm1"

    def test_migrate_to_unknown_pm(self, cluster):
        cluster.place_vm(VMSpec(name="a"), "pm1")
        with pytest.raises(KeyError):
            cluster.migrate_vm("a", "pm9")


class TestRouting:
    def test_inter_pm_flow_reaches_destination(self, cluster):
        src = cluster.place_vm(VMSpec(name="src"), "pm1")
        cluster.place_vm(VMSpec(name="dst"), "pm2")
        src.add_flow(Flow(src="src", dst="dst", kbps=800.0))
        cluster.start()
        cluster.run(5.0)
        pm1 = cluster.pms["pm1"].snapshot()
        pm2 = cluster.pms["pm2"].snapshot()
        # Sender side: flow is inter-PM, occupies pm1's NIC.
        assert pm1.vm("src").bw_kbps == pytest.approx(800.0)
        assert pm1.pm_bw_kbps == pytest.approx(805.0, abs=2.0)
        # Receiver side: routed inbound hits pm2's NIC and the dst VM.
        assert pm2.vm("dst").bw_kbps == pytest.approx(800.0)
        assert pm2.pm_bw_kbps >= 800.0

    def test_intra_pm_flow_not_routed(self, cluster):
        a = cluster.place_vm(VMSpec(name="a"), "pm1")
        cluster.place_vm(VMSpec(name="b"), "pm1")
        a.add_flow(Flow(src="a", dst="b", kbps=500.0))
        cluster.start()
        cluster.run(5.0)
        pm1 = cluster.pms["pm1"].snapshot()
        pm2 = cluster.pms["pm2"].snapshot()
        assert pm1.pm_bw_kbps < 10.0  # intra-PM: no physical bandwidth
        assert pm2.pm_bw_kbps < 10.0
        assert pm1.vm("b").bw_kbps == pytest.approx(500.0)

    def test_external_flow_not_routed(self, cluster):
        from repro.xen import external_host

        src = cluster.place_vm(VMSpec(name="src"), "pm1")
        src.add_flow(Flow(src="src", dst=external_host("x"), kbps=300.0))
        cluster.start()
        cluster.run(3.0)
        pm2 = cluster.pms["pm2"].snapshot()
        assert pm2.pm_bw_kbps < 10.0

    def test_routing_follows_migration(self, cluster):
        src = cluster.place_vm(VMSpec(name="src"), "pm1")
        cluster.place_vm(VMSpec(name="dst"), "pm1")
        src.add_flow(Flow(src="src", dst="dst", kbps=400.0))
        cluster.start()
        cluster.run(3.0)
        assert cluster.pms["pm1"].snapshot().pm_bw_kbps < 10.0  # intra
        cluster.migrate_vm("dst", "pm2")
        cluster.run(3.0)
        # Now inter-PM: both NICs are busy.
        assert cluster.pms["pm1"].snapshot().pm_bw_kbps > 390.0
        assert cluster.pms["pm2"].snapshot().pm_bw_kbps > 390.0

    def test_double_start_rejected(self, cluster):
        cluster.start()
        with pytest.raises(RuntimeError):
            cluster.start()

    def test_stop_freezes(self, cluster):
        src = cluster.place_vm(VMSpec(name="src"), "pm1")
        cluster.start()
        cluster.run(2.0)
        cluster.stop()
        src.demand.cpu_pct = 99.0
        cluster.run(5.0)
        assert cluster.pms["pm1"].snapshot().vm("src").cpu_pct < 1.0
