"""Tests for declarative deployments."""

from __future__ import annotations

import pytest

from repro.cluster import (
    DeploymentSpec,
    RubisRef,
    VmPlacement,
    WorkloadRef,
    build_deployment,
)


def two_pm_spec(**kwargs):
    defaults = dict(
        pms=("pm1", "pm2"),
        vms=(
            VmPlacement("web", "pm1"),
            VmPlacement("db", "pm2"),
            VmPlacement("hog", "pm1", workload=WorkloadRef("cpu", 50.0)),
        ),
        rubis=(RubisRef(web="web", db="db", clients=400),),
    )
    defaults.update(kwargs)
    return DeploymentSpec(**defaults)


class TestSpecValidation:
    def test_valid_spec(self):
        two_pm_spec()  # no raise

    def test_no_pms(self):
        with pytest.raises(ValueError):
            DeploymentSpec(pms=())

    def test_duplicate_pm(self):
        with pytest.raises(ValueError):
            DeploymentSpec(pms=("a", "a"))

    def test_duplicate_vm(self):
        with pytest.raises(ValueError):
            two_pm_spec(
                vms=(VmPlacement("x", "pm1"), VmPlacement("x", "pm2")),
                rubis=(),
            )

    def test_unknown_pm_reference(self):
        with pytest.raises(ValueError, match="unknown PMs"):
            two_pm_spec(vms=(VmPlacement("x", "pm9"),), rubis=())

    def test_rubis_references_declared_vms(self):
        with pytest.raises(ValueError, match="undeclared"):
            two_pm_spec(rubis=(RubisRef(web="web", db="ghost", clients=10),))

    def test_workload_ref_validation(self):
        with pytest.raises(ValueError):
            WorkloadRef("gpu", 1.0)
        with pytest.raises(ValueError):
            WorkloadRef("cpu", -1.0)

    def test_rubis_ref_validation(self):
        with pytest.raises(ValueError):
            RubisRef(web="a", db="a", clients=10)
        with pytest.raises(ValueError):
            RubisRef(web="a", db="b", clients=0)


class TestBuildDeployment:
    def test_materializes_everything(self):
        dep = build_deployment(two_pm_spec(), seed=3)
        assert set(dep.cluster.pms) == {"pm1", "pm2"}
        assert dep.cluster.pm_of("web").name == "pm1"
        assert dep.cluster.pm_of("hog").name == "pm1"
        assert "hog" in dep.workloads
        assert "rubis" in dep.apps

    def test_runs_end_to_end(self):
        dep = build_deployment(two_pm_spec(), seed=4)
        dep.start()
        dep.run(15.0)
        snap = dep.cluster.pms["pm1"].snapshot()
        assert snap.vm("hog").cpu_pct == pytest.approx(50.3, abs=0.5)
        assert snap.vm("web").cpu_pct > 10.0
        assert dep.apps["rubis"].total_completed > 0

    def test_deterministic_given_seed(self):
        a = build_deployment(two_pm_spec(), seed=9)
        b = build_deployment(two_pm_spec(), seed=9)
        for dep in (a, b):
            dep.start()
            dep.run(10.0)
        sa = a.cluster.pms["pm1"].snapshot()
        sb = b.cluster.pms["pm1"].snapshot()
        assert sa.dom0_cpu_pct == sb.dom0_cpu_pct
        assert a.apps["rubis"].total_completed == pytest.approx(
            b.apps["rubis"].total_completed
        )

    def test_duplicate_app_names_rejected(self):
        spec = two_pm_spec(
            rubis=(
                RubisRef(web="web", db="db", clients=10, name="r"),
                RubisRef(web="web", db="db", clients=10, name="r"),
            )
        )
        with pytest.raises(ValueError, match="duplicate RUBiS app"):
            build_deployment(spec)

    def test_memory_overcommit_surfaces(self):
        spec = DeploymentSpec(
            pms=("pm1",),
            vms=tuple(
                VmPlacement(f"v{i}", "pm1", mem_mb=400) for i in range(5)
            ),
        )
        with pytest.raises(MemoryError):
            build_deployment(spec)
