"""Tests for the alternative RUBiS workload mixes."""

from __future__ import annotations

import pytest

from repro.rubis import (
    BIDDING_MIX,
    BROWSING_MIX,
    ClientPopulation,
    MIXES,
    RUBiSApplication,
    get_mix,
    mix_demand,
)


class TestBrowsingMix:
    def test_mix_sums_to_one(self):
        assert sum(rc.mix for rc in BROWSING_MIX) == pytest.approx(1.0)

    def test_read_only(self):
        names = {rc.name for rc in BROWSING_MIX}
        assert "place_bid" not in names
        assert "register_buy" not in names

    def test_lighter_on_db_than_bidding(self):
        rate = 80.0
        browse = mix_demand(rate, BROWSING_MIX)
        bid = mix_demand(rate, BIDDING_MIX)
        assert browse.db_cpu_pct < bid.db_cpu_pct
        assert browse.db_io_bps < bid.db_io_bps

    def test_heavier_web_traffic_share(self):
        rate = 80.0
        browse = mix_demand(rate, BROWSING_MIX)
        bid = mix_demand(rate, BIDDING_MIX)
        browse_ratio = browse.web_to_client_kbps / browse.web_cpu_pct
        bid_ratio = bid.web_to_client_kbps / bid.web_cpu_pct
        assert browse_ratio > bid_ratio * 0.99  # at least as page-heavy

    def test_lookup(self):
        assert get_mix("browsing") is BROWSING_MIX
        assert get_mix("bidding") is BIDDING_MIX
        assert set(MIXES) == {"bidding", "browsing"}
        with pytest.raises(ValueError):
            get_mix("torture")


class TestAppWithBrowsingMix:
    def test_application_accepts_alternative_mix(self):
        from repro.cluster import Cluster
        from repro.sim import Simulator
        from repro.xen import VMSpec

        sim = Simulator(seed=44)
        cl = Cluster(sim)
        cl.create_pm("pm1")
        cl.create_pm("pm2")
        web = cl.place_vm(VMSpec(name="web"), "pm1")
        db = cl.place_vm(VMSpec(name="db"), "pm2")
        app = RUBiSApplication(
            cl,
            web,
            db,
            ClientPopulation(400, ramp_s=5.0, wave_amplitude=0.0),
            mix=BROWSING_MIX,
        )
        cl.start()
        app.start()
        cl.run(15.0)
        assert app.total_completed > 0
        # Read-only mix: the DB tier does less I/O than CPU work.
        snap = cl.pms["pm2"].snapshot()
        assert snap.vm("db").io_bps < snap.vm("db").cpu_pct
