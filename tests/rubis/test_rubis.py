"""Tests for the RUBiS application model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.rubis import (
    BIDDING_MIX,
    ClientPopulation,
    RUBiSApplication,
    RequestClass,
    mix_demand,
    per_request_cost,
)
from repro.sim import Simulator
from repro.xen import VMSpec


class TestRequestMix:
    def test_mix_sums_to_one(self):
        assert sum(rc.mix for rc in BIDDING_MIX) == pytest.approx(1.0)

    def test_demand_scales_linearly_with_rate(self):
        d1 = mix_demand(10.0)
        d2 = mix_demand(20.0)
        assert d2.web_cpu_pct == pytest.approx(2 * d1.web_cpu_pct)
        assert d2.db_io_bps == pytest.approx(2 * d1.db_io_bps)

    def test_zero_rate_zero_demand(self):
        d = mix_demand(0.0)
        assert d.web_cpu_pct == 0.0
        assert d.web_to_client_kbps == 0.0

    def test_web_tier_is_bandwidth_heavy(self):
        # The paper's stated asymmetry: the web server has higher
        # bandwidth utilization than the database server.
        d = mix_demand(80.0)
        web_bw = d.web_to_client_kbps + d.client_to_web_kbps
        db_bw = d.web_to_db_kbps + d.db_to_web_kbps
        assert web_bw > 2 * db_bw

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            mix_demand(-1.0)

    def test_bad_mix_rejected(self):
        bad = (
            RequestClass(
                name="only",
                mix=0.5,
                web_cpu_pct_s=1,
                db_cpu_pct_s=1,
                req_kb=1,
                resp_kb=1,
                query_kb=1,
                result_kb=1,
                db_io_blocks=0,
            ),
        )
        with pytest.raises(ValueError, match="sum"):
            mix_demand(1.0, bad)

    def test_request_class_validation(self):
        with pytest.raises(ValueError):
            RequestClass(
                name="x",
                mix=1.5,
                web_cpu_pct_s=1,
                db_cpu_pct_s=1,
                req_kb=1,
                resp_kb=1,
                query_kb=1,
                result_kb=1,
                db_io_blocks=0,
            )
        with pytest.raises(ValueError):
            RequestClass(
                name="x",
                mix=0.5,
                web_cpu_pct_s=-1,
                db_cpu_pct_s=1,
                req_kb=1,
                resp_kb=1,
                query_kb=1,
                result_kb=1,
                db_io_blocks=0,
            )

    def test_per_request_cost(self):
        cost = per_request_cost()
        assert cost["web_cpu_pct_s"] == pytest.approx(0.75, abs=0.05)
        assert cost["web_to_client_kb"] > cost["client_to_web_kb"]


class TestClientPopulation:
    def test_steady_rate(self):
        pop = ClientPopulation(600, think_time_s=6.0)
        assert pop.steady_rate == pytest.approx(100.0)

    def test_ramp_reaches_nominal(self):
        pop = ClientPopulation(500, ramp_s=100.0, wave_amplitude=0.0)
        assert pop.active_clients(0.0) == pytest.approx(300.0)
        assert pop.active_clients(100.0) == pytest.approx(500.0)
        assert pop.active_clients(500.0) == pytest.approx(500.0)

    def test_wave_oscillates(self):
        pop = ClientPopulation(
            500, ramp_s=0.0, wave_amplitude=0.1, wave_period_s=100.0
        )
        quarter = pop.active_clients(25.0)
        three_q = pop.active_clients(75.0)
        assert quarter == pytest.approx(550.0, rel=0.01)
        assert three_q == pytest.approx(450.0, rel=0.01)

    def test_noise_requires_rng(self):
        pop = ClientPopulation(500, rng=np.random.default_rng(0))
        rates = {pop.request_rate(10.0) for _ in range(5)}
        assert len(rates) > 1  # noisy
        quiet = ClientPopulation(500)
        assert quiet.request_rate(10.0) == quiet.request_rate(10.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nominal_clients": 0},
            {"nominal_clients": 10, "think_time_s": 0},
            {"nominal_clients": 10, "ramp_s": -1},
            {"nominal_clients": 10, "wave_amplitude": 1.0},
            {"nominal_clients": 10, "noise_rel": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ClientPopulation(**kwargs)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ClientPopulation(10).active_clients(-1.0)


class TestRUBiSApplication:
    @pytest.fixture()
    def deployment(self):
        sim = Simulator(seed=31)
        cl = Cluster(sim)
        cl.create_pm("pm1")
        cl.create_pm("pm2")
        web = cl.place_vm(VMSpec(name="web"), "pm1")
        db = cl.place_vm(VMSpec(name="db"), "pm2")
        clients = ClientPopulation(500, ramp_s=5.0, wave_amplitude=0.0)
        app = RUBiSApplication(cl, web, db, clients)
        return cl, app

    def test_drives_both_tiers(self, deployment):
        cl, app = deployment
        cl.start()
        app.start()
        cl.run(20.0)
        pm1 = cl.pms["pm1"].snapshot()
        pm2 = cl.pms["pm2"].snapshot()
        assert pm1.vm("web").cpu_pct > 10.0
        assert pm2.vm("db").cpu_pct > 5.0
        assert pm2.vm("db").io_bps > 5.0
        # Web tier bandwidth exceeds DB tier bandwidth (paper asymmetry).
        assert pm1.vm("web").bw_kbps > pm2.vm("db").bw_kbps

    def test_throughput_matches_offered_when_unloaded(self, deployment):
        cl, app = deployment
        cl.start()
        app.start()
        cl.run(30.0)
        # Plenty of capacity: every offered request completes.
        assert app.total_completed == pytest.approx(app.total_offered, rel=0.02)
        assert app.mean_throughput() == pytest.approx(
            500 / 6.0, rel=0.1
        )

    def test_throughput_degrades_under_contention(self):
        sim = Simulator(seed=32)
        cl = Cluster(sim)
        cl.create_pm("pm1")
        cl.create_pm("pm2")
        web = cl.place_vm(VMSpec(name="web"), "pm1")
        db = cl.place_vm(VMSpec(name="db"), "pm2")
        # Three saturating CPU hogs co-located with the web tier.
        from repro.workloads import CpuHog

        for k in range(3):
            hog_vm = cl.place_vm(VMSpec(name=f"hog{k}"), "pm1")
            CpuHog(99.0).attach(hog_vm)
        app = RUBiSApplication(
            cl, web, db, ClientPopulation(700, ramp_s=5.0, wave_amplitude=0.0)
        )
        cl.start()
        app.start()
        cl.run(30.0)
        assert app.total_completed < 0.9 * app.total_offered
        assert app.total_time() > 30.0

    def test_same_vm_for_both_tiers_rejected(self, deployment):
        cl, app = deployment
        with pytest.raises(ValueError):
            RUBiSApplication(
                cl, app.web_vm, app.web_vm, ClientPopulation(100)
            )

    def test_results_require_samples(self, deployment):
        _, app = deployment
        with pytest.raises(RuntimeError):
            app.mean_throughput()

    def test_double_start_rejected(self, deployment):
        cl, app = deployment
        app.start()
        with pytest.raises(RuntimeError):
            app.start()

    def test_client_inbound_follows_web_migration(self, deployment):
        cl, app = deployment
        cl.start()
        app.start()
        cl.run(10.0)
        key = "app-rubis:web"
        assert key in cl.pms["pm1"].external_inbound_kbps
        cl.migrate_vm("web", "pm2")
        cl.run(5.0)
        assert key not in cl.pms["pm1"].external_inbound_kbps
        assert key in cl.pms["pm2"].external_inbound_kbps
