"""Tests for the chaos experiments (graceful degradation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.chaos import run_chaosa, run_chaosb
from repro.faults import FaultConfig
from repro.models import TrainingConfig, train_multi_vm_model
from repro.models.training import run_benchmark_measurement

TINY = dict(duration=8.0, kinds=("cpu",), vm_counts=(1, 2))


@pytest.fixture(scope="module")
def tiny_model():
    return train_multi_vm_model(
        TrainingConfig(vm_counts=(1, 2), duration=10.0, warmup=2.0)
    )


class TestZeroFaultPurity:
    """All fault rates zero => bit-identical measurement pipeline."""

    def test_null_config_measurement_identical(self):
        base = run_benchmark_measurement(
            "cpu", 50.0, 2, duration=10.0, seed=77, faults=None
        )
        nulled = run_benchmark_measurement(
            "cpu", 50.0, 2, duration=10.0, seed=77, faults=FaultConfig()
        )
        for name in base.traces.names:
            np.testing.assert_array_equal(
                base.traces[name].values,
                nulled.traces[name].values,
                err_msg=name,
            )
        assert base.validity is None
        assert nulled.validity is None

    def test_faulty_config_changes_only_its_own_run(self):
        # A faulty run must not perturb a later clean run on a fresh
        # simulator (no shared global state).
        run_benchmark_measurement(
            "cpu", 50.0, 1, duration=8.0, seed=78,
            faults=FaultConfig.sampling_only(dropout=0.3),
        )
        a = run_benchmark_measurement("cpu", 50.0, 1, duration=8.0, seed=78)
        b = run_benchmark_measurement("cpu", 50.0, 1, duration=8.0, seed=78)
        for name in a.traces.names:
            np.testing.assert_array_equal(
                a.traces[name].values, b.traces[name].values
            )


class TestChaosA:
    def test_sweep_structure_and_checks(self):
        res = run_chaosa(
            levels=((0.0, 0.0), (0.05, 0.02)), **TINY
        )
        assert res.experiment_id == "chaosa"
        labels = [s.label for s in res.series]
        assert any("dom0.cpu" in lbl for lbl in labels)
        assert any("retention" in lbl for lbl in labels)
        assert res.check("bounded error at 5% dropout + 2% outliers")
        assert res.passed, [c.render() for c in res.failed_checks()]

    def test_retention_drops_with_dropout(self):
        res = run_chaosa(levels=((0.0, 0.0), (0.2, 0.0)), **TINY)
        retention = next(
            s for s in res.series if "retention" in s.label
        )
        assert retention.y[0] == 1.0
        assert retention.y[1] < 1.0

    def test_levels_validated(self):
        with pytest.raises(ValueError):
            run_chaosa(levels=(), **TINY)


class TestChaosB:
    def test_resilience_run_passes(self, tiny_model):
        res = run_chaosb(model=tiny_model, duration_s=60.0)
        assert res.experiment_id == "chaosb"
        assert res.passed, [c.render() for c in res.failed_checks()]

    def test_deterministic(self, tiny_model):
        a = run_chaosb(model=tiny_model, duration_s=40.0)
        b = run_chaosb(model=tiny_model, duration_s=40.0)
        outcomes_a = next(
            s for s in a.series if s.label == "attempt outcomes"
        )
        outcomes_b = next(
            s for s in b.series if s.label == "attempt outcomes"
        )
        assert outcomes_a.y == outcomes_b.y
