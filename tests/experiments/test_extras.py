"""Tests for the extension experiments."""

from __future__ import annotations

import pytest

from repro.experiments.extras import run_memconst, run_toolover
from repro.experiments.runner import run


class TestMemconst:
    def test_passes_fast(self):
        result = run_memconst(duration=10.0)
        assert result.passed, [c.render() for c in result.failed_checks()]

    def test_has_all_constant_series(self):
        result = run_memconst(duration=8.0)
        labels = {s.label for s in result.series}
        assert {"dom0.cpu", "hyp.cpu", "vm.mem", "pm.io", "pm.bw"} <= labels

    def test_vm_memory_actually_grows(self):
        result = run_memconst(duration=8.0)
        vm_mem = next(s for s in result.series if s.label == "vm.mem")
        assert vm_mem.y[-1] > vm_mem.y[0] + 40.0  # 0.03 -> 50 Mb grid


class TestToolover:
    def test_passes_fast(self):
        result = run_toolover(duration=10.0)
        assert result.passed, [c.render() for c in result.failed_checks()]

    def test_ordering_none_unified_naive(self):
        result = run_toolover(duration=10.0)
        dom0 = next(s for s in result.series if s.label == "dom0.cpu")
        clean, unified, naive = dom0.y
        assert clean < unified < naive


class TestRegistryIntegration:
    def test_extras_runnable_by_id(self):
        assert run("memconst", fast=True).experiment_id == "memconst"
        assert run("toolover", fast=True).experiment_id == "toolover"
