"""Tests for experiment result containers."""

from __future__ import annotations

import pytest

from repro.experiments.base import (
    Check,
    ExperimentResult,
    Series,
    approx_check,
    bound_check,
)


class TestSeries:
    def test_length_validation(self):
        with pytest.raises(ValueError):
            Series("s", [1.0, 2.0], [1.0])

    def test_valid(self):
        s = Series("s", [1.0], [2.0], "x", "y")
        assert s.label == "s"


class TestChecks:
    def test_approx_check(self):
        assert approx_check("c", 10.0, 10.2, abs_tol=0.5).passed
        assert not approx_check("c", 10.0, 11.0, abs_tol=0.5).passed

    def test_bound_check_below(self):
        assert bound_check("c", 1.0, below=2.0).passed
        assert not bound_check("c", 3.0, below=2.0).passed

    def test_bound_check_above(self):
        assert bound_check("c", 3.0, above=2.0).passed
        assert not bound_check("c", 1.0, above=2.0).passed

    def test_bound_check_interval(self):
        assert bound_check("c", 1.5, below=2.0, above=1.0).passed
        assert not bound_check("c", 2.5, below=2.0, above=1.0).passed

    def test_render(self):
        assert "[PASS]" in Check("ok", True).render()
        assert "[FAIL]" in Check("bad", False, "detail").render()


class TestExperimentResult:
    def test_passed_aggregates_checks(self):
        res = ExperimentResult(
            "x", "t", checks=[Check("a", True), Check("b", False)]
        )
        assert not res.passed
        assert [c.name for c in res.failed_checks()] == ["b"]

    def test_check_lookup(self):
        res = ExperimentResult("x", "t", checks=[Check("a", True)])
        assert res.check("a").passed
        with pytest.raises(KeyError):
            res.check("zz")

    def test_render_contains_everything(self):
        res = ExperimentResult(
            "figX",
            "a title",
            series=[Series("curve", [1.0, 2.0], [3.0, 4.0], "in", "out")],
            checks=[Check("c1", True, "fine")],
            notes="a note",
        )
        text = res.render()
        assert "figX" in text and "a title" in text
        assert "curve" in text and "[PASS] c1" in text
        assert "a note" in text
