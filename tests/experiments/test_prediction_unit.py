"""Unit tests for the prediction-experiment machinery (Figures 7-9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.prediction import (
    PredictionRun,
    run_prediction_experiment,
    trained_models,
)
from repro.models.evaluation import ErrorReport


def fake_run() -> PredictionRun:
    reports = {
        ("pm1", "pm.cpu", 300): ErrorReport(np.array([1.0, 2.0, 3.0])),
        ("pm1", "pm.cpu", 700): ErrorReport(np.array([0.5, 1.0, 1.5])),
        ("pm2", "pm.cpu", 300): ErrorReport(np.array([4.0, 5.0, 6.0])),
        ("pm2", "pm.cpu", 700): ErrorReport(np.array([4.0, 4.5, 5.0])),
    }
    return PredictionRun(n_apps=1, reports=reports)


class TestPredictionRun:
    def test_report_lookup(self):
        run = fake_run()
        rep = run.report("pm1", "pm.cpu", 300)
        assert rep.p90 == pytest.approx(2.8)

    def test_worst_and_best_p90(self):
        run = fake_run()
        worst = run.worst_p90("pm1", "pm.cpu")
        best = run.best_p90("pm1", "pm.cpu")
        assert worst == pytest.approx(2.8)
        assert best == pytest.approx(1.4)
        assert run.worst_p90("pm2", "pm.cpu") > worst

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            fake_run().report("pm9", "pm.cpu", 300)


class TestRunPredictionExperiment:
    def test_rejects_bad_n_apps(self):
        single, multi = trained_models(duration=20.0)
        with pytest.raises(ValueError):
            run_prediction_experiment(0, single, multi)

    def test_small_run_produces_all_keys(self):
        single, multi = trained_models(duration=20.0)
        run = run_prediction_experiment(
            1, single, multi, client_counts=(300,), duration=30.0
        )
        assert set(run.reports) == {
            ("pm1", "pm.cpu", 300),
            ("pm1", "pm.bw", 300),
            ("pm2", "pm.cpu", 300),
            ("pm2", "pm.bw", 300),
        }
        for rep in run.reports.values():
            assert len(rep) == 30  # one error per 1 Hz sample

    def test_deterministic_given_seed(self):
        single, multi = trained_models(duration=20.0)
        a = run_prediction_experiment(
            1, single, multi, client_counts=(300,), duration=15.0, seed=5
        )
        b = run_prediction_experiment(
            1, single, multi, client_counts=(300,), duration=15.0, seed=5
        )
        np.testing.assert_array_equal(
            a.report("pm1", "pm.cpu", 300).errors,
            b.report("pm1", "pm.cpu", 300).errors,
        )
