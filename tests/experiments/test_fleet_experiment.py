"""Fleet experiment artifacts and the ``repro fleet`` CLI.

The experiment layer must build both panels from invariant summary
fields only -- so the rendered artifacts are byte-identical at any
``--shards`` value -- and the CLI must wire the scale knobs, the perf
options and the exit-code contract like the other experiment commands.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.fleet import run_fleet_experiment

#: Small overcommitted scale (mirrors tests/cluster/test_fleet.py):
#: VOU overloads and migrates, VOA absorbs the load -- every shape
#: check is exercised for real in a few seconds.
SMALL = dict(
    pms=8, vms=64, clients=6_000, duration_s=40.0, trials=1, seed=7
)

SMALL_ARGS = [
    "--pms", "8", "--vms", "64", "--clients", "6000",
    "--duration", "40", "--trials", "1", "--seed", "7",
]


class TestExperiment:
    def test_panels_pass_shape_checks(self):
        results = run_fleet_experiment(**SMALL)
        assert [r.experiment_id for r in results] == ["fleeta", "fleetb"]
        for result in results:
            assert result.passed, result.render()

    def test_series_cover_every_epoch(self):
        fleeta, fleetb = run_fleet_experiment(**SMALL)
        epochs = 4  # 40 s / 10 s epochs
        for series in fleeta.series + fleetb.series:
            assert len(series.x) == epochs
            assert len(series.y) == epochs

    def test_render_identical_across_shard_counts(self):
        base = [r.render() for r in run_fleet_experiment(**SMALL)]
        sharded = [
            r.render() for r in run_fleet_experiment(**SMALL, shards=4)
        ]
        assert sharded == base

    def test_offered_bounds_served(self):
        fleeta, _ = run_fleet_experiment(**SMALL)
        offered = dict(zip(fleeta.series[0].x, fleeta.series[0].y))
        for label_idx in (1, 2):  # VOA served, VOU served
            series = fleeta.series[label_idx]
            for x, y in zip(series.x, series.y):
                assert y <= offered[x] + 1e-9

    def test_invalid_scale_raises(self):
        with pytest.raises(ValueError):
            run_fleet_experiment(**{**SMALL, "pms": 0})


class TestCli:
    def test_fleet_writes_artifacts_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        assert main(["fleet", *SMALL_ARGS, "--out", str(out)]) == 0
        for artifact in ("fleeta", "fleetb"):
            assert (out / f"{artifact}.txt").is_file()
            assert (out / f"{artifact}.csv").is_file()
        assert "All shape checks passed" in capsys.readouterr().out

    def test_artifacts_byte_identical_across_shards_and_jobs(
        self, tmp_path, capsys
    ):
        runs = {
            "s1": ["--shards", "1"],
            "s2": ["--shards", "2"],
            "j2": ["--shards", "1", "--jobs", "2"],
        }
        for name, extra in runs.items():
            out = tmp_path / name
            assert main(
                ["fleet", *SMALL_ARGS, *extra, "--out", str(out)]
            ) == 0
        capsys.readouterr()
        for artifact in ("fleeta.txt", "fleeta.csv", "fleetb.txt",
                         "fleetb.csv"):
            base = (tmp_path / "s1" / artifact).read_bytes()
            assert (tmp_path / "s2" / artifact).read_bytes() == base
            assert (tmp_path / "j2" / artifact).read_bytes() == base

    def test_invalid_scale_is_usage_error(self, tmp_path, capsys):
        assert main(["fleet", "--pms", "0", "--trials", "1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_sanitize_flag_reports_fleet_streams(self, capsys):
        assert main(["fleet", *SMALL_ARGS, "--sanitize"]) == 0
        out = capsys.readouterr().out
        assert "sanitizer:" in out
