"""Fast-mode smoke tests for every table/figure reproduction.

These run every experiment at reduced scale and assert the paper's
shape criteria still hold; the benchmark suite repeats them at full
paper scale.
"""

from __future__ import annotations

import pytest

from repro.experiments import runner
from repro.experiments.prediction import trained_models
from repro.experiments.sweeps import microbench_sweep


class TestRegistry:
    def test_all_ids_enumerated(self):
        # 3 tables + figs 2/3/4 (5 each) + fig5 (2) + figs 7/8/9
        # (4 each) + fig6 + fig10 (2) + the four extension artifacts
        # + the two chaos artifacts.
        assert len(runner.ALL_IDS) == 3 + 5 * 3 + 2 + 1 + 4 * 3 + 2 + 4 + 2

    def test_unknown_ids_rejected(self):
        with pytest.raises(KeyError):
            runner.run("fig99a")
        with pytest.raises(KeyError):
            runner.run_group("fig99")
        with pytest.raises(KeyError):
            runner.run("fig2")  # multi-artifact group

    def test_tables_run_directly(self):
        for tid in ("table1", "table2", "table3"):
            assert runner.run(tid).passed, tid


class TestMicrobenchFigures:
    @pytest.mark.parametrize("group", ["fig2", "fig3", "fig4", "fig5", "fig6"])
    def test_group_passes_fast(self, group):
        results = runner.run_group(group, fast=True)
        for res in results:
            assert res.passed, (
                res.experiment_id,
                [c.render() for c in res.failed_checks()],
            )

    def test_single_subfigure_lookup(self):
        res = runner.run("fig2b", fast=True)
        assert res.experiment_id == "fig2b"
        assert res.passed


class TestPredictionFigures:
    @pytest.mark.parametrize("group", ["fig7", "fig8", "fig9"])
    def test_group_passes_fast(self, group):
        results = runner.run_group(group, fast=True)
        assert len(results) == 4
        for res in results:
            assert res.passed, (
                res.experiment_id,
                [c.render() for c in res.failed_checks()],
            )


class TestPlacementFigure:
    def test_fig10_passes_fast(self):
        results = runner.run_group("fig10", fast=True)
        assert [r.experiment_id for r in results] == ["fig10a", "fig10b"]
        for res in results:
            assert res.passed, (
                res.experiment_id,
                [c.render() for c in res.failed_checks()],
            )


class TestSweepHelpers:
    def test_sweep_custom_levels(self):
        sweep = microbench_sweep("cpu", 1, duration=5.0, levels=[10.0, 20.0])
        assert sweep.levels == [10.0, 20.0]
        assert len(sweep.series("dom0", "cpu")) == 2

    def test_sweep_unknown_series(self):
        sweep = microbench_sweep("cpu", 1, duration=5.0, levels=[10.0])
        with pytest.raises(KeyError):
            sweep.series("ghost", "cpu")

    def test_trained_models_cached(self):
        a = trained_models(duration=20.0)
        b = trained_models(duration=20.0)
        assert a[0] is b[0] and a[1] is b[1]
