"""Tests for the EXPERIMENTS.md generator."""

from __future__ import annotations

import pytest

from repro.experiments.base import Check, ExperimentResult
from repro.experiments.report import (
    DEVIATIONS,
    PAPER_CLAIMS,
    generate_experiments_md,
)
from repro.experiments.runner import ALL_IDS


def result(experiment_id="fig2a", passed=True):
    return ExperimentResult(
        experiment_id=experiment_id,
        title="a title",
        checks=[Check("some check", passed, "detail text")],
    )


class TestGenerateExperimentsMd:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            generate_experiments_md([])

    def test_contains_claims_and_checks(self):
        md = generate_experiments_md([result("fig2a")])
        assert "### fig2a" in md
        assert "Paper reports" in md
        assert "increase rate growing 0.01" in md  # the fig2a claim
        assert "- [x] some check -- detail text" in md

    def test_failed_check_rendered_unchecked(self):
        md = generate_experiments_md([result(passed=False)])
        assert "- [ ] some check" in md
        assert "1/" not in md.split("\n")[0]  # header counts below

    def test_pass_counter(self):
        md = generate_experiments_md(
            [result("fig2a"), result("fig2b", passed=False)]
        )
        assert "1/2 artifacts pass" in md

    def test_fast_mode_note(self):
        fast = generate_experiments_md([result()], fast=True)
        full = generate_experiments_md([result()], fast=False)
        assert "fast mode" in fast
        assert "paper scale" in full

    def test_deviations_included(self):
        md = generate_experiments_md([result("fig7a")])
        assert "**Deviation:**" in md
        assert "convex" in md

    def test_every_artifact_has_a_claim(self):
        missing = [i for i in ALL_IDS if i not in PAPER_CLAIMS]
        assert missing == [], f"PAPER_CLAIMS missing {missing}"

    def test_deviation_ids_are_valid(self):
        unknown = [i for i in DEVIATIONS if i not in ALL_IDS]
        assert unknown == []

    def test_provenance_lines_rendered_for_resumed_runs(self):
        line = "Run provenance: resumed from run directory `x`."
        md = generate_experiments_md([result()], provenance=[line])
        assert line in md

    def test_no_provenance_keeps_output_unchanged(self):
        # Byte-identity guarantee: a run that never resumed renders
        # exactly as one generated before the crash-safety layer knobs.
        plain = generate_experiments_md([result()])
        explicit_none = generate_experiments_md([result()], provenance=None)
        empty = generate_experiments_md([result()], provenance=[])
        assert plain == explicit_none == empty
        assert "Run provenance" not in plain
