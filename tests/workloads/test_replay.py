"""Tests for trace-replay workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import Simulator
from repro.traces import Trace, synth
from repro.workloads import CpuHog, TraceReplay, replay_onto_vm, value_at
from repro.xen import GuestVM, PhysicalMachine, VMSpec


def make_trace(values, step=1.0):
    times = step * np.arange(1, len(values) + 1)
    return Trace("t", times, values)


class TestValueAt:
    def test_zero_order_hold(self):
        tr = make_trace([10.0, 20.0, 30.0])
        assert value_at(tr, 1.0) == 10.0
        assert value_at(tr, 1.5) == 10.0
        assert value_at(tr, 2.0) == 20.0
        assert value_at(tr, 99.0) == 30.0

    def test_leading_flat(self):
        tr = make_trace([5.0, 6.0])
        assert value_at(tr, 0.0) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            value_at(Trace("e", [], []), 1.0)


class TestTraceReplay:
    def test_drives_workload_intensity(self):
        sim = Simulator(seed=1)
        vm = GuestVM(VMSpec(name="v"))
        hog = CpuHog(0.0).attach(vm)
        replay = TraceReplay(sim, hog, make_trace([10.0, 20.0, 30.0]))
        sim.run_until(2.5)
        assert vm.demand.cpu_pct == 20.0
        assert not replay.finished

    def test_non_looping_holds_last_value_and_stops(self):
        sim = Simulator(seed=1)
        vm = GuestVM(VMSpec(name="v"))
        hog = CpuHog(0.0).attach(vm)
        replay = TraceReplay(sim, hog, make_trace([10.0, 20.0]))
        sim.run_until(10.0)
        assert vm.demand.cpu_pct == 20.0
        assert replay.finished

    def test_looping_wraps(self):
        sim = Simulator(seed=1)
        vm = GuestVM(VMSpec(name="v"))
        hog = CpuHog(0.0).attach(vm)
        TraceReplay(sim, hog, make_trace([10.0, 20.0, 30.0]), loop=True)
        sim.run_until(4.0)  # 4 % 3 = 1 -> value at t=1 is 10
        assert vm.demand.cpu_pct == 10.0

    def test_time_scale(self):
        sim = Simulator(seed=1)
        vm = GuestVM(VMSpec(name="v"))
        hog = CpuHog(0.0).attach(vm)
        TraceReplay(
            sim, hog, make_trace([10.0, 20.0, 30.0, 40.0]), time_scale=2.0
        )
        sim.run_until(2.0)  # replay time 4 -> last value
        assert vm.demand.cpu_pct == 40.0

    def test_stop(self):
        sim = Simulator(seed=1)
        vm = GuestVM(VMSpec(name="v"))
        hog = CpuHog(0.0).attach(vm)
        replay = TraceReplay(sim, hog, make_trace([10.0, 20.0, 30.0]))
        sim.run_until(1.0)
        replay.stop()
        sim.run_until(5.0)
        assert vm.demand.cpu_pct == 10.0

    def test_validation(self):
        sim = Simulator(seed=1)
        vm = GuestVM(VMSpec(name="v"))
        hog = CpuHog(0.0).attach(vm)
        with pytest.raises(ValueError):
            TraceReplay(sim, hog, Trace("e", [], []))
        with pytest.raises(ValueError):
            TraceReplay(sim, hog, make_trace([1.0]), time_scale=0.0)

    def test_negative_trace_values_clamped(self):
        sim = Simulator(seed=1)
        vm = GuestVM(VMSpec(name="v"))
        hog = CpuHog(0.0).attach(vm)
        TraceReplay(sim, hog, make_trace([-5.0, 10.0]))
        sim.run_until(1.0)
        assert vm.demand.cpu_pct == 0.0


class TestEndToEndReplay:
    def test_replay_through_machine(self):
        # Replay a synthetic periodic CPU trace into a simulated guest
        # and verify the machine tracks it.
        sim = Simulator(seed=9)
        pm = PhysicalMachine(sim, name="pm1")
        vm = pm.create_vm(VMSpec(name="v"))
        trace = synth.periodic(
            60, mean=40.0, amplitude=20.0, wave_period=30.0
        )
        replay_onto_vm(sim, vm, trace, CpuHog(0.0))
        pm.start()
        sim.run_until(40.0)
        snap = pm.snapshot()
        # The machine's last quantum reflects the replay value within a
        # one-second workload-tick lag; allow the per-second slew of the
        # sine (~2*pi*20/30 ~ 4.2 points).
        expected = value_at(trace, 40.0)
        assert snap.vm("v").cpu_pct == pytest.approx(expected + 0.3, abs=5.0)
