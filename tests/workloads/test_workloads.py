"""Tests for the micro-benchmark workload generators."""

from __future__ import annotations

import pytest

from repro.sim import Simulator
from repro.workloads import (
    TABLE_II,
    CpuHog,
    DynamicWorkload,
    IoHog,
    MemHog,
    PingLoad,
    intensity_levels,
    intra_pm_ping,
    make_benchmark,
)
from repro.xen import GuestVM, VMSpec


@pytest.fixture()
def vm():
    return GuestVM(VMSpec(name="vm1"))


class TestCpuHog:
    def test_sets_only_cpu(self, vm):
        CpuHog(60.0).attach(vm)
        assert vm.demand.cpu_pct == 60.0
        assert vm.demand.mem_mb == 0.0
        assert vm.demand.io_bps == 0.0
        assert vm.flows == []

    def test_intensity_dial_updates_attached_vm(self, vm):
        hog = CpuHog(10.0).attach(vm)
        hog.intensity = 90.0
        assert vm.demand.cpu_pct == 90.0

    def test_detach_clears(self, vm):
        hog = CpuHog(60.0).attach(vm)
        hog.detach()
        assert vm.demand.cpu_pct == 0.0
        assert hog.vm is None

    def test_double_attach_rejected(self, vm):
        hog = CpuHog(10.0).attach(vm)
        with pytest.raises(RuntimeError):
            hog.attach(vm)

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            CpuHog(-1.0)
        hog = CpuHog(1.0)
        with pytest.raises(ValueError):
            hog.intensity = -5.0

    def test_detach_without_attach_is_noop(self):
        CpuHog(1.0).detach()


class TestMemHog:
    def test_sets_only_memory(self, vm):
        MemHog(50.0).attach(vm)
        assert vm.demand.mem_mb == 50.0
        assert vm.demand.cpu_pct == 0.0


class TestIoHog:
    def test_sets_io_and_fixed_cpu_cost(self, vm):
        IoHog(46.0).attach(vm)
        assert vm.demand.io_bps == 46.0
        # Paper: the I/O benchmark burns a flat 0.84 % guest CPU.
        assert vm.demand.cpu_pct == pytest.approx(0.84)

    def test_custom_cpu_cost(self, vm):
        IoHog(46.0, cpu_cost_pct=0.0).attach(vm)
        assert vm.demand.cpu_pct == 0.0

    def test_detach_clears_both(self, vm):
        hog = IoHog(46.0).attach(vm)
        hog.detach()
        assert vm.demand.io_bps == 0.0
        assert vm.demand.cpu_pct == 0.0

    def test_rejects_negative_cpu_cost(self):
        with pytest.raises(ValueError):
            IoHog(1.0, cpu_cost_pct=-1.0)


class TestPingLoad:
    def test_creates_external_flow(self, vm):
        load = PingLoad(640.0, dst="peer").attach(vm)
        assert load.flow is not None
        assert load.flow.external
        assert load.flow.kbps == 640.0
        assert vm.demand.cpu_pct == pytest.approx(0.5)

    def test_intensity_updates_flow_rate(self, vm):
        load = PingLoad(100.0).attach(vm)
        load.intensity = 1280.0
        assert load.flow.kbps == 1280.0
        assert len(vm.flows) == 1  # no duplicate flow

    def test_detach_removes_flow(self, vm):
        load = PingLoad(100.0).attach(vm)
        load.detach()
        assert vm.flows == []
        assert load.flow is None

    def test_intra_pm_helper(self, vm):
        load = intra_pm_ping(1280.0, "vm2").attach(vm)
        assert load.flow.intra_pm
        assert not load.flow.external
        assert load.flow.dst == "vm2"
        assert load.flow.packet_kb == 64.0

    def test_external_and_intra_conflict(self):
        with pytest.raises(ValueError):
            PingLoad(1.0, external=True, intra_pm=True)


class TestTableII:
    def test_grid_values_match_paper(self):
        assert intensity_levels("cpu") == (1.0, 30.0, 60.0, 90.0, 99.0)
        assert intensity_levels("mem") == (0.03, 5.0, 10.0, 20.0, 50.0)
        assert intensity_levels("io") == (15.0, 19.0, 27.0, 46.0, 72.0)
        assert intensity_levels("bw") == (0.001, 0.16, 0.32, 0.64, 1.28)

    def test_each_kind_has_five_levels(self):
        for spec in TABLE_II.values():
            assert len(spec.levels) == 5

    def test_factory_builds_right_types(self):
        assert isinstance(make_benchmark("cpu", 30.0), CpuHog)
        assert isinstance(make_benchmark("mem", 5.0), MemHog)
        assert isinstance(make_benchmark("io", 27.0), IoHog)
        assert isinstance(make_benchmark("bw", 0.64), PingLoad)

    def test_bw_factory_converts_mbps_to_kbps(self, vm):
        load = make_benchmark("bw", 1.28)
        load.attach(vm)
        assert load.flow.kbps == pytest.approx(1280.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark kind"):
            make_benchmark("gpu", 1.0)
        with pytest.raises(ValueError):
            intensity_levels("gpu")

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            make_benchmark("cpu", -1.0)


class TestDynamicWorkload:
    def test_profile_drives_intensity(self, vm):
        sim = Simulator(seed=1)
        hog = CpuHog(0.0).attach(vm)
        DynamicWorkload(sim, hog, lambda t: 10.0 * t)
        sim.run_until(3.0)
        assert vm.demand.cpu_pct == pytest.approx(30.0)

    def test_negative_profile_values_clamped(self, vm):
        sim = Simulator(seed=1)
        hog = CpuHog(5.0).attach(vm)
        DynamicWorkload(sim, hog, lambda t: -50.0)
        sim.run_until(2.0)
        assert vm.demand.cpu_pct == 0.0

    def test_stop_freezes_intensity(self, vm):
        sim = Simulator(seed=1)
        hog = CpuHog(0.0).attach(vm)
        dyn = DynamicWorkload(sim, hog, lambda t: t)
        sim.run_until(2.0)
        dyn.stop()
        sim.run_until(10.0)
        assert vm.demand.cpu_pct == pytest.approx(2.0)
