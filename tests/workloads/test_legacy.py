"""Tests for the httperf/Iperf-style legacy generators and purity."""

from __future__ import annotations

import pytest

from repro.workloads import (
    CpuHog,
    HttperfLoad,
    IperfLoad,
    MemHog,
    PingLoad,
    make_benchmark,
    resource_purity,
)
from repro.workloads.legacy import TABLE_II_SCALES
from repro.xen import GuestVM, VMSpec


@pytest.fixture()
def vm():
    return GuestVM(VMSpec(name="probe"))


class TestHttperfLoad:
    def test_loads_three_resources(self, vm):
        HttperfLoad(80.0).attach(vm)
        assert vm.demand.cpu_pct > 10.0
        assert vm.demand.io_bps > 5.0
        assert vm.outbound_kbps() > 100.0

    def test_intensity_scales_all_costs(self, vm):
        load = HttperfLoad(40.0).attach(vm)
        cpu1, io1, bw1 = vm.demand.cpu_pct, vm.demand.io_bps, vm.outbound_kbps()
        load.intensity = 80.0
        assert vm.demand.cpu_pct == pytest.approx(2 * cpu1)
        assert vm.demand.io_bps == pytest.approx(2 * io1)
        assert vm.outbound_kbps() == pytest.approx(2 * bw1)

    def test_detach_clears_everything(self, vm):
        HttperfLoad(80.0).attach(vm).detach()
        assert vm.demand.cpu_pct == 0.0
        assert vm.demand.io_bps == 0.0
        assert vm.flows == []

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            HttperfLoad(10.0, cpu_pct_per_rps=-1.0)


class TestIperfLoad:
    def test_bandwidth_with_cpu_tax(self, vm):
        IperfLoad(100.0).attach(vm)
        assert vm.outbound_kbps() == pytest.approx(100_000.0)
        assert vm.demand.cpu_pct == pytest.approx(10.0)

    def test_detach(self, vm):
        IperfLoad(100.0).attach(vm).detach()
        assert vm.flows == [] and vm.demand.cpu_pct == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            IperfLoad(10.0, cpu_pct_per_mbps=-0.1)


class TestResourcePurity:
    def test_table_ii_generators_are_pure(self, vm):
        for kind, level in (("cpu", 60.0), ("mem", 20.0), ("io", 46.0), ("bw", 0.64)):
            wl = make_benchmark(kind, level)
            wl.attach(vm)
            assert resource_purity(vm) > 0.85, kind
            wl.detach()

    def test_httperf_is_impure(self, vm):
        HttperfLoad(80.0).attach(vm)
        assert resource_purity(vm) < 0.7

    def test_purity_is_scale_relative(self, vm):
        # Iperf near line rate: BW-pure against the Table II envelope,
        # but clearly impure against machine capacities.
        IperfLoad(800.0).attach(vm)
        envelope = resource_purity(vm)
        capacity = resource_purity(vm, scales=(100.0, 256.0, 90.0, 1_000_000.0))
        assert envelope > 0.95
        assert capacity < 0.6

    def test_idle_guest_rejected(self, vm):
        with pytest.raises(ValueError, match="no demand"):
            resource_purity(vm)

    def test_bad_scales_rejected(self, vm):
        CpuHog(10.0).attach(vm)
        with pytest.raises(ValueError):
            resource_purity(vm, scales=(1.0, 2.0, 3.0))
        with pytest.raises(ValueError):
            resource_purity(vm, scales=(0.0, 1.0, 1.0, 1.0))

    def test_default_scales_are_table_ii_maxima(self):
        assert TABLE_II_SCALES == (99.0, 50.0, 72.0, 1280.0)

    def test_mem_hog_pure(self, vm):
        MemHog(20.0).attach(vm)
        assert resource_purity(vm) == pytest.approx(1.0)

    def test_ping_pure_despite_base_cpu(self, vm):
        PingLoad(640.0).attach(vm)
        assert resource_purity(vm) > 0.95
