"""Tests for GuestVM state and the Flow model."""

from __future__ import annotations

import pytest

from repro.xen.network import EXTERNAL_PREFIX, Flow, external_host
from repro.xen.specs import VMSpec
from repro.xen.vm import GuestVM, ResourceDemand, total_granted_cpu


class TestFlow:
    def test_defaults_and_name(self):
        f = Flow(src="a", dst="b", kbps=100.0)
        assert f.name == "a->b"
        assert not f.external
        assert not f.intra_pm

    def test_external_destination(self):
        f = Flow(src="a", dst=external_host("client1"))
        assert f.external
        assert f.dst == EXTERNAL_PREFIX + "client1"

    def test_packets_per_s(self):
        f = Flow(src="a", dst="b", kbps=640.0, packet_kb=64.0)
        assert f.packets_per_s == pytest.approx(10.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"src": "", "dst": "b"},
            {"src": "a", "dst": ""},
            {"src": "a", "dst": "b", "kbps": -1},
            {"src": "a", "dst": "b", "packet_kb": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            Flow(**kwargs)

    def test_external_host_requires_name(self):
        with pytest.raises(ValueError):
            external_host("")


class TestGuestVM:
    def test_initial_state_is_idle(self):
        vm = GuestVM(VMSpec(name="v"))
        assert vm.demand.cpu_pct == 0.0
        assert vm.granted.cpu_pct == 0.0
        assert vm.flows == []

    def test_cpu_demand_includes_os_baseline(self):
        vm = GuestVM(VMSpec(name="v", os_cpu_pct=0.3))
        vm.demand.cpu_pct = 60.0
        assert vm.cpu_demand_total == pytest.approx(60.3)

    def test_cpu_demand_clamped_to_vcpu(self):
        vm = GuestVM(VMSpec(name="v"))
        vm.demand.cpu_pct = 150.0
        assert vm.cpu_demand_total == 100.0

    def test_mem_clamped_to_configured(self):
        vm = GuestVM(VMSpec(name="v", mem_mb=256, os_mem_mb=80))
        vm.demand.mem_mb = 1000.0
        assert vm.mem_total_mb == 256.0
        vm.demand.mem_mb = 50.0
        assert vm.mem_total_mb == pytest.approx(130.0)

    def test_io_demand_capped(self):
        vm = GuestVM(VMSpec(name="v", io_cap_bps=90))
        vm.demand.io_bps = 500.0
        assert vm.io_demand_capped == 90.0
        vm.demand.io_bps = 46.0
        assert vm.io_demand_capped == 46.0

    def test_flow_lifecycle(self):
        vm = GuestVM(VMSpec(name="v"))
        f = vm.add_flow(Flow(src="v", dst="other", kbps=100))
        assert vm.outbound_kbps() == 100.0
        vm.remove_flow(f)
        assert vm.outbound_kbps() == 0.0
        vm.add_flow(Flow(src="v", dst="x", kbps=1))
        vm.clear_flows()
        assert vm.flows == []

    def test_add_flow_rejects_foreign_source(self):
        vm = GuestVM(VMSpec(name="v"))
        with pytest.raises(ValueError):
            vm.add_flow(Flow(src="someone-else", dst="x"))

    def test_demand_reset(self):
        d = ResourceDemand(cpu_pct=5, mem_mb=10, io_bps=20)
        d.reset()
        assert (d.cpu_pct, d.mem_mb, d.io_bps) == (0.0, 0.0, 0.0)

    def test_granted_tuple_order_matches_paper(self):
        vm = GuestVM(VMSpec(name="v"))
        vm.granted.cpu_pct = 1.0
        vm.granted.mem_mb = 2.0
        vm.granted.io_bps = 3.0
        vm.granted.bw_kbps = 4.0
        assert vm.granted.as_tuple() == (1.0, 2.0, 3.0, 4.0)

    def test_total_granted_cpu(self):
        vms = [GuestVM(VMSpec(name=f"v{i}")) for i in range(3)]
        for i, vm in enumerate(vms):
            vm.granted.cpu_pct = 10.0 * (i + 1)
        assert total_granted_cpu(vms) == pytest.approx(60.0)
