"""Property-based invariant tests for the machine model.

Whatever demands the guests present, the machine must uphold:

* grants never exceed demands (per resource, per guest);
* the CPU arbitration never hands out more than the effective capacity;
* PM CPU is exactly the component sum; PM memory is Dom0 + guests;
* Dom0/hypervisor never drop below their idle baselines;
* the disk and NIC never report less than the floors, and Dom0 I/O and
  bandwidth stay identically zero.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.xen import (
    DEFAULT_CALIBRATION,
    Flow,
    PhysicalMachine,
    VMSpec,
    external_host,
)

vm_demand = st.tuples(
    st.floats(min_value=0, max_value=120),  # cpu (may exceed vcpu)
    st.floats(min_value=0, max_value=400),  # mem
    st.floats(min_value=0, max_value=200),  # io (may exceed cap)
    st.floats(min_value=0, max_value=3000),  # bw kbps
)


def build_machine(demands, seed=5):
    sim = Simulator(seed=seed)
    pm = PhysicalMachine(sim, name="pm1")
    for k, (cpu, mem, io, bw) in enumerate(demands):
        vm = pm.create_vm(VMSpec(name=f"vm{k}"))
        vm.demand.cpu_pct = cpu
        vm.demand.mem_mb = mem
        vm.demand.io_bps = io
        if bw > 0:
            vm.add_flow(Flow(src=vm.name, dst=external_host("x"), kbps=bw))
    pm.start()
    sim.run_until(6.0)
    return pm, pm.snapshot()


@settings(max_examples=40, deadline=None)
@given(st.lists(vm_demand, min_size=1, max_size=5))
def test_machine_invariants(demands):
    pm, snap = build_machine(demands)
    cal = DEFAULT_CALIBRATION

    guest_cpu = 0.0
    for k, (cpu, mem, io, bw) in enumerate(demands):
        util = snap.vm(f"vm{k}")
        # Grants bounded by demands / caps.
        spec = pm.vms[f"vm{k}"].spec
        assert util.cpu_pct <= min(cpu + spec.os_cpu_pct + 0.002 * 2 * bw,
                                   spec.cpu_capacity_pct) + 1e-6
        assert util.io_bps <= min(io, spec.io_cap_bps) + 1e-6
        assert util.mem_mb <= spec.mem_mb + 1e-9
        assert util.bw_kbps <= bw + 1e-6
        assert util.cpu_pct >= 0 and util.io_bps >= 0 and util.bw_kbps >= 0
        guest_cpu += util.cpu_pct

    # Capacity conservation.
    total = snap.dom0_cpu_pct + snap.hypervisor_cpu_pct + guest_cpu
    assert total <= cal.effective_capacity_pct + 1e-6
    # PM CPU is the component sum.
    assert snap.pm_cpu_pct == pytest.approx(total)
    # Baselines.
    assert snap.dom0_cpu_pct >= cal.dom0_cpu_base - 1e-6
    assert snap.hypervisor_cpu_pct >= cal.hyp_cpu_base - 1e-6
    # Memory accounting.
    expect_mem = cal.dom0_mem_mb + sum(
        snap.vm(f"vm{k}").mem_mb for k in range(len(demands))
    )
    assert snap.pm_mem_mb == pytest.approx(expect_mem)
    # Floors and Dom0 zeros.
    assert snap.pm_io_bps >= cal.pm_io_floor_bps - 1e-6
    assert snap.pm_bw_kbps >= cal.pm_bw_floor_kbps - 1e-6
    assert snap.dom0_io_bps == 0.0
    assert snap.dom0_bw_kbps == 0.0


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0, max_value=100), min_size=2, max_size=5
    )
)
def test_equal_demands_get_equal_grants(cpus):
    # Symmetric guests (equal weights, equal demands) must be granted
    # equally -- the fairness property of the credit water-fill.
    demands = [(c, 0.0, 0.0, 0.0) for c in [cpus[0]] * len(cpus)]
    _, snap = build_machine(demands)
    grants = [snap.vm(f"vm{k}").cpu_pct for k in range(len(cpus))]
    assert max(grants) - min(grants) < 1e-6


@settings(max_examples=20, deadline=None)
@given(st.floats(min_value=0, max_value=100), st.integers(min_value=1, max_value=4))
def test_determinism_across_replays(cpu, n):
    demands = [(cpu, 0.0, 10.0, 100.0)] * n
    _, a = build_machine(demands, seed=11)
    _, b = build_machine(demands, seed=11)
    assert a.pm_cpu_pct == b.pm_cpu_pct
    assert a.pm_bw_kbps == b.pm_bw_kbps
    assert a.pm_io_bps == b.pm_io_bps
