"""Tests for usage metering."""

from __future__ import annotations

import pytest

from repro.sim import Simulator
from repro.workloads import CpuHog, IoHog, PingLoad
from repro.xen import PhysicalMachine, UsageMeter, UsageRecord, VMSpec


def make_metered_pm(seed=61, interval=1.0):
    sim = Simulator(seed=seed)
    pm = PhysicalMachine(sim, name="pm1")
    vm = pm.create_vm(VMSpec(name="vm1"))
    meter = UsageMeter(pm, interval=interval)
    return sim, pm, vm, meter


class TestUsageRecord:
    def test_integration(self):
        rec = UsageRecord()
        rec.add_sample(50.0, 128.0, 10.0, 100.0, dt=2.0)
        assert rec.cpu_pct_s == 100.0
        assert rec.mem_mb_s == 256.0
        assert rec.io_blocks == 20.0
        assert rec.bw_kbits == 200.0

    def test_core_hours(self):
        rec = UsageRecord(cpu_pct_s=100.0 * 3600.0)
        assert rec.cpu_core_hours == pytest.approx(1.0)

    def test_dt_validated(self):
        with pytest.raises(ValueError):
            UsageRecord().add_sample(1, 1, 1, 1, dt=0.0)


class TestUsageMeter:
    def test_integrates_guest_cpu(self):
        sim, pm, vm, meter = make_metered_pm()
        CpuHog(60.0).attach(vm)
        pm.start()
        meter.start()
        sim.run_until(100.0)
        rec = meter.record("vm1")
        # ~60.3 % for 100 s.
        assert rec.cpu_pct_s == pytest.approx(60.3 * 100.0, rel=0.02)
        assert meter.elapsed_s == pytest.approx(100.0)

    def test_tracks_io_and_bw_volumes(self):
        sim, pm, vm, meter = make_metered_pm()
        IoHog(46.0).attach(vm)
        pm.start()
        meter.start()
        sim.run_until(50.0)
        assert meter.record("vm1").io_blocks == pytest.approx(
            46.0 * 50.0, rel=0.02
        )
        meter.stop()
        # Attach a network load on a fresh meter for volume accounting.
        sim2, pm2, vm2, meter2 = make_metered_pm(seed=62)
        PingLoad(640.0).attach(vm2)
        pm2.start()
        meter2.start()
        sim2.run_until(50.0)
        assert meter2.record("vm1").bw_kbits == pytest.approx(
            640.0 * 50.0, rel=0.02
        )

    def test_platform_overhead_accumulates(self):
        sim, pm, vm, meter = make_metered_pm()
        CpuHog(90.0).attach(vm)
        pm.start()
        meter.start()
        sim.run_until(60.0)
        overhead = meter.platform_overhead_cpu_pct_s()
        # Dom0 ~27.5 + hyp ~12.4 for 60 s.
        assert overhead == pytest.approx((27.5 + 12.4) * 60.0, rel=0.05)

    def test_stop_freezes_totals(self):
        sim, pm, vm, meter = make_metered_pm()
        CpuHog(50.0).attach(vm)
        pm.start()
        meter.start()
        sim.run_until(10.0)
        meter.stop()
        frozen = meter.record("vm1").cpu_pct_s
        sim.run_until(30.0)
        assert meter.record("vm1").cpu_pct_s == frozen

    def test_unknown_entity(self):
        _, _, _, meter = make_metered_pm()
        with pytest.raises(KeyError):
            meter.record("ghost")

    def test_double_start_rejected(self):
        sim, pm, _, meter = make_metered_pm()
        pm.start()
        meter.start()
        with pytest.raises(RuntimeError):
            meter.start()

    def test_interval_validated(self):
        sim = Simulator(seed=1)
        pm = PhysicalMachine(sim, name="p")
        with pytest.raises(ValueError):
            UsageMeter(pm, interval=0.0)
