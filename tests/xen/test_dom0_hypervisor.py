"""Direct unit tests for the Dom0 and Hypervisor demand models."""

from __future__ import annotations

import pytest

from repro.xen import DEFAULT_CALIBRATION, Dom0, Hypervisor


@pytest.fixture()
def dom0():
    return Dom0(DEFAULT_CALIBRATION)


@pytest.fixture()
def hyp():
    return Hypervisor(DEFAULT_CALIBRATION)


class TestDom0:
    def test_idle_demand_is_baseline(self, dom0):
        assert dom0.cpu_demand([], 0.0, 0.0, 0.0) == pytest.approx(16.8)

    def test_network_terms(self, dom0):
        base = dom0.cpu_demand([], 0.0, 0.0, 0.0)
        inter = dom0.cpu_demand([], 1000.0, 0.0, 0.0)
        intra = dom0.cpu_demand([], 0.0, 1000.0, 0.0)
        assert inter - base == pytest.approx(10.0)  # 0.01/Kb/s
        assert intra - base == pytest.approx(2.0)  # 0.002/Kb/s

    def test_io_term(self, dom0):
        base = dom0.cpu_demand([], 0.0, 0.0, 0.0)
        with_io = dom0.cpu_demand([], 0.0, 0.0, 100.0)
        assert with_io - base == pytest.approx(
            100 * DEFAULT_CALIBRATION.dom0_io_pct_per_bps
        )

    def test_terms_are_additive(self, dom0):
        base = dom0.cpu_demand([], 0.0, 0.0, 0.0)
        net = dom0.cpu_demand([], 500.0, 0.0, 0.0) - base
        io = dom0.cpu_demand([], 0.0, 0.0, 50.0) - base
        combined = dom0.cpu_demand([], 500.0, 0.0, 50.0) - base
        assert combined == pytest.approx(net + io)

    def test_probe_cpu_adds_to_demand(self, dom0):
        base = dom0.cpu_demand([], 0.0, 0.0, 0.0)
        dom0.probe_cpu_pct = 1.5
        assert dom0.cpu_demand([], 0.0, 0.0, 0.0) == pytest.approx(base + 1.5)

    def test_record_updates_state(self, dom0):
        dom0.record(23.4)
        assert dom0.state.cpu_pct == 23.4

    def test_memory_constant(self, dom0):
        assert dom0.mem_mb == pytest.approx(350.0)

    def test_boost_weight_is_large(self):
        assert Dom0.BOOST_WEIGHT > 256  # above any guest weight


class TestHypervisor:
    def test_idle_demand_is_baseline(self, hyp):
        assert hyp.cpu_demand([], 0.0, 0.0, 0.0) == pytest.approx(3.0)

    def test_event_channel_term(self, hyp):
        base = hyp.cpu_demand([], 0.0, 0.0, 0.0)
        loaded = hyp.cpu_demand([], 1000.0, 0.0, 0.0)
        assert loaded - base == pytest.approx(0.55)  # 0.00055/Kb/s

    def test_intra_pm_cheaper_than_inter(self, hyp):
        base = hyp.cpu_demand([], 0.0, 0.0, 0.0)
        inter = hyp.cpu_demand([], 1000.0, 0.0, 0.0) - base
        intra = hyp.cpu_demand([], 0.0, 1000.0, 0.0) - base
        assert intra < inter

    def test_guest_activity_term_convex(self, hyp):
        lo = hyp.cpu_demand([10.0], 0, 0, 0) - hyp.cpu_demand([0.0], 0, 0, 0)
        hi = hyp.cpu_demand([99.0], 0, 0, 0) - hyp.cpu_demand([89.0], 0, 0, 0)
        assert hi > 2 * lo

    def test_record_updates_state(self, hyp):
        hyp.record(12.0)
        assert hyp.state.cpu_pct == 12.0
