"""Integration tests for PhysicalMachine: the paper's anchor scenarios.

Each test reproduces one of Section IV's measured operating points from
mechanism (scheduler + cost accounting), not from lookup.
"""

from __future__ import annotations

import pytest

from repro.sim import Simulator
from repro.xen import (
    DEFAULT_CALIBRATION,
    Flow,
    MachineSpec,
    PhysicalMachine,
    VMSpec,
    external_host,
)


def make_pm(n_vms: int, seed: int = 1, **pm_kwargs):
    sim = Simulator(seed=seed)
    pm = PhysicalMachine(sim, name="pm1", **pm_kwargs)
    vms = [pm.create_vm(VMSpec(name=f"vm{k}")) for k in range(n_vms)]
    return sim, pm, vms


def run_settled(sim, pm, seconds=10.0):
    pm.start()
    sim.run_until(sim.now + seconds)
    return pm.snapshot()


class TestIdleBaselines:
    def test_idle_machine_matches_paper_constants(self):
        sim, pm, _ = make_pm(1)
        snap = run_settled(sim, pm)
        assert snap.dom0_cpu_pct == pytest.approx(16.8, abs=0.1)
        assert snap.hypervisor_cpu_pct == pytest.approx(3.0, abs=0.1)
        assert snap.pm_io_bps == pytest.approx(18.8, abs=0.1)
        assert snap.pm_bw_kbps == pytest.approx(2.03, abs=0.1)
        assert snap.dom0_io_bps == 0.0
        assert snap.dom0_bw_kbps == 0.0

    def test_pm_memory_is_dom0_plus_guests(self):
        sim, pm, vms = make_pm(2)
        vms[0].demand.mem_mb = 50.0
        snap = run_settled(sim, pm)
        expect = (
            DEFAULT_CALIBRATION.dom0_mem_mb
            + vms[0].spec.os_mem_mb
            + 50.0
            + vms[1].spec.os_mem_mb
        )
        assert snap.pm_mem_mb == pytest.approx(expect)


class TestSingleVmCpu:
    def test_high_cpu_anchor(self):
        # Paper Fig. 2(a): VM at 99 % -> Dom0 29.5 %, hypervisor 14 %.
        sim, pm, vms = make_pm(1)
        vms[0].demand.cpu_pct = 99.0
        snap = run_settled(sim, pm)
        assert snap.vm("vm0").cpu_pct == pytest.approx(99.0, abs=0.5)
        assert snap.dom0_cpu_pct == pytest.approx(29.5, abs=0.5)
        assert snap.hypervisor_cpu_pct == pytest.approx(14.0, abs=0.5)

    def test_overheads_convex_in_load(self):
        points = []
        for load in (1.0, 30.0, 60.0, 90.0, 99.0):
            sim, pm, vms = make_pm(1)
            vms[0].demand.cpu_pct = load
            snap = run_settled(sim, pm)
            points.append((load, snap.dom0_cpu_pct, snap.hypervisor_cpu_pct))
        dom0 = [p[1] for p in points]
        hyp = [p[2] for p in points]
        assert dom0 == sorted(dom0)
        assert hyp == sorted(hyp)
        # Increase rate grows (convexity; paper 0.01 -> 0.31).
        early = (dom0[1] - dom0[0]) / (30.0 - 1.0)
        late = (dom0[4] - dom0[3]) / (99.0 - 90.0)
        assert late > 3 * early

    def test_pm_cpu_is_component_sum(self):
        sim, pm, vms = make_pm(1)
        vms[0].demand.cpu_pct = 60.0
        snap = run_settled(sim, pm)
        expect = (
            snap.dom0_cpu_pct
            + snap.hypervisor_cpu_pct
            + sum(v.cpu_pct for v in snap.vms.values())
        )
        assert snap.pm_cpu_pct == pytest.approx(expect)


class TestMultiVmCpuSaturation:
    def test_two_vm_saturation(self):
        # Paper Fig. 3(a): guests ~95 % each, Dom0 23.4 %, hyp 12.0 %.
        sim, pm, vms = make_pm(2)
        for vm in vms:
            vm.demand.cpu_pct = 100.0
        snap = run_settled(sim, pm)
        assert snap.vm("vm0").cpu_pct == pytest.approx(95.0, abs=1.0)
        assert snap.vm("vm1").cpu_pct == pytest.approx(95.0, abs=1.0)
        assert snap.dom0_cpu_pct == pytest.approx(23.4, abs=0.5)
        assert snap.hypervisor_cpu_pct == pytest.approx(12.0, abs=0.5)

    def test_four_vm_saturation(self):
        # Paper Fig. 4(a): guests ~47 % each.
        sim, pm, vms = make_pm(4)
        for vm in vms:
            vm.demand.cpu_pct = 100.0
        snap = run_settled(sim, pm)
        for k in range(4):
            assert snap.vm(f"vm{k}").cpu_pct == pytest.approx(47.0, abs=1.0)
        assert snap.dom0_cpu_pct == pytest.approx(23.4, abs=0.6)
        assert snap.hypervisor_cpu_pct == pytest.approx(12.0, abs=0.6)

    def test_light_multi_vm_load_uncontended(self):
        sim, pm, vms = make_pm(2)
        for vm in vms:
            vm.demand.cpu_pct = 30.0
        snap = run_settled(sim, pm)
        # No contention: each guest gets what it asked for.
        assert snap.vm("vm0").cpu_pct == pytest.approx(30.3, abs=0.2)
        # Dom0 is between idle and plateau.
        assert 16.8 < snap.dom0_cpu_pct < 23.4


class TestDiskPath:
    def test_pm_io_twice_vm_io(self):
        # Paper Fig. 2(b).
        sim, pm, vms = make_pm(1)
        vms[0].demand.io_bps = 46.0
        snap = run_settled(sim, pm)
        assert snap.vm("vm0").io_bps == pytest.approx(46.0)
        ratio = (snap.pm_io_bps - 18.8) / snap.vm("vm0").io_bps
        assert ratio == pytest.approx(2.05, abs=0.05)
        assert snap.dom0_io_bps == 0.0

    def test_io_cap_at_90_blocks(self):
        # Paper Section IV-A: default VM I/O ceiling ~90 blocks/s.
        sim, pm, vms = make_pm(1)
        vms[0].demand.io_bps = 500.0
        snap = run_settled(sim, pm)
        assert snap.vm("vm0").io_bps == pytest.approx(90.0)

    def test_cpu_stays_flat_under_io(self):
        # Paper Fig. 2(c): CPU utilizations stable under varying I/O.
        values = []
        for io in (15.0, 46.0, 72.0):
            sim, pm, vms = make_pm(1)
            vms[0].demand.io_bps = io
            snap = run_settled(sim, pm)
            values.append((snap.dom0_cpu_pct, snap.hypervisor_cpu_pct))
        dom0_spread = max(v[0] for v in values) - min(v[0] for v in values)
        hyp_spread = max(v[1] for v in values) - min(v[1] for v in values)
        assert dom0_spread < 0.5
        assert hyp_spread < 0.3

    def test_multi_vm_io_lifts_dom0_slightly(self):
        # Paper Figs. 3(c)/4(c): ~17.4 % Dom0 under multi-VM I/O load.
        sim, pm, vms = make_pm(4)
        for vm in vms:
            vm.demand.io_bps = 46.0
            vm.demand.cpu_pct = 0.84  # the benchmark's own CPU cost
        snap = run_settled(sim, pm)
        assert snap.dom0_cpu_pct == pytest.approx(17.4, abs=0.5)


class TestNetworkPath:
    def test_inter_pm_bw_anchor(self):
        # Paper Fig. 2(d)/(e): Dom0 CPU rises at 0.01 per Kb/s; VM CPU
        # reaches ~3 %; PM BW ~ VM BW.
        sim, pm, vms = make_pm(1)
        vms[0].demand.cpu_pct = 0.5  # ping's own CPU use
        vms[0].add_flow(
            Flow(src="vm0", dst=external_host("peer"), kbps=1280.0)
        )
        snap = run_settled(sim, pm)
        assert snap.vm("vm0").bw_kbps == pytest.approx(1280.0)
        assert snap.pm_bw_kbps == pytest.approx(1280.0, rel=0.01)
        assert snap.dom0_cpu_pct == pytest.approx(16.8 + 12.8, abs=1.0)
        assert snap.vm("vm0").cpu_pct == pytest.approx(3.0, abs=0.7)
        assert snap.dom0_bw_kbps == 0.0

    def test_dom0_slope_is_constant_001(self):
        utils = []
        for kbps in (160.0, 640.0, 1280.0):
            sim, pm, vms = make_pm(1)
            vms[0].add_flow(
                Flow(src="vm0", dst=external_host("peer"), kbps=kbps)
            )
            snap = run_settled(sim, pm)
            utils.append((kbps, snap.dom0_cpu_pct))
        slope1 = (utils[1][1] - utils[0][1]) / (utils[1][0] - utils[0][0])
        slope2 = (utils[2][1] - utils[1][1]) / (utils[2][0] - utils[1][0])
        assert slope1 == pytest.approx(0.01, abs=0.002)
        assert slope2 == pytest.approx(0.01, abs=0.002)

    def test_four_vm_bw_anchor(self):
        # Paper Fig. 4(e): Dom0 reaches ~67 %, hypervisor ~6.3 %.
        sim, pm, vms = make_pm(4)
        for vm in vms:
            vm.demand.cpu_pct = 0.5
            vm.add_flow(
                Flow(src=vm.name, dst=external_host("peer"), kbps=1280.0)
            )
        snap = run_settled(sim, pm)
        assert snap.dom0_cpu_pct == pytest.approx(67.1, abs=2.0)
        assert snap.hypervisor_cpu_pct == pytest.approx(6.3, abs=0.5)
        # Paper Section IV-B: ~3 % PM bandwidth overhead.
        total_vm = 4 * 1280.0
        rel = (snap.pm_bw_kbps - total_vm) / snap.pm_bw_kbps
        assert 0.01 < rel < 0.04

    def test_intra_pm_traffic_consumes_no_pm_bandwidth(self):
        # Paper Fig. 5(a): PM and Dom0 bandwidth are zero for VM-to-VM
        # traffic within the PM.
        sim, pm, vms = make_pm(2)
        vms[0].add_flow(Flow(src="vm0", dst="vm1", kbps=1280.0))
        snap = run_settled(sim, pm)
        assert snap.pm_bw_kbps == pytest.approx(
            DEFAULT_CALIBRATION.pm_bw_floor_kbps, abs=0.1
        )
        assert snap.vm("vm0").bw_kbps == pytest.approx(1280.0)
        assert snap.vm("vm1").bw_kbps == pytest.approx(1280.0)

    def test_intra_pm_dom0_slope_5x_cheaper(self):
        # Paper Fig. 5(b): increase rate 0.002 = 5x less than inter-PM.
        sim, pm, vms = make_pm(2)
        vms[0].add_flow(Flow(src="vm0", dst="vm1", kbps=1280.0))
        snap = run_settled(sim, pm)
        rise = snap.dom0_cpu_pct - 16.8
        assert rise == pytest.approx(0.002 * 1280.0, abs=0.5)

    def test_external_inbound_counts_on_pm_and_vm(self):
        sim, pm, vms = make_pm(1)
        pm.external_inbound_kbps["vm0"] = 500.0
        snap = run_settled(sim, pm)
        assert snap.vm("vm0").bw_kbps == pytest.approx(500.0)
        assert snap.pm_bw_kbps >= 500.0


class TestLifecycle:
    def test_memory_admission_control(self):
        sim = Simulator(seed=1)
        pm = PhysicalMachine(sim, name="pm1")
        # Dom0 350 MB + 6 * 256 MB = 1886 < 2048; the 7th breaks it.
        for k in range(6):
            pm.create_vm(VMSpec(name=f"vm{k}"))
        with pytest.raises(MemoryError):
            pm.create_vm(VMSpec(name="vm6"))

    def test_free_mem_accounting(self):
        sim = Simulator(seed=1)
        pm = PhysicalMachine(sim, name="pm1")
        before = pm.free_mem_mb()
        pm.create_vm(VMSpec(name="a"))
        assert pm.free_mem_mb() == pytest.approx(before - 256)

    def test_duplicate_vm_rejected(self):
        sim, pm, _ = make_pm(1)
        with pytest.raises(ValueError):
            pm.create_vm(VMSpec(name="vm0"))

    def test_remove_vm(self):
        sim, pm, _ = make_pm(2)
        vm = pm.remove_vm("vm0")
        assert vm.name == "vm0"
        assert "vm0" not in pm.vms
        with pytest.raises(KeyError):
            pm.remove_vm("vm0")

    def test_double_start_rejected(self):
        sim, pm, _ = make_pm(1)
        pm.start()
        with pytest.raises(RuntimeError):
            pm.start()

    def test_stop_freezes_state(self):
        sim, pm, vms = make_pm(1)
        vms[0].demand.cpu_pct = 50.0
        pm.start()
        sim.run_until(5.0)
        pm.stop()
        frozen = pm.snapshot().vm("vm0").cpu_pct
        vms[0].demand.cpu_pct = 99.0
        sim.run_until(10.0)
        assert pm.snapshot().vm("vm0").cpu_pct == frozen

    def test_invalid_quantum(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PhysicalMachine(sim, quantum=0.0)

    def test_fixed_point_converges_quickly(self):
        # The one-quantum feedback delay settles within ~10 quanta.
        sim, pm, vms = make_pm(2)
        for vm in vms:
            vm.demand.cpu_pct = 100.0
        pm.start()
        sim.run_until(0.5)
        early = pm.snapshot().dom0_cpu_pct
        sim.run_until(20.0)
        late = pm.snapshot().dom0_cpu_pct
        assert early == pytest.approx(late, abs=0.1)
