"""Tests for the SEDF scheduler (the scheduler ablation)."""

from __future__ import annotations

import pytest

from repro.xen import SedfScheduler, SedfVcpu, weighted_water_fill


class TestSedfVcpu:
    def test_utilization(self):
        v = SedfVcpu(name="v", period=0.1, slice_s=0.025)
        assert v.utilization == pytest.approx(0.25)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"period": 0.0, "slice_s": 0.1},
            {"period": 0.1, "slice_s": 0.0},
            {"period": 0.1, "slice_s": 0.2},
            {"period": 0.1, "slice_s": 0.05, "demand_frac": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SedfVcpu(name="v", **kwargs)


class TestAdmissionControl:
    def test_accepts_up_to_capacity(self):
        sched = SedfScheduler(ncpus=1)
        sched.add_vcpu("a", period=0.1, slice_s=0.05)
        sched.add_vcpu("b", period=0.1, slice_s=0.05)

    def test_rejects_overcommit(self):
        sched = SedfScheduler(ncpus=1)
        sched.add_vcpu("a", period=0.1, slice_s=0.08)
        with pytest.raises(ValueError, match="admission"):
            sched.add_vcpu("b", period=0.1, slice_s=0.05)

    def test_duplicate_name(self):
        sched = SedfScheduler()
        sched.add_vcpu("a")
        with pytest.raises(ValueError):
            sched.add_vcpu("a")

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            SedfScheduler(ncpus=0)


class TestAllocation:
    def test_reservation_honoured(self):
        sched = SedfScheduler(ncpus=1)
        sched.add_vcpu("a", period=0.1, slice_s=0.03, demand_frac=1.0)
        got = sched.allocate()
        assert got["a"] == pytest.approx(30.0)

    def test_demand_below_reservation(self):
        sched = SedfScheduler(ncpus=1)
        sched.add_vcpu("a", period=0.1, slice_s=0.08, demand_frac=0.2)
        assert sched.allocate()["a"] == pytest.approx(20.0)

    def test_no_extratime_strands_capacity(self):
        # The ablation point: pure reservations are NOT work-conserving.
        sched = SedfScheduler(ncpus=1)
        sched.add_vcpu("a", period=0.1, slice_s=0.04, demand_frac=1.0)
        sched.add_vcpu("b", period=0.1, slice_s=0.04, demand_frac=0.1)
        got = sched.allocate()
        assert got["a"] == pytest.approx(40.0)  # wants 100, gets 40
        assert got["b"] == pytest.approx(10.0)
        # 50 % of the core idles even though 'a' is starving.
        assert sum(got.values()) == pytest.approx(50.0)

    def test_extratime_consumes_spare(self):
        sched = SedfScheduler(ncpus=1)
        sched.add_vcpu(
            "a", period=0.1, slice_s=0.04, demand_frac=1.0, extratime=True
        )
        sched.add_vcpu("b", period=0.1, slice_s=0.04, demand_frac=0.1)
        got = sched.allocate()
        assert got["a"] == pytest.approx(90.0)
        assert got["b"] == pytest.approx(10.0)

    def test_extratime_split_by_reservation_weight(self):
        sched = SedfScheduler(ncpus=1)
        sched.add_vcpu(
            "big", period=0.1, slice_s=0.04, demand_frac=1.0, extratime=True
        )
        sched.add_vcpu(
            "small", period=0.1, slice_s=0.02, demand_frac=1.0, extratime=True
        )
        got = sched.allocate()
        spare = 100.0 - 40.0 - 20.0
        assert got["big"] - 40.0 == pytest.approx(spare * 2 / 3, abs=0.5)
        assert got["small"] - 20.0 == pytest.approx(spare * 1 / 3, abs=0.5)

    def test_fails_paper_saturation_anchor_without_extratime(self):
        # Credit scheduler fluid limit: 2 saturated guests at ~94.8 each
        # inside 189.6 points.  SEDF with equal half-core reservations
        # on the same budget gives only the reserved 50 % each.
        fluid = weighted_water_fill([100.0, 100.0], [256, 256], 189.6)
        sched = SedfScheduler(ncpus=2)
        sched.add_vcpu("a", period=0.1, slice_s=0.05, demand_frac=1.0)
        sched.add_vcpu("b", period=0.1, slice_s=0.05, demand_frac=1.0)
        got = sched.allocate()
        assert fluid[0] == pytest.approx(94.8, abs=0.1)
        assert got["a"] == pytest.approx(50.0)

    def test_horizon_validation(self):
        sched = SedfScheduler()
        with pytest.raises(ValueError):
            sched.allocate(horizon=0.0)

    def test_consumed_accumulates(self):
        sched = SedfScheduler(ncpus=1)
        v = sched.add_vcpu("a", period=0.1, slice_s=0.05)
        sched.allocate(horizon=2.0)
        assert v.consumed == pytest.approx(1.0)


class TestEdfOrder:
    def test_earliest_deadline_first(self):
        sched = SedfScheduler()
        sched.add_vcpu("slow", period=1.0, slice_s=0.1)
        sched.add_vcpu("fast", period=0.05, slice_s=0.01)
        assert sched.edf_order(now=0.0) == ["fast", "slow"]

    def test_order_shifts_with_time(self):
        sched = SedfScheduler()
        sched.add_vcpu("a", period=0.3, slice_s=0.01)
        sched.add_vcpu("b", period=0.4, slice_s=0.01)
        # At t=0: deadlines 0.3 vs 0.4 -> a first.
        assert sched.edf_order(0.0) == ["a", "b"]
        # At t=0.35: deadlines 0.6 vs 0.4 -> b first.
        assert sched.edf_order(0.35) == ["b", "a"]
