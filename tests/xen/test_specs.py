"""Tests for machine and VM specifications."""

from __future__ import annotations

import pytest

from repro.xen.specs import MachineSpec, VMSpec, paper_machine_spec, paper_vm_spec


class TestMachineSpec:
    def test_paper_defaults(self):
        spec = paper_machine_spec()
        assert spec.cores == 4
        assert spec.cpu_ghz == pytest.approx(2.66)
        assert spec.mem_mb == 2048
        assert spec.disk_gb == 60
        assert spec.nic_mbps == pytest.approx(1000.0)

    def test_cpu_capacity(self):
        assert MachineSpec(cores=4).cpu_capacity_pct == 400.0
        assert MachineSpec(cores=1).cpu_capacity_pct == 100.0

    def test_nic_kbps(self):
        assert MachineSpec(nic_mbps=1000).nic_kbps == pytest.approx(1_000_000)

    @pytest.mark.parametrize(
        "kwargs",
        [{"cores": 0}, {"cores": -1}, {"mem_mb": 0}, {"nic_mbps": 0}],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            MachineSpec(**kwargs)

    def test_frozen(self):
        spec = MachineSpec()
        with pytest.raises(AttributeError):
            spec.cores = 8  # type: ignore[misc]


class TestVMSpec:
    def test_paper_defaults(self):
        spec = paper_vm_spec("vm1")
        assert spec.name == "vm1"
        assert spec.vcpus == 1
        assert spec.mem_mb == 256
        assert spec.weight == 256  # Xen default weight
        assert spec.io_cap_bps == pytest.approx(90.0)

    def test_cpu_capacity_uncapped(self):
        assert VMSpec(name="v").cpu_capacity_pct == 100.0
        assert VMSpec(name="v", vcpus=2).cpu_capacity_pct == 200.0

    def test_cpu_capacity_with_cap(self):
        assert VMSpec(name="v", cap_pct=40.0).cpu_capacity_pct == 40.0
        # A cap above the VCPU limit does not raise capacity.
        assert VMSpec(name="v", cap_pct=150.0).cpu_capacity_pct == 100.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "v", "vcpus": 0},
            {"name": "v", "mem_mb": 0},
            {"name": "v", "weight": 0},
            {"name": "v", "cap_pct": -1},
            {"name": "v", "mem_mb": 64, "os_mem_mb": 128.0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            VMSpec(**kwargs)
