"""Scalar-vs-vectorized parity: both paths must be bitwise identical.

The fast paths (numpy water-fill / credit top-up, the precompiled
monitor sampling plan, the batched event drain) are only admissible
because they reproduce the scalar reference implementations *bit for
bit*.  These tests sweep property-style grids over the numeric kernels
and whole simulated cells, comparing outputs with exact float equality
-- ``pytest.approx`` would hide exactly the bugs this suite exists to
catch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf.cells import MicrobenchCell
from repro.sim import fastpath
from repro.xen.scheduler import (
    VECTOR_MIN_N,
    CreditScheduler,
    _water_fill_scalar,
    _water_fill_vector,
    weighted_water_fill,
)

#: Client counts straddling the dispatch threshold on both sides.
GRID_SIZES = (1, 2, 3, 7, 8, 15, 16, 17, 31, 32, 64, 100)


def _grid_case(n: int, variant: int):
    """One deterministic random water-fill instance."""
    rng = np.random.default_rng(1000 * n + variant)
    limit = (rng.uniform(0.0, 100.0, size=n)).tolist()
    if variant % 3 == 1:
        # Sprinkle exact zeros: inactive clients exercise the active
        # mask bookkeeping.
        for i in range(0, n, 3):
            limit[i] = 0.0
    weights = rng.uniform(0.5, 8.0, size=n).tolist()
    if variant % 2 == 0:
        weights = [float(int(w) + 1) for w in weights]
    capacity = float(rng.uniform(0.0, 1.2) * sum(limit))
    return limit, weights, capacity


class TestWaterFillParity:
    @pytest.mark.parametrize("n", GRID_SIZES)
    @pytest.mark.parametrize("variant", range(4))
    def test_scalar_vector_bitwise_equal(self, n, variant):
        limit, weights, capacity = _grid_case(n, variant)
        scalar = _water_fill_scalar(limit, weights, capacity)
        vector = _water_fill_vector(limit, weights, capacity)
        assert scalar == vector  # exact: bitwise parity is the contract

    @pytest.mark.parametrize(
        "limit,weights,capacity",
        [
            ([0.0] * 20, [1.0] * 20, 50.0),
            ([10.0] * 20, [1.0] * 20, 0.0),
            ([10.0] * 20, [1.0] * 20, 1e6),
            ([5.0, 0.0] * 10, [3.0, 1.0] * 10, 30.0),
            # All clients saturate at the identical fill level.
            ([7.0] * 24, [2.0] * 24, 24 * 7.0),
        ],
    )
    def test_edge_cases_bitwise_equal(self, limit, weights, capacity):
        scalar = _water_fill_scalar(limit, weights, capacity)
        vector = _water_fill_vector(limit, weights, capacity)
        assert scalar == vector

    @pytest.mark.parametrize("n", (VECTOR_MIN_N, VECTOR_MIN_N + 9))
    def test_public_entry_fast_vs_slowpath(self, n):
        rng = np.random.default_rng(n)
        demands = rng.uniform(0.0, 90.0, size=n).tolist()
        weights = [float(w) for w in rng.integers(1, 9, size=n)]
        caps = [0.0 if i % 4 else 40.0 for i in range(n)]
        fast = weighted_water_fill(demands, weights, 300.0, caps)
        with fastpath.force_slowpath():
            slow = weighted_water_fill(demands, weights, 300.0, caps)
        assert fast == slow

    def test_conservation_and_bounds_on_vector_path(self):
        limit, weights, capacity = _grid_case(40, 0)
        granted = _water_fill_vector(limit, weights, capacity)
        assert sum(granted) <= capacity + 1e-9
        assert all(g <= lim + 1e-9 for g, lim in zip(granted, limit))


def _credit_pair(n: int):
    """Two identical schedulers, one per path."""
    pair = []
    for _ in range(2):
        sched = CreditScheduler(ncpus=4)
        rng = np.random.default_rng(n)
        for k in range(n):
            sched.add_vcpu(
                f"v{k}",
                weight=int(rng.integers(64, 512)),
                cap_pct=float(rng.choice((0.0, 25.0, 60.0))),
                demand_frac=float(rng.uniform(0.1, 1.0)),
            )
        pair.append(sched)
    return pair


class TestCreditTopUpParity:
    @pytest.mark.parametrize("n", (VECTOR_MIN_N, 33))
    def test_run_period_bitwise_equal(self, n):
        fast_sched, slow_sched = _credit_pair(n)
        for _ in range(10):
            fast_sched.run_period()
            with fastpath.force_slowpath():
                slow_sched.run_period()
            assert (
                [v.credits for v in fast_sched.vcpus]
                == [v.credits for v in slow_sched.vcpus]
            )
        assert (
            [v.consumed for v in fast_sched.vcpus]
            == [v.consumed for v in slow_sched.vcpus]
        )

    @pytest.mark.parametrize("n", (VECTOR_MIN_N, 24))
    def test_full_run_grants_bitwise_equal(self, n):
        fast_sched, slow_sched = _credit_pair(n)
        fast = fast_sched.run(1.5)
        with fastpath.force_slowpath():
            slow = slow_sched.run(1.5)
        assert fast == slow


class TestCellParity:
    """Whole simulated cells: engine drain + scheduler + monitor plan.

    One cell per benchmark kind covers the monitor's precompiled
    sampling plan (every tool/resource series), the steady-state
    quantum memo, and the batched drain in one assertion: the full
    means dict and the dispatched-event count must match the scalar
    reference run exactly.
    """

    @pytest.mark.parametrize(
        "kind", ("cpu", "mem", "io", "bw", "bw-intra")
    )
    def test_cell_fast_vs_slowpath_bitwise(self, kind):
        def run():
            cell = MicrobenchCell(
                kind=kind, n_vms=2, level=25.0, index=0,
                duration=6.0, seed=42,
            )
            return cell.run()

        fast_value, fast_events = run()
        with fastpath.force_slowpath():
            slow_value, slow_events = run()
        assert fast_value == slow_value
        assert fast_events == slow_events
