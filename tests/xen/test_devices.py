"""Tests for the virtual disk array and physical NIC models."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.xen.calibration import DEFAULT_CALIBRATION
from repro.xen.devices import PhysicalNic, VirtualDiskArray
from repro.xen.specs import MachineSpec


@pytest.fixture()
def disk():
    return VirtualDiskArray(MachineSpec(), DEFAULT_CALIBRATION)


@pytest.fixture()
def nic():
    return PhysicalNic(MachineSpec(), DEFAULT_CALIBRATION)


class TestVirtualDiskArray:
    def test_idle_pm_io_is_floor(self, disk):
        out = disk.arbitrate([])
        assert out.pm_io_bps == pytest.approx(
            DEFAULT_CALIBRATION.pm_io_floor_bps
        )

    def test_amplification_roughly_two(self, disk):
        # Paper Fig. 2(b): PM I/O is slightly more than twice VM I/O.
        out = disk.arbitrate([46.0])
        assert out.granted_bps == pytest.approx([46.0])
        vm_io = 46.0
        overhead = out.pm_io_bps - DEFAULT_CALIBRATION.pm_io_floor_bps
        assert overhead / vm_io == pytest.approx(2.05, abs=0.01)

    def test_multiple_vms_sum(self, disk):
        out = disk.arbitrate([46.0, 46.0, 46.0, 46.0])
        expect = 2.05 * 4 * 46.0 + DEFAULT_CALIBRATION.pm_io_floor_bps
        assert out.pm_io_bps == pytest.approx(expect)

    def test_aggregate_ceiling_enforced_fairly(self):
        spec = MachineSpec(disk_iops_cap=200.0)
        disk = VirtualDiskArray(spec, DEFAULT_CALIBRATION)
        out = disk.arbitrate([90.0, 90.0])
        budget = (200.0 - DEFAULT_CALIBRATION.pm_io_floor_bps) / 2.05
        assert sum(out.granted_bps) == pytest.approx(budget)
        assert out.granted_bps[0] == pytest.approx(out.granted_bps[1])
        assert out.pm_io_bps <= 200.0 + 1e-9

    def test_rejects_negative_demand(self, disk):
        with pytest.raises(ValueError):
            disk.arbitrate([-1.0])

    @given(
        st.lists(st.floats(min_value=0, max_value=90), max_size=6)
    )
    def test_granted_never_exceeds_demand(self, demands):
        disk = VirtualDiskArray(MachineSpec(), DEFAULT_CALIBRATION)
        out = disk.arbitrate(demands)
        for g, d in zip(out.granted_bps, demands):
            assert g <= d + 1e-9
        assert out.pm_io_bps >= DEFAULT_CALIBRATION.pm_io_floor_bps - 1e-9


class TestPhysicalNic:
    def test_idle_pm_bw_is_floor(self, nic):
        out = nic.arbitrate([], 0)
        assert out.pm_bw_kbps == pytest.approx(
            DEFAULT_CALIBRATION.pm_bw_floor_kbps
        )

    def test_single_sender_overhead_is_constant_chatter(self, nic):
        # Paper Fig. 2(d): single-VM overhead ~400 bytes/s (3.2 Kb/s),
        # "negligible" relative to the workload.
        out = nic.arbitrate([1280.0], 1)
        overhead = out.pm_bw_kbps - 1280.0
        expect = (
            DEFAULT_CALIBRATION.pm_bw_chatter_kbps
            + DEFAULT_CALIBRATION.pm_bw_floor_kbps
        )
        assert overhead == pytest.approx(expect, abs=0.01)
        assert overhead / out.pm_bw_kbps < 0.01

    def test_multi_sender_overhead_approaches_three_percent(self, nic):
        # Paper Section IV-B: |PM - sum(VM)| / PM = 3 % for co-located
        # senders.
        total = 4 * 1280.0
        out = nic.arbitrate([1280.0] * 4, 4)
        rel = (out.pm_bw_kbps - total) / out.pm_bw_kbps
        assert 0.015 < rel < 0.035

    def test_overhead_grows_with_sharing(self, nic):
        one = nic.arbitrate([2560.0], 1).pm_bw_kbps
        two = nic.arbitrate([1280.0, 1280.0], 2).pm_bw_kbps
        assert two > one

    def test_line_rate_caps_grants(self):
        spec = MachineSpec(nic_mbps=1.0)  # 1000 Kb/s line rate
        nic = PhysicalNic(spec, DEFAULT_CALIBRATION)
        out = nic.arbitrate([800.0, 800.0], 2)
        assert sum(out.granted_kbps) == pytest.approx(1000.0)
        assert out.granted_kbps[0] == pytest.approx(500.0)
        assert out.pm_bw_kbps <= 1000.0 + 1e-9

    def test_rejects_bad_inputs(self, nic):
        with pytest.raises(ValueError):
            nic.arbitrate([-1.0], 1)
        with pytest.raises(ValueError):
            nic.arbitrate([1.0], -1)

    @given(
        st.lists(st.floats(min_value=0, max_value=5000), max_size=6),
        st.integers(min_value=0, max_value=6),
    )
    def test_pm_bw_at_least_sum_of_grants(self, kbps, senders):
        nic = PhysicalNic(MachineSpec(), DEFAULT_CALIBRATION)
        out = nic.arbitrate(kbps, senders)
        if sum(out.granted_kbps) > 0:
            assert out.pm_bw_kbps >= sum(out.granted_kbps) - 1e-9
