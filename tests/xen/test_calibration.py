"""Tests for the calibration constants and derived response curves.

These encode the paper's anchor values directly -- if a refactor drifts
the model away from the measured numbers, these fail first.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.xen.calibration import DEFAULT_CALIBRATION, XenCalibration


class TestAnchors:
    def test_baselines(self):
        cal = DEFAULT_CALIBRATION
        assert cal.dom0_cpu_base == pytest.approx(16.8)
        assert cal.hyp_cpu_base == pytest.approx(3.0)

    def test_dom0_single_vm_endpoint(self):
        # Paper Fig. 2(a): one VM at 99 % drives Dom0 to 29.5 %.
        cal = DEFAULT_CALIBRATION
        assert cal.dom0_ctl_demand([99.0]) == pytest.approx(29.5, abs=0.1)

    def test_hyp_single_vm_endpoint(self):
        # Paper Fig. 2(a): hypervisor reaches 14 % at 99 % VM CPU.
        cal = DEFAULT_CALIBRATION
        assert cal.hyp_ctl_demand([99.0]) == pytest.approx(14.0, abs=0.1)

    def test_dom0_initial_increase_rate(self):
        # Paper: increase rate starts at 0.01.
        cal = DEFAULT_CALIBRATION
        d1 = cal.dom0_ctl_demand([1.0])
        d0 = cal.dom0_ctl_demand([0.0])
        assert (d1 - d0) == pytest.approx(0.01, abs=0.002)

    def test_hyp_initial_increase_rate(self):
        # Paper: increase rate starts at 0.04.
        cal = DEFAULT_CALIBRATION
        d1 = cal.hyp_ctl_demand([1.0])
        d0 = cal.hyp_ctl_demand([0.0])
        assert (d1 - d0) == pytest.approx(0.04, abs=0.002)

    def test_dom0_terminal_increase_rate_grows(self):
        # Paper: rate grows toward ~0.3 near saturation; we require the
        # terminal slope to be much larger than the initial slope.
        cal = DEFAULT_CALIBRATION
        lo = cal.dom0_ctl_demand([10.0]) - cal.dom0_ctl_demand([9.0])
        hi = cal.dom0_ctl_demand([99.0]) - cal.dom0_ctl_demand([98.0])
        assert hi > 5 * lo
        assert 0.2 < hi < 0.35

    def test_multi_vm_saturation_plateaus(self):
        # Paper Figs. 3(a)/4(a): Dom0 ~23.4 %, hypervisor ~12.0 % at
        # saturation for both 2 VMs (95 % each) and 4 VMs (47 % each).
        cal = DEFAULT_CALIBRATION
        assert cal.dom0_ctl_demand([95.0, 95.0]) == pytest.approx(23.4, abs=0.4)
        assert cal.dom0_ctl_demand([47.0] * 4) == pytest.approx(23.4, abs=0.4)
        assert cal.hyp_ctl_demand([95.0, 95.0]) == pytest.approx(12.0, abs=0.4)
        assert cal.hyp_ctl_demand([47.0] * 4) == pytest.approx(12.0, abs=0.4)

    def test_network_rates(self):
        cal = DEFAULT_CALIBRATION
        assert cal.dom0_net_pct_per_kbps == pytest.approx(0.01)
        # Intra-PM is "5X less" (Fig. 5b).
        ratio = cal.dom0_net_pct_per_kbps / cal.dom0_net_intra_pct_per_kbps
        assert ratio == pytest.approx(5.0)

    def test_io_amplification_near_two(self):
        # Paper: PM I/O "slightly more than twice" VM I/O.
        assert 2.0 < DEFAULT_CALIBRATION.io_amplification < 2.2

    def test_effective_capacity(self):
        # Guests + Dom0 + hypervisor at saturation sum to the paper's
        # delivered capacity: 190 + 23.4 + 12 ~ 225.
        assert DEFAULT_CALIBRATION.effective_capacity_pct == pytest.approx(225.0)

    def test_idle_floors(self):
        cal = DEFAULT_CALIBRATION
        assert cal.pm_io_floor_bps == pytest.approx(18.8)
        # 254 bytes/s = 2.03 Kb/s.
        assert cal.pm_bw_floor_kbps == pytest.approx(254 * 8 / 1000, abs=0.01)


class TestCtlDemandBehaviour:
    def test_empty_guest_list_gives_baseline(self):
        cal = DEFAULT_CALIBRATION
        assert cal.dom0_ctl_demand([]) == pytest.approx(cal.dom0_cpu_base)
        assert cal.hyp_ctl_demand([]) == pytest.approx(cal.hyp_cpu_base)

    def test_idle_guests_cost_almost_nothing(self):
        # Three idle co-located VMs barely move Dom0 (activity-scaled
        # colocation term).
        cal = DEFAULT_CALIBRATION
        d = cal.dom0_ctl_demand([0.3, 0.3, 0.3])
        assert d == pytest.approx(cal.dom0_cpu_base, abs=0.2)

    @given(
        st.lists(
            st.floats(min_value=0, max_value=100), min_size=1, max_size=8
        )
    )
    def test_demand_at_least_baseline(self, granted):
        cal = DEFAULT_CALIBRATION
        assert cal.dom0_ctl_demand(granted) >= cal.dom0_cpu_base - 1e-9
        assert cal.hyp_ctl_demand(granted) >= cal.hyp_cpu_base - 1e-9

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=4),
        st.floats(min_value=0, max_value=10),
    )
    def test_monotone_in_load_for_fixed_n(self, granted, bump):
        # More granted CPU (same VM count) never lowers control demand.
        cal = DEFAULT_CALIBRATION
        bumped = [min(100.0, g + bump) for g in granted]
        assert cal.dom0_ctl_demand(bumped) >= cal.dom0_ctl_demand(granted) - 1e-9


class TestOverrides:
    def test_with_overrides_returns_new_instance(self):
        cal = DEFAULT_CALIBRATION
        hot = cal.with_overrides(dom0_cpu_base=20.0)
        assert hot.dom0_cpu_base == 20.0
        assert cal.dom0_cpu_base == pytest.approx(16.8)
        assert hot is not cal

    def test_rejects_invalid_values(self):
        with pytest.raises(ValueError):
            XenCalibration(dom0_cpu_base=0.0)
        with pytest.raises(ValueError):
            XenCalibration(io_amplification=-1.0)
        with pytest.raises(ValueError):
            XenCalibration(noise_sigma=-0.1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_CALIBRATION.dom0_cpu_base = 1.0  # type: ignore[misc]
