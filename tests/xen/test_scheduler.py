"""Tests for the credit scheduler: fluid limit and discrete engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xen.scheduler import (
    ACCOUNTING_PERIOD,
    CreditScheduler,
    fair_share,
    weighted_water_fill,
)


class TestWaterFill:
    def test_no_contention_grants_demand(self):
        got = weighted_water_fill([10, 20, 30], [1, 1, 1], 100)
        assert got == pytest.approx([10, 20, 30])

    def test_equal_weights_split_equally_under_contention(self):
        got = weighted_water_fill([100, 100], [1, 1], 100)
        assert got == pytest.approx([50, 50])

    def test_weights_bias_the_split(self):
        got = weighted_water_fill([100, 100], [3, 1], 100)
        assert got == pytest.approx([75, 25])

    def test_unused_share_redistributes(self):
        # Client 0 only wants 10; its leftover goes to client 1.
        got = weighted_water_fill([10, 100], [1, 1], 100)
        assert got == pytest.approx([10, 90])

    def test_cap_binds_before_demand(self):
        got = weighted_water_fill([100, 100], [1, 1], 200, caps=[30, 0])
        assert got == pytest.approx([30, 100])

    def test_zero_cap_means_uncapped(self):
        got = weighted_water_fill([80], [1], 100, caps=[0])
        assert got == pytest.approx([80])

    def test_zero_capacity(self):
        assert weighted_water_fill([10, 10], [1, 1], 0) == pytest.approx([0, 0])

    def test_empty_inputs(self):
        assert weighted_water_fill([], [], 100) == []

    def test_paper_saturation_shares(self):
        # After the hypervisor (12) and Dom0 (23.4) are served from the
        # 225-point effective capacity, 2 and 4 saturated guests settle
        # at the paper's 95 % / 47 % points.
        remaining = 225.0 - 12.0 - 23.4
        two = weighted_water_fill([100, 100], [256, 256], remaining)
        assert two == pytest.approx([94.8, 94.8], abs=0.1)
        four = weighted_water_fill([100] * 4, [256] * 4, remaining)
        assert four == pytest.approx([47.4] * 4, abs=0.1)

    @pytest.mark.parametrize(
        "demands,weights,capacity,caps",
        [
            ([1], [1, 2], 10, None),
            ([1, 2], [1], 10, None),
            ([1], [1], -5, None),
            ([-1], [1], 10, None),
            ([1], [0], 10, None),
            ([1, 2], [1, 1], 10, [1]),
        ],
    )
    def test_input_validation(self, demands, weights, capacity, caps):
        with pytest.raises(ValueError):
            weighted_water_fill(demands, weights, capacity, caps)


class TestWaterFillProperties:
    @given(
        st.lists(st.floats(min_value=0, max_value=200), min_size=1, max_size=12),
        st.floats(min_value=0, max_value=500),
    )
    def test_feasibility_and_demand_bounds(self, demands, capacity):
        got = weighted_water_fill(demands, [1.0] * len(demands), capacity)
        assert sum(got) <= capacity + 1e-6
        for g, d in zip(got, demands):
            assert -1e-9 <= g <= d + 1e-9

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=200),
                st.floats(min_value=0.1, max_value=10),
            ),
            min_size=1,
            max_size=10,
        ),
        st.floats(min_value=0, max_value=400),
    )
    def test_work_conservation(self, pairs, capacity):
        demands = [p[0] for p in pairs]
        weights = [p[1] for p in pairs]
        got = weighted_water_fill(demands, weights, capacity)
        # Either all demand is met or capacity is exhausted.
        slack_left = sum(demands) - sum(got)
        cap_left = capacity - sum(got)
        assert slack_left < 1e-6 or cap_left < 1e-6

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=2, max_size=8),
        st.floats(min_value=1, max_value=300),
    )
    def test_max_min_fairness_no_envy(self, demands, capacity):
        # Equal weights: a client granted less than another must have had
        # its demand fully met (no one is starved below a peer's share).
        got = weighted_water_fill(demands, [1.0] * len(demands), capacity)
        for i in range(len(got)):
            for j in range(len(got)):
                if got[i] < got[j] - 1e-6:
                    assert got[i] >= demands[i] - 1e-6

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=8)
    )
    def test_ample_capacity_grants_everything(self, demands):
        got = weighted_water_fill(demands, [1.0] * len(demands), sum(demands) + 1)
        assert got == pytest.approx(demands)


class TestCreditScheduler:
    def test_single_vcpu_gets_demand(self):
        cs = CreditScheduler(ncpus=4)
        cs.add_vcpu("v0", demand_frac=0.6)
        got = cs.run(3.0)
        assert got["v0"] == pytest.approx(60.0, abs=2.0)

    def test_contention_splits_by_weight(self):
        cs = CreditScheduler(ncpus=1)
        cs.add_vcpu("a", weight=256, demand_frac=1.0)
        cs.add_vcpu("b", weight=256, demand_frac=1.0)
        got = cs.run(3.0)
        assert got["a"] == pytest.approx(50.0, abs=5.0)
        assert got["b"] == pytest.approx(50.0, abs=5.0)

    def test_cap_is_enforced(self):
        cs = CreditScheduler(ncpus=4)
        cs.add_vcpu("capped", cap_pct=25.0, demand_frac=1.0)
        got = cs.run(3.0)
        assert got["capped"] == pytest.approx(25.0, abs=2.0)

    def test_work_conserving_with_idle_peer(self):
        cs = CreditScheduler(ncpus=1)
        cs.add_vcpu("busy", demand_frac=1.0)
        cs.add_vcpu("idle", demand_frac=0.1)
        got = cs.run(3.0)
        assert got["idle"] == pytest.approx(10.0, abs=2.0)
        assert got["busy"] == pytest.approx(90.0, abs=4.0)

    def test_matches_fluid_limit_on_paper_scenario(self):
        # 4 saturated single-VCPU guests on ~1.9 schedulable cores: the
        # discrete engine should land near the water-fill split.
        cs = CreditScheduler(ncpus=2)
        for k in range(4):
            cs.add_vcpu(f"v{k}", demand_frac=0.95)
        got = cs.run(6.0)
        fluid = weighted_water_fill([95.0] * 4, [256.0] * 4, 200.0)
        for k in range(4):
            assert got[f"v{k}"] == pytest.approx(fluid[k], abs=6.0)

    def test_duplicate_name_rejected(self):
        cs = CreditScheduler()
        cs.add_vcpu("v")
        with pytest.raises(ValueError):
            cs.add_vcpu("v")

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CreditScheduler(ncpus=0)
        with pytest.raises(ValueError):
            CreditScheduler(slice_s=0.0)
        with pytest.raises(ValueError):
            CreditScheduler(slice_s=ACCOUNTING_PERIOD * 2)

    def test_run_requires_positive_horizon(self):
        cs = CreditScheduler()
        cs.add_vcpu("v")
        with pytest.raises(ValueError):
            cs.run(0.0)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=6
        )
    )
    def test_never_exceeds_capacity_or_demand(self, fracs):
        cs = CreditScheduler(ncpus=2)
        for k, f in enumerate(fracs):
            cs.add_vcpu(f"v{k}", demand_frac=f)
        got = cs.run(1.5)
        assert sum(got.values()) <= 200.0 + 1e-6
        for k, f in enumerate(fracs):
            assert got[f"v{k}"] <= f * 100.0 + 2.0


class TestFairShare:
    def test_splits_equally_without_redistribution(self):
        # The naive ablation baseline deliberately strands unused share.
        got = fair_share([10, 100], 100)
        assert got == pytest.approx([10, 50])

    def test_empty(self):
        assert fair_share([], 100) == []
