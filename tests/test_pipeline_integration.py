"""End-to-end pipeline integration test.

Exercises the whole reproduction stack in one flow at reduced scale:
micro-benchmark training -> model fit -> live RUBiS prediction ->
overhead-aware placement -> hotspot mitigation.  This is the "does the
system hang together" test; per-module behaviour lives in the unit
suites.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    Cluster,
    DeploymentSpec,
    RubisRef,
    VmPlacement,
    build_deployment,
)
from repro.models import (
    MultiVMOverheadModel,
    TrainingConfig,
    error_report,
    gather_training_samples,
    samples_from_report,
)
from repro.monitor import MeasurementScript
from repro.monitor.metrics import vm_utilization_vector
from repro.placement import (
    HotspotDetector,
    MigrationPlanner,
    PlacementRequest,
    Placer,
    VOA,
    VmObservation,
)
from repro.monitor.metrics import ResourceVector
from repro.xen import VMSpec


@pytest.fixture(scope="module")
def trained():
    samples = gather_training_samples(
        TrainingConfig(vm_counts=(1, 2, 4), duration=15.0, warmup=2.0)
    )
    return samples, MultiVMOverheadModel.fit(samples)


class TestFullPipeline:
    def test_train_predict_place_mitigate(self, trained):
        _, model = trained

        # 1. Deploy a RUBiS pair plus a hog via the declarative spec.
        spec = DeploymentSpec(
            pms=("pm1", "pm2"),
            vms=(
                VmPlacement("web", "pm1"),
                VmPlacement("db", "pm2"),
            ),
            rubis=(RubisRef(web="web", db="db", clients=500),),
        )
        dep = build_deployment(spec, seed=99)
        dep.start()
        dep.sim.run_until(3.0)

        # 2. Measure both PMs and score the model's live predictions.
        script = MeasurementScript(dep.cluster.pms["pm1"])
        script.start()
        dep.run(40.0)
        report = script.stop()
        samples = samples_from_report(report)
        pred = model.predict_samples(samples)
        measured = np.array([s.targets["dom0.cpu"] for s in samples])
        rep = error_report(pred["dom0.cpu"], measured)
        assert rep.p90 < 10.0

        # 3. Use the model for an overhead-aware placement decision.
        placer = Placer(["pmA", "pmB"], strategy=VOA, model=model)
        plan = placer.place(
            [
                PlacementRequest(
                    spec=VMSpec(name=f"v{k}"),
                    demand=ResourceVector(cpu=70.0, mem=128.0),
                )
                for k in range(4)
            ]
        )
        assert len(set(plan.assignment.values())) == 2  # split, not packed

        # 4. Detect and mitigate a hotspot on the live cluster.
        cluster = dep.cluster
        for k in range(3):
            hog = cluster.place_vm(VMSpec(name=f"hog{k}"), "pm1")
            hog.demand.cpu_pct = 70.0
        dep.run(3.0)
        detector = HotspotDetector(model, k=2, threshold_frac=0.85)
        planner = MigrationPlanner(model, target_frac=0.8)

        def observe(pm_name):
            pm = cluster.pms[pm_name]
            snap = pm.snapshot()
            return [
                VmObservation(
                    name=n,
                    demand=vm_utilization_vector(snap.vm(n)),
                    mem_mb=pm.vms[n].spec.mem_mb,
                )
                for n in pm.vms
            ]

        hot = False
        for _ in range(3):
            dep.run(1.0)
            hot = detector.observe("pm1", observe("pm1"))
        assert hot
        moves = planner.plan(
            "pm1", {"pm1": observe("pm1"), "pm2": observe("pm2")}
        )
        assert moves
        for mv in moves:
            cluster.migrate_vm(mv.vm, mv.dst)
        dep.run(3.0)
        # Mitigation helped: predicted PM1 load dropped.
        assert detector.predicted_pm_cpu(observe("pm1")) < detector.threshold * 1.2
