"""Seed-parameterized fault-injection determinism checks.

CI runs this module twice with different ``REPRO_FAULT_SEED`` values
(see .github/workflows/ci.yml); locally it runs once with the default.
Every property asserted here must hold for *any* seed: the fault layer
draws from its own named RNG streams, so runs are reproducible and
fault draws never leak into workload or scheduler streams.
"""

from __future__ import annotations

import os

import numpy as np

from repro.cluster import Cluster
from repro.faults import FaultConfig, FaultInjector, SampleFaults, build_schedule
from repro.faults.sampling import SAMPLE_DROP
from repro.sim import Simulator
from repro.workloads import CpuHog
from repro.xen import VMSpec

SEED = int(os.environ.get("REPRO_FAULT_SEED", "2015"))

CONFIG = FaultConfig(
    pm_crash_rate=1.0 / 50.0,
    pm_reboot_s=8.0,
    vm_stall_rate=1.0 / 70.0,
    vm_stall_s=3.0,
    nic_degrade_rate=1.0 / 40.0,
    nic_degrade_s=6.0,
)


def make_cluster(seed):
    sim = Simulator(seed=seed)
    cluster = Cluster(sim)
    for name in ("pm1", "pm2"):
        pm = cluster.create_pm(name)
        vm = cluster.place_vm(VMSpec(name=f"vm-{name}"), name)
        CpuHog(40.0).attach(vm)
        assert pm.vms
    cluster.start()
    return sim, cluster


class TestSeedSweep:
    def test_schedule_deterministic(self):
        def events():
            sim = Simulator(seed=SEED)
            return build_schedule(
                CONFIG, sim.rng, horizon=200.0,
                pm_names=("pm1", "pm2"), vm_names=("vm1",),
            )

        assert events() == events()

    def test_injector_run_deterministic(self):
        def one():
            sim, cluster = make_cluster(SEED)
            injector = FaultInjector(cluster, CONFIG, horizon=90.0)
            injector.arm()
            sim.run_until(90.0)
            return (
                [(e.time, e.kind, e.target) for e in injector.applied],
                injector.applied_by_kind(),
            )

        assert one() == one()

    def test_injector_seed_sensitivity(self):
        sim_a, cluster_a = make_cluster(SEED)
        inj_a = FaultInjector(cluster_a, CONFIG, horizon=90.0)
        sim_b, cluster_b = make_cluster(SEED + 1)
        inj_b = FaultInjector(cluster_b, CONFIG, horizon=90.0)
        assert inj_a.schedule != inj_b.schedule

    def test_sample_faults_deterministic(self):
        def mask():
            faults = SampleFaults(
                FaultConfig.sampling_only(dropout=0.15, outliers=0.1),
                np.random.default_rng(SEED),
            )
            return [faults.next_sample() for _ in range(200)]

        a, b = mask(), mask()
        assert a == b
        dropped = [tick == SAMPLE_DROP for tick in a]
        assert any(dropped) and not all(dropped)
