"""Worker-fault planning and the FaultableCell wrapper."""

from __future__ import annotations

import pytest

from repro.faults.workers import (
    WORKER_KILL,
    WORKER_STALL,
    FaultableCell,
    WorkerFault,
    plan_worker_faults,
)
from repro.perf.cells import MicrobenchCell


def _cell(**overrides) -> MicrobenchCell:
    kwargs = dict(
        kind="cpu", n_vms=1, level=25.0, index=0, duration=4.0, seed=42
    )
    kwargs.update(overrides)
    return MicrobenchCell(**kwargs)


class TestWorkerFault:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            WorkerFault(index=0, kind="meteor")

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            WorkerFault(index=-1, kind=WORKER_KILL)


class TestPlanning:
    def test_plan_is_deterministic_per_seed(self):
        a = plan_worker_faults(50, seed=7, kill_rate=0.2, stall_rate=0.2)
        b = plan_worker_faults(50, seed=7, kill_rate=0.2, stall_rate=0.2)
        assert a == b
        assert a != plan_worker_faults(
            50, seed=8, kill_rate=0.2, stall_rate=0.2
        )

    def test_kinds_draw_from_independent_streams(self):
        # Adding stalls must not move which cells get killed.
        kills_only = plan_worker_faults(80, seed=3, kill_rate=0.15)
        both = plan_worker_faults(
            80, seed=3, kill_rate=0.15, stall_rate=0.15
        )
        killed = {f.index for f in kills_only if f.kind == WORKER_KILL}
        killed_both = {f.index for f in both if f.kind == WORKER_KILL}
        assert killed <= killed_both  # kill overrides stall, never drops
        assert killed == {
            i for i in killed_both if i in killed
        }

    def test_zero_rates_draw_nothing(self):
        assert plan_worker_faults(100, seed=1) == []

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            plan_worker_faults(10, seed=1, kill_rate=1.5)
        with pytest.raises(ValueError):
            plan_worker_faults(-1, seed=1)

    def test_stall_seconds_attached_to_stalls_only(self):
        plan = plan_worker_faults(
            60, seed=5, kill_rate=0.1, stall_rate=0.3, stall_s=4.5
        )
        assert plan  # rates high enough to draw victims
        for fault in plan:
            if fault.kind == WORKER_STALL:
                assert fault.stall_s == 4.5
            else:
                assert fault.stall_s == 0.0


class TestFaultableCell:
    def test_config_wraps_inner_and_fault(self, tmp_path):
        cell = FaultableCell(
            inner=_cell(), marker_dir=str(tmp_path), fault=WORKER_STALL
        )
        cfg = cell.config()
        assert cfg["cell"] == "faultable"
        assert cfg["fault"] == WORKER_STALL
        assert cfg["inner"] == _cell().config()

    def test_label_names_the_fault(self, tmp_path):
        clean = FaultableCell(inner=_cell(), marker_dir=str(tmp_path))
        stalled = FaultableCell(
            inner=_cell(), marker_dir=str(tmp_path), fault=WORKER_STALL
        )
        assert clean.label() == _cell().label()
        assert stalled.label().endswith("+stall")

    def test_clean_passthrough_matches_inner(self, tmp_path):
        cell = FaultableCell(inner=_cell(), marker_dir=str(tmp_path))
        assert cell.run() == _cell().run()

    def test_stall_fires_once_then_runs_clean(self, tmp_path):
        cell = FaultableCell(
            inner=_cell(),
            marker_dir=str(tmp_path),
            fault=WORKER_STALL,
            stall_s=0.01,
        )
        first = cell.run()  # arms the marker, stalls briefly
        assert list(tmp_path.glob("*.tripped"))
        second = cell.run()  # marker present: no stall, same output
        assert second == first

    def test_tag_distinguishes_marker_identity(self, tmp_path):
        a = FaultableCell(
            inner=_cell(), marker_dir=str(tmp_path),
            fault=WORKER_STALL, stall_s=0.01, tag="a",
        )
        b = FaultableCell(
            inner=_cell(), marker_dir=str(tmp_path),
            fault=WORKER_STALL, stall_s=0.01, tag="b",
        )
        a.run()
        b.run()
        assert len(list(tmp_path.glob("*.tripped"))) == 2


class TestChunkedDispatch:
    """Once-marker semantics under ``--chunk``: a faulted cell inside a
    chunk must fire exactly once even though the supervisor retries the
    failed chunk by re-dispatching its cells as singletons."""

    @pytest.fixture(autouse=True)
    def _clean_pool(self):
        from repro.perf import pool as warmpool

        yield
        warmpool.shutdown_pool()

    def _run_chunked(self, tmp_path, fault_index, fault_kind, **fault_kw):
        from repro.perf import supervisor as _supervisor
        from repro.perf.executor import run_cells
        from repro.perf.supervisor import SupervisorConfig

        inners = [_cell(index=i, duration=2.0) for i in range(4)]
        expected = [cell.run()[0] for cell in inners]
        cells = [
            FaultableCell(
                inner=inner,
                marker_dir=str(tmp_path),
                fault=fault_kind if i == fault_index else None,
                tag=f"chunked{i}",
                **fault_kw,
            )
            for i, inner in enumerate(inners)
        ]
        _supervisor.reset_stats()
        got = run_cells(
            cells,
            jobs=2,
            chunk=2,
            supervisor=SupervisorConfig(deadline_s=60.0, max_attempts=3),
        )
        return expected, got, _supervisor.stats()

    def test_kill_in_chunk_fires_once_and_results_match(self, tmp_path):
        expected, got, stats = self._run_chunked(
            tmp_path, 1, WORKER_KILL
        )
        # The chunk containing the killed cell died with the worker; on
        # retry its cells are re-run, the marker suppresses a second
        # kill, and every output equals the clean reference.
        assert got == expected
        assert len(list(tmp_path.glob("*.tripped"))) == 1
        assert stats.retries >= 1

    def test_stall_in_chunk_fires_once_and_results_match(self, tmp_path):
        expected, got, _stats = self._run_chunked(
            tmp_path, 2, WORKER_STALL, stall_s=0.05
        )
        assert got == expected
        assert len(list(tmp_path.glob("*.tripped"))) == 1
