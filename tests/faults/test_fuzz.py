"""Chaos fuzzer: plan sampling, oracles, shrinking and the campaign."""

from __future__ import annotations

import dataclasses

import pytest

from repro.faults.config import FaultConfig
from repro.faults.fuzz import (
    SCORECARD_NAME,
    FuzzConfig,
    _make_judge,
    default_model,
    execute_plan,
    plan_coverage,
    run_campaign,
    sample_plan,
)
from repro.faults.oracles import (
    ORACLE_NAMES,
    PlacementOutcome,
    RunContext,
    WorkersOutcome,
    check_all,
    failures,
)
from repro.faults.plan import (
    PLANTED_VM_LEAK,
    FaultPlan,
    PlacementPlan,
    WorkerPlan,
)
from repro.faults.schedule import FaultEvent
from repro.faults.shrink import candidates, shrink_plan
from repro.perf import pool as warmpool


@pytest.fixture(autouse=True)
def _clean_pool():
    yield
    warmpool.shutdown_pool()


def _placement(**overrides) -> PlacementPlan:
    kwargs = dict(
        seed=5,
        duration_s=30.0,
        train_duration=20.0,
        migration_failure_prob=0.0,
        pm_count=3,
        hot_vms=4,
        bg_vms=2,
        config=FaultConfig(),
        events=(),
    )
    kwargs.update(overrides)
    return PlacementPlan(**kwargs)


def _placement_outcome(**overrides) -> PlacementOutcome:
    kwargs = dict(
        horizon=30.0,
        guests_before=6,
        guests_after=6,
        stats={
            "submitted": 4, "succeeded": 3, "rollbacks": 1,
            "retries": 1, "abandoned": 1, "vetoed": 0,
        },
        pending=0,
        applied_events=0,
        skipped_events=0,
        breaker_transitions=(),
        breaker_opened=0,
        breaker_cooldown_s=20.0,
        rounds=15,
        missing_observations=0,
        events=(),
        digest="d" * 64,
        draw_counts={"profile-clients": 10},
    )
    kwargs.update(overrides)
    return PlacementOutcome(**kwargs)


def _ctx(**overrides) -> RunContext:
    kwargs = dict(plan=FaultPlan(seed=1, placement=_placement()))
    kwargs.update(overrides)
    return RunContext(**kwargs)


class TestSamplePlan:
    def test_pure_function_of_seed_and_index(self):
        cfg = FuzzConfig(seed=7, runs=4)
        for i in range(3):
            assert (
                sample_plan(cfg, i).to_json()
                == sample_plan(cfg, i).to_json()
            )
        assert sample_plan(cfg, 1) != sample_plan(cfg, 2)
        other = FuzzConfig(seed=8, runs=4)
        assert sample_plan(cfg, 1) != sample_plan(other, 1)

    def test_run_zero_pinned_to_null_plan(self):
        plan = sample_plan(FuzzConfig(seed=123), 0)
        assert plan.is_null()
        assert plan.surfaces() == ("placement",)
        assert "null" in plan_coverage(plan)

    def test_every_plan_drives_a_surface(self):
        cfg = FuzzConfig(
            seed=3, placement_prob=0.0, serve_prob=0.0, worker_prob=0.0
        )
        assert sample_plan(cfg, 1).surfaces() == ("placement",)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            sample_plan(FuzzConfig(), -1)


class TestCoverage:
    def test_buckets_from_plan_shape(self):
        plan = FaultPlan(
            seed=1,
            planted=PLANTED_VM_LEAK,
            placement=_placement(
                migration_failure_prob=0.3,
                events=(FaultEvent(5.0, "pm_crash", "pm1", 4.0),),
            ),
            workers=WorkerPlan(
                seed=2, n_cells=4, kill_rate=0.2, stall_rate=0.0,
                stall_s=0.0, jobs=2, chunk=2,
            ),
        )
        assert plan_coverage(plan) == [
            "machine:pm_crash",
            "migration:mid-flight",
            "planted:vm_leak",
            "worker:kill",
        ]


class TestOracles:
    def test_inapplicable_oracles_stay_silent(self):
        ctx = _ctx(
            plan=FaultPlan(
                seed=1,
                workers=WorkerPlan(
                    seed=2, n_cells=2, kill_rate=0.0, stall_rate=0.0,
                    stall_s=0.0, jobs=1, chunk=0,
                ),
            ),
            workers=WorkersOutcome(
                expected=(1, 2), got=(1, 2), planned=(),
                markers=0, retries=0, kills=0, stalls=0,
            ),
        )
        verdicts = check_all(ctx)
        assert [v.name for v in verdicts] == ["worker-once"]
        assert not failures(verdicts)

    def test_vm_conservation_catches_a_leak(self):
        ctx = _ctx(placement=_placement_outcome(guests_after=5))
        bad = failures(check_all(ctx))
        assert [v.name for v in bad] == ["vm-conservation"]
        assert "5/6" in bad[0].detail

    def test_move_accounting_catches_a_lost_move(self):
        ctx = _ctx(
            placement=_placement_outcome(
                stats={
                    "submitted": 5, "succeeded": 3, "rollbacks": 0,
                    "retries": 0, "abandoned": 1, "vetoed": 0,
                },
                pending=0,
            )
        )
        assert [v.name for v in failures(check_all(ctx))] == [
            "move-accounting"
        ]

    def test_breaker_monotonicity_violations(self):
        # Time regression, shrunken window and a wrong opened counter.
        ctx = _ctx(
            placement=_placement_outcome(
                breaker_transitions=(
                    (10.0, "pm1", 30.0),
                    (6.0, "pm1", 26.0),
                ),
                breaker_opened=3,
            )
        )
        bad = failures(check_all(ctx))
        assert [v.name for v in bad] == ["breaker-monotonic"]
        assert "time regressed" in bad[0].detail
        assert "opened counter 3" in bad[0].detail

    def test_breaker_window_must_match_cooldown(self):
        ctx = _ctx(
            placement=_placement_outcome(
                breaker_transitions=((10.0, "pm1", 25.0),),
                breaker_opened=1,
            )
        )
        bad = failures(check_all(ctx))
        assert [v.name for v in bad] == ["breaker-monotonic"]
        assert "cooldown" in bad[0].detail

    def test_schedule_window_catches_unsorted_events(self):
        events = (
            FaultEvent(20.0, "pm_crash", "pm1", 2.0),
            FaultEvent(5.0, "vm_stall", "hot0", 2.0),
        )
        ctx = _ctx(placement=_placement_outcome(events=events))
        bad = failures(check_all(ctx))
        assert [v.name for v in bad] == ["schedule-window"]
        assert "unsorted" in bad[0].detail

    def test_replay_determinism_compares_digest_and_draws(self):
        out = _placement_outcome()
        diverged = _placement_outcome(
            digest="e" * 64, draw_counts={"profile-clients": 11}
        )
        ctx = _ctx(placement=out, placement_repeat=diverged)
        bad = failures(check_all(ctx))
        assert [v.name for v in bad] == ["replay-determinism"]
        assert "profile-clients" in bad[0].detail

    def test_zero_fault_identity_only_judges_null_plans(self):
        out = _placement_outcome()
        faulty_plan = FaultPlan(
            seed=1, placement=_placement(migration_failure_prob=0.2)
        )
        silent = RunContext(
            plan=faulty_plan, placement=out,
            placement_bare_digest="f" * 64,
        )
        assert "zero-fault-identity" not in [
            v.name for v in check_all(silent)
        ]
        judged = _ctx(placement=out, placement_bare_digest="f" * 64)
        assert [v.name for v in failures(check_all(judged))] == [
            "zero-fault-identity"
        ]

    def test_worker_once_requires_markers_and_matching_results(self):
        ctx = _ctx(
            workers=WorkersOutcome(
                expected=(1, 2), got=(1, 3),
                planned=((0, "kill"),), markers=2, retries=0,
                kills=1, stalls=0,
            )
        )
        bad = failures(check_all(ctx))
        assert [v.name for v in bad] == ["worker-once"]
        assert "2 once-marker(s)" in bad[0].detail
        assert "retr" in bad[0].detail

    def test_oracle_names_cover_every_oracle(self):
        assert len(ORACLE_NAMES) == 11
        assert len(set(ORACLE_NAMES)) == 11


class TestShrinkMechanics:
    def _full_plan(self) -> FaultPlan:
        return FaultPlan(
            seed=9,
            placement=_placement(
                migration_failure_prob=0.15,
                events=(
                    FaultEvent(5.0, "pm_crash", "pm1", 4.0),
                    FaultEvent(8.0, "vm_stall", "hot0", 2.0),
                ),
            ),
            workers=WorkerPlan(
                seed=2, n_cells=6, kill_rate=0.2, stall_rate=0.25,
                stall_s=0.2, jobs=2, chunk=2,
            ),
        )

    def test_biggest_cuts_come_first(self):
        names = [name for name, _cand in candidates(self._full_plan())]
        assert names[0] == "drop-workers"
        assert "drop-placement" in names
        # dropping the last remaining surface is never offered
        only_placement = FaultPlan(seed=9, placement=_placement())
        solo = [name for name, _cand in candidates(only_placement)]
        assert "drop-placement" not in solo

    def test_always_failing_judge_reaches_a_fixpoint(self):
        result = shrink_plan(
            self._full_plan(), ["vm-conservation"],
            lambda _plan: ["vm-conservation"],
        )
        final = result.min_plan
        assert final.workers is None
        assert final.placement is not None
        assert final.placement.events == ()
        assert not final.placement.migration_failure_prob > 0.0
        assert final.placement.pm_count == 2
        # fixpoint: no remaining transform produces a new candidate
        assert not list(candidates(final))

    def test_never_failing_judge_keeps_the_plan(self):
        result = shrink_plan(
            self._full_plan(), ["vm-conservation"], lambda _plan: []
        )
        assert result.min_plan == self._full_plan()
        assert result.steps == ()

    def test_judge_must_chase_the_same_oracle(self):
        # A candidate failing a *different* oracle is not accepted.
        result = shrink_plan(
            self._full_plan(), ["vm-conservation"],
            lambda _plan: ["worker-once"],
        )
        assert result.min_plan == self._full_plan()

    def test_budget_bounds_executions(self):
        result = shrink_plan(
            self._full_plan(), ["vm-conservation"],
            lambda _plan: ["vm-conservation"], budget=3,
        )
        assert result.executions <= 3

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            shrink_plan(self._full_plan(), [], lambda _plan: [])
        with pytest.raises(ValueError):
            shrink_plan(
                self._full_plan(), ["x"], lambda _plan: [], budget=0
            )


class TestExecutionAndCampaign:
    def test_planted_leak_detected_and_shrunk(self, tmp_path):
        plan = FaultPlan(
            seed=21,
            planted=PLANTED_VM_LEAK,
            placement=_placement(duration_s=30.0),
        )
        model = default_model(plan.placement.train_duration)
        _ctx_out, verdicts = execute_plan(
            plan, workdir=tmp_path / "run", model=model,
            check_determinism=False,
        )
        bad = failures(verdicts)
        assert [v.name for v in bad] == ["vm-conservation"]

        judge = _make_judge(model, tmp_path / "shrink")
        result = shrink_plan(plan, ["vm-conservation"], judge)
        final = result.min_plan
        # The planted marker is untouchable, so the minimum keeps the
        # placement surface and still reproduces the leak.
        assert final.planted == PLANTED_VM_LEAK
        assert final.placement.duration_s == 15.0
        assert final.placement.pm_count == 2
        assert judge(final) == ["vm-conservation"]

    def test_campaign_scorecard_is_byte_reproducible(self, tmp_path):
        cfg = FuzzConfig(seed=5, runs=1)
        first = run_campaign(cfg, tmp_path / "a")
        second = run_campaign(cfg, tmp_path / "b")
        assert first == second
        assert first["all_passed"] is True
        assert first["coverage"].get("null") == 1
        card_a = (tmp_path / "a" / SCORECARD_NAME).read_bytes()
        card_b = (tmp_path / "b" / SCORECARD_NAME).read_bytes()
        assert card_a == card_b
        plan_a = (tmp_path / "a" / "plans" / "run-0000.json").read_bytes()
        plan_b = (tmp_path / "b" / "plans" / "run-0000.json").read_bytes()
        assert plan_a == plan_b
        # work directories are scenario-scoped and cleaned up
        assert not (tmp_path / "a" / "work").exists()

    def test_planted_campaign_writes_min_repro(self, tmp_path, monkeypatch):
        cfg = FuzzConfig(seed=21, runs=1, check_determinism=False)
        planted = FaultPlan(
            seed=21,
            planted=PLANTED_VM_LEAK,
            placement=_placement(duration_s=30.0),
        )
        monkeypatch.setattr(
            "repro.faults.fuzz.sample_plan",
            lambda _cfg, _index: planted,
        )
        scorecard = run_campaign(cfg, tmp_path / "camp")
        assert scorecard["all_passed"] is False
        [violation] = scorecard["violations"]
        assert violation["failed"][0]["oracle"] == "vm-conservation"
        min_path = tmp_path / "camp" / violation["min_plan"]
        assert min_path.is_file()
        from repro.faults.plan import load_plan

        min_plan = load_plan(min_path)
        assert min_plan.planted == PLANTED_VM_LEAK
        assert min_plan.placement.pm_count == 2


class TestFuzzConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FuzzConfig(runs=0)
        with pytest.raises(ValueError):
            FuzzConfig(placement_prob=1.5)
        with pytest.raises(ValueError):
            FuzzConfig(train_duration=0.0)

    def test_frozen(self):
        cfg = FuzzConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.runs = 2
