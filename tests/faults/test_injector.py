"""Tests for fault application against a live cluster."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.faults import (
    KIND_NIC_DEGRADE,
    KIND_PM_CRASH,
    KIND_VM_CRASH,
    KIND_VM_STALL,
    FaultConfig,
    FaultEvent,
    FaultInjector,
)
from repro.sim import Simulator
from repro.workloads import CpuHog
from repro.xen import VMSpec


def make_cluster(seed=23):
    sim = Simulator(seed=seed)
    cl = Cluster(sim)
    cl.create_pm("pm1")
    cl.create_pm("pm2")
    vm = cl.place_vm(VMSpec(name="vm1"), "pm1")
    CpuHog(50.0).attach(vm)
    cl.place_vm(VMSpec(name="vm2"), "pm2")
    cl.start()
    return cl


def inject(cl, events, horizon=60.0):
    inj = FaultInjector(
        cl, FaultConfig(), horizon=horizon, schedule=events
    )
    inj.arm()
    return inj


class TestFaultInjector:
    def test_pm_crash_and_reboot(self):
        cl = make_cluster()
        pm = cl.pms["pm1"]
        inject(cl, [FaultEvent(5.0, KIND_PM_CRASH, "pm1", 10.0)])
        cl.run(6.0)
        assert pm.failed
        snap = pm.snapshot()
        assert snap.pm_cpu_pct == 0.0
        assert snap.dom0_cpu_pct == 0.0
        cl.run(10.0)  # past t=15: rebooted
        assert not pm.failed
        assert pm.snapshot().pm_cpu_pct > 0.0

    def test_vm_stall_zeroes_demand_then_recovers(self):
        cl = make_cluster()
        vm = cl.find_vm("vm1")
        inject(cl, [FaultEvent(5.0, KIND_VM_STALL, "vm1", 4.0)])
        cl.run(6.0)
        assert vm.stalled
        assert vm.cpu_demand_total == 0.0
        cl.run(4.0)
        assert not vm.stalled
        assert vm.cpu_demand_total > 0.0

    def test_vm_crash_resets_demand_state(self):
        cl = make_cluster()
        cl.run(3.0)
        inject(cl, [FaultEvent(2.0, KIND_VM_CRASH, "vm1", 5.0)])
        cl.run(3.0)
        assert cl.find_vm("vm1").stalled

    def test_nic_degradation_applies_and_reverts(self):
        cl = make_cluster()
        nic = cl.pms["pm1"].nic
        inject(cl, [FaultEvent(2.0, KIND_NIC_DEGRADE, "pm1", 6.0)])
        cl.run(3.0)
        assert nic.degraded
        cl.run(6.0)
        assert not nic.degraded

    def test_redundant_fault_skipped(self):
        cl = make_cluster()
        inj = inject(
            cl,
            [
                FaultEvent(2.0, KIND_PM_CRASH, "pm1", 20.0),
                FaultEvent(4.0, KIND_PM_CRASH, "pm1", 20.0),
            ],
        )
        cl.run(6.0)
        assert len(inj.applied) == 1
        assert len(inj.skipped) == 1

    def test_unresolvable_target_skipped(self):
        cl = make_cluster()
        inj = inject(cl, [FaultEvent(2.0, KIND_VM_STALL, "ghost", 5.0)])
        cl.run(3.0)
        assert inj.applied == []
        assert len(inj.skipped) == 1

    def test_stall_follows_migrated_vm(self):
        cl = make_cluster()
        inj = inject(cl, [FaultEvent(5.0, KIND_VM_STALL, "vm1", 4.0)])
        cl.run(2.0)
        cl.migrate_vm("vm1", "pm2")
        cl.run(4.0)
        assert cl.find_vm("vm1").stalled
        assert cl.pm_of("vm1").name == "pm2"
        assert len(inj.applied) == 1

    def test_arm_twice_rejected(self):
        cl = make_cluster()
        inj = inject(cl, [])
        with pytest.raises(RuntimeError):
            inj.arm()

    def test_monitor_gap_during_pm_outage(self):
        from repro.monitor import ClusterMonitor

        cl = make_cluster()
        inject(cl, [FaultEvent(5.0, KIND_PM_CRASH, "pm1", 6.0)])
        mon = ClusterMonitor(cl)
        reports = mon.run(20.0)
        assert mon.gap_counts()["pm1"] > 0
        assert mon.gap_counts()["pm2"] == 0
        rep = reports["pm1"]
        assert rep.validity is not None
        assert rep.n_gaps() == mon.gap_counts()["pm1"]
        # Lengths stay aligned with the healthy PM.
        assert len(rep.series("dom0", "cpu").times) == len(
            reports["pm2"].series("dom0", "cpu").times
        )

    def test_generated_schedule_determinism(self):
        def run_once():
            cl = make_cluster(seed=31)
            inj = FaultInjector(
                cl,
                FaultConfig(
                    pm_crash_rate=0.02,
                    vm_stall_rate=0.02,
                    nic_degrade_rate=0.02,
                ),
                horizon=80.0,
            )
            inj.arm()
            cl.run(80.0)
            return [
                (ev.time, ev.kind, ev.target) for ev in inj.applied
            ]

        assert run_once() == run_once()
