"""Tests for the serve-path delivery-fault streams."""

from __future__ import annotations

import math

import pytest

from repro.faults.service import (
    Delivery,
    ServiceFaultConfig,
    ServiceFaults,
    stream_name,
)
from repro.sim.rng import RngRegistry


def _sample(seq: int):
    x = (0.1 + 0.01 * seq, 0.2, 0.3, 0.4)
    y = {"dom0.cpu": 0.5 + 0.01 * seq, "hyp.cpu": 0.25}
    return seq, x, y


def _run(config: ServiceFaultConfig, n: int = 400, seed: int = 0):
    faults = ServiceFaults(config, RngRegistry(seed)(stream_name("pm00")))
    out = []
    for tick in range(n):
        seq, x, y = _sample(tick)
        out.extend(faults.due(tick))
        out.extend(faults.offer(seq, tick, x, y))
    return faults, out


class TestNullConfig:
    def test_null_passes_everything_through_untouched(self):
        faults, out = _run(ServiceFaultConfig())
        assert len(out) == 400
        assert [d.seq for d in out] == list(range(400))
        assert faults.lost == faults.duplicated == faults.reordered == 0
        assert faults.stuck == faults.corrupted == 0

    def test_null_draws_nothing(self):
        rng_a = RngRegistry(7)(stream_name("pm00"))
        ServiceFaults(ServiceFaultConfig(), rng_a)
        faults = ServiceFaults(ServiceFaultConfig(), rng_a)
        for tick in range(50):
            seq, x, y = _sample(tick)
            faults.offer(seq, tick, x, y)
        # The stream was never consumed: a fresh registry draw matches.
        rng_b = RngRegistry(7)(stream_name("pm00"))
        assert rng_a.random() == rng_b.random()  # repro: noqa[REP004] stream alignment is the property under test

    def test_faulty_flag(self):
        assert not ServiceFaultConfig().faulty()
        assert ServiceFaultConfig(loss_prob=0.1).faulty()
        assert ServiceFaultConfig(stuck_prob=0.1).faulty()


class TestFaultClasses:
    def test_loss_bursts_drop_samples(self):
        faults, out = _run(ServiceFaultConfig(loss_prob=0.05,
                                              loss_burst_mean=4.0))
        assert faults.lost > 0
        assert len(out) == 400 - faults.lost

    def test_duplication_delivers_twice_same_tick(self):
        faults, out = _run(ServiceFaultConfig(dup_prob=0.2))
        assert faults.duplicated > 0
        assert len(out) == 400 + faults.duplicated
        seqs = [d.seq for d in out]
        dup_seq = next(s for s in seqs if seqs.count(s) == 2)
        pair = [d for d in out if d.seq == dup_seq]
        assert pair[0] == pair[1]

    def test_reordering_delays_delivery(self):
        faults, out = _run(ServiceFaultConfig(reorder_prob=0.2,
                                              reorder_delay_mean=3.0))
        assert faults.reordered > 0
        late = [d for d in out if d.tick > d.seq]
        assert late  # delayed deliveries surfaced via due()
        # Every non-pending sample eventually delivered exactly once.
        assert len(out) + faults.pending() == 400

    def test_stuck_counter_freezes_values(self):
        faults, out = _run(ServiceFaultConfig(stuck_prob=0.05,
                                              stuck_burst_mean=6.0))
        assert faults.stuck > 0
        by_seq = {d.seq: d for d in out}
        frozen = [
            d for d in out
            if d.y["dom0.cpu"] != 0.5 + 0.01 * d.seq
        ]
        # Stuck samples carry fresh seqs but stale values.
        assert len(frozen) == faults.stuck
        assert all(by_seq[d.seq] is d for d in frozen)

    def test_corruption_produces_quarantinable_garbage(self):
        faults, out = _run(ServiceFaultConfig(corrupt_prob=0.05,
                                              corrupt_burst_mean=3.0))
        assert faults.corrupted > 0
        garbage = [d for d in out if math.isnan(d.x[0])]
        assert len(garbage) == faults.corrupted
        assert all(max(d.y.values()) >= 1.0e12 for d in garbage)


class TestDeterminism:
    def test_same_stream_same_faults(self):
        cfg = ServiceFaultConfig(loss_prob=0.05, dup_prob=0.1,
                                 reorder_prob=0.1, stuck_prob=0.02,
                                 corrupt_prob=0.02)
        _, out_a = _run(cfg, seed=3)
        _, out_b = _run(cfg, seed=3)
        assert out_a == out_b

    def test_named_streams_are_independent_per_pm(self):
        cfg = ServiceFaultConfig(loss_prob=0.1)
        registry = RngRegistry(0)
        a = ServiceFaults(cfg, registry(stream_name("pm00")))
        b = ServiceFaults(cfg, registry(stream_name("pm01")))
        outcomes_a = [len(a.offer(t, t, (0.1,), {"y": 0.1}))
                      for t in range(100)]
        outcomes_b = [len(b.offer(t, t, (0.1,), {"y": 0.1}))
                      for t in range(100)]
        assert outcomes_a != outcomes_b


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"loss_prob": -0.1},
            {"dup_prob": 1.5},
            {"loss_burst_mean": 0.5},
            {"reorder_delay_mean": 0.0},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            ServiceFaultConfig(**kwargs)

    def test_delivery_is_frozen(self):
        d = Delivery(tick=1, seq=2, x=(0.1,), y={"a": 1.0})
        with pytest.raises(AttributeError):
            d.tick = 5
