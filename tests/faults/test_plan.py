"""Replayable fault-plan codec: validation, round-trip, canonical bytes."""

from __future__ import annotations

import pytest

from repro.faults.config import FaultConfig
from repro.faults.plan import (
    DRIVER_CHAOSB,
    PLANTED_VM_LEAK,
    FaultPlan,
    PlacementPlan,
    PlanError,
    ServePlan,
    WorkerPlan,
    dump_plan,
    load_plan,
)
from repro.faults.schedule import FaultEvent
from repro.faults.service import ServiceFaultConfig


def _placement(**overrides) -> PlacementPlan:
    kwargs = dict(
        seed=7,
        duration_s=40.0,
        train_duration=20.0,
        migration_failure_prob=0.15,
        pm_count=3,
        hot_vms=4,
        bg_vms=2,
        config=FaultConfig(pm_crash_rate=0.01, pm_reboot_s=8.0),
        events=(
            FaultEvent(5.0, "pm_crash", "pm2", 8.0),
            FaultEvent(12.0, "vm_stall", "hot1", 3.0),
        ),
    )
    kwargs.update(overrides)
    return PlacementPlan(**kwargs)


def _serve(**overrides) -> ServePlan:
    kwargs = dict(
        seed=11,
        pms=2,
        ticks=120,
        queries_per_tick=2,
        drift_at=60,
        drift_scale=1.6,
        crash_at_tick=40,
        faults=ServiceFaultConfig(loss_prob=0.05, corrupt_prob=0.02),
    )
    kwargs.update(overrides)
    return ServePlan(**kwargs)


def _workers(**overrides) -> WorkerPlan:
    kwargs = dict(
        seed=13, n_cells=5, kill_rate=0.2, stall_rate=0.25,
        stall_s=0.2, jobs=2, chunk=2,
    )
    kwargs.update(overrides)
    return WorkerPlan(**kwargs)


def _full_plan() -> FaultPlan:
    return FaultPlan(
        seed=99, placement=_placement(), serve=_serve(), workers=_workers()
    )


class TestValidation:
    def test_placement_rejects_bad_shapes(self):
        with pytest.raises(PlanError):
            _placement(duration_s=0.0)
        with pytest.raises(PlanError):
            _placement(pm_count=1)
        with pytest.raises(PlanError):
            _placement(hot_vms=0)
        with pytest.raises(PlanError):
            _placement(migration_failure_prob=1.0)

    def test_placement_rejects_event_beyond_horizon(self):
        with pytest.raises(PlanError):
            _placement(
                events=(FaultEvent(41.0, "pm_crash", "pm1", 2.0),)
            )

    def test_serve_crash_tick_must_be_interior(self):
        with pytest.raises(PlanError):
            _serve(crash_at_tick=0)
        with pytest.raises(PlanError):
            _serve(crash_at_tick=119)
        assert _serve(crash_at_tick=None).crash_at_tick is None

    def test_worker_kills_need_parallel_jobs(self):
        with pytest.raises(PlanError):
            _workers(jobs=1, kill_rate=0.2)
        assert _workers(jobs=1, kill_rate=0.0).jobs == 1

    def test_plan_needs_a_surface(self):
        with pytest.raises(PlanError):
            FaultPlan(seed=1)

    def test_planted_needs_placement(self):
        with pytest.raises(PlanError):
            FaultPlan(seed=1, planted=PLANTED_VM_LEAK, serve=_serve())
        with pytest.raises(PlanError):
            FaultPlan(seed=1, planted="meteor", placement=_placement())

    def test_unknown_driver_rejected(self):
        with pytest.raises(PlanError):
            FaultPlan(seed=1, driver="cron", placement=_placement())


class TestNullness:
    def test_null_plan(self):
        plan = FaultPlan(
            seed=1,
            placement=_placement(
                events=(), migration_failure_prob=0.0, config=FaultConfig()
            ),
        )
        assert plan.is_null()
        assert plan.surfaces() == ("placement",)

    def test_planted_plan_is_never_null(self):
        plan = FaultPlan(
            seed=1,
            planted=PLANTED_VM_LEAK,
            placement=_placement(events=(), migration_failure_prob=0.0),
        )
        assert not plan.is_null()

    def test_any_faulty_surface_breaks_nullness(self):
        assert not _full_plan().is_null()


class TestCodec:
    def test_round_trip_preserves_plan(self):
        plan = _full_plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_canonical_bytes_stable(self, tmp_path):
        plan = _full_plan()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        dump_plan(plan, a)
        dump_plan(load_plan(a), b)
        assert a.read_bytes() == b.read_bytes()

    def test_driver_survives_round_trip(self):
        plan = FaultPlan(
            seed=3, driver=DRIVER_CHAOSB, placement=_placement()
        )
        assert FaultPlan.from_dict(plan.to_dict()).driver == DRIVER_CHAOSB

    def test_schema_mismatch_rejected(self):
        body = _full_plan().to_dict()
        body["schema"] = "repro-fault-plan/0"
        with pytest.raises(PlanError):
            FaultPlan.from_dict(body)

    def test_malformed_body_wrapped_as_plan_error(self):
        body = _full_plan().to_dict()
        del body["placement"]["seed"]
        with pytest.raises(PlanError):
            FaultPlan.from_dict(body)

    def test_load_plan_rejects_bad_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(PlanError):
            load_plan(bad)
        with pytest.raises(PlanError):
            load_plan(tmp_path / "missing.json")
