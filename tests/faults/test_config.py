"""Tests for the fault configuration."""

from __future__ import annotations

import pytest

from repro.faults import (
    FAULT_KINDS,
    KIND_NIC_DEGRADE,
    KIND_PM_CRASH,
    KIND_VM_CRASH,
    KIND_VM_STALL,
    FaultConfig,
)


class TestFaultConfig:
    def test_default_is_null(self):
        cfg = FaultConfig()
        assert cfg.is_null()
        assert not cfg.samples_faulty()

    def test_any_rate_makes_it_non_null(self):
        assert not FaultConfig(pm_crash_rate=0.01).is_null()
        assert not FaultConfig(sample_dropout_prob=0.1).is_null()

    def test_sampling_only_touches_monitor_knobs(self):
        cfg = FaultConfig.sampling_only(dropout=0.05, outliers=0.02)
        assert cfg.samples_faulty()
        assert cfg.sample_dropout_prob == 0.05
        assert cfg.outlier_prob == 0.02
        for kind in FAULT_KINDS:
            assert cfg.rate_for(kind) == 0.0

    def test_rate_and_duration_lookup(self):
        cfg = FaultConfig(
            pm_crash_rate=0.1,
            pm_reboot_s=7.0,
            vm_stall_rate=0.2,
            vm_stall_s=3.0,
            vm_crash_rate=0.3,
            vm_restart_s=11.0,
            nic_degrade_rate=0.4,
            nic_degrade_s=5.0,
        )
        assert cfg.rate_for(KIND_PM_CRASH) == 0.1
        assert cfg.duration_for(KIND_PM_CRASH) == 7.0
        assert cfg.rate_for(KIND_VM_STALL) == 0.2
        assert cfg.duration_for(KIND_VM_STALL) == 3.0
        assert cfg.rate_for(KIND_VM_CRASH) == 0.3
        assert cfg.duration_for(KIND_VM_CRASH) == 11.0
        assert cfg.rate_for(KIND_NIC_DEGRADE) == 0.4
        assert cfg.duration_for(KIND_NIC_DEGRADE) == 5.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pm_crash_rate": -0.1},
            {"sample_dropout_prob": 1.5},
            {"outlier_prob": -0.01},
            {"nic_bw_factor": 0.0},
            {"nic_bw_factor": 1.5},
            {"nic_loss_frac": 1.0},
            {"pm_reboot_s": 0.0},
            {"dropout_burst_mean": 0.5},
            {"outlier_scale": 1.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(**kwargs)

    def test_unknown_kind_rejected(self):
        cfg = FaultConfig()
        with pytest.raises(KeyError):
            cfg.rate_for("meteor_strike")
        with pytest.raises(KeyError):
            cfg.duration_for("meteor_strike")
