"""Tests for deterministic fault-schedule construction."""

from __future__ import annotations

import pytest

from repro.faults import (
    KIND_NIC_DEGRADE,
    KIND_PM_CRASH,
    KIND_VM_STALL,
    FaultConfig,
    FaultEvent,
    build_schedule,
    faulty_time,
)
from repro.sim import Simulator


def _schedule(config, seed=5, **kw):
    sim = Simulator(seed=seed)
    kw.setdefault("horizon", 200.0)
    kw.setdefault("pm_names", ["pm1", "pm2"])
    kw.setdefault("vm_names", ["vm1", "vm2"])
    return build_schedule(config, sim.rng, **kw)


class TestFaultEvent:
    def test_end_time(self):
        ev = FaultEvent(3.0, KIND_PM_CRASH, "pm1", 7.0)
        assert ev.end == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "nonsense", "pm1", 1.0)
        with pytest.raises(ValueError):
            FaultEvent(-1.0, KIND_PM_CRASH, "pm1", 1.0)
        with pytest.raises(ValueError):
            FaultEvent(1.0, KIND_PM_CRASH, "pm1", 0.0)


class TestBuildSchedule:
    def test_null_config_yields_empty_schedule(self):
        assert _schedule(FaultConfig()) == []

    def test_zero_rate_draws_nothing_from_registry(self):
        sim = Simulator(seed=11)
        build_schedule(
            FaultConfig(), sim.rng, horizon=100.0,
            pm_names=["pm1"], vm_names=["vm1"],
        )
        probe = sim.rng("faults.pm_crash.pm1")
        sim2 = Simulator(seed=11)
        probe2 = sim2.rng("faults.pm_crash.pm1")
        assert probe.random() == probe2.random()

    def test_deterministic_under_seed(self):
        cfg = FaultConfig(
            pm_crash_rate=0.02, vm_stall_rate=0.03, nic_degrade_rate=0.01
        )
        assert _schedule(cfg, seed=9) == _schedule(cfg, seed=9)
        assert _schedule(cfg, seed=9) != _schedule(cfg, seed=10)

    def test_events_sorted_and_within_horizon(self):
        cfg = FaultConfig(pm_crash_rate=0.05, nic_degrade_rate=0.05)
        events = _schedule(cfg, horizon=150.0)
        assert events
        times = [ev.time for ev in events]
        assert times == sorted(times)
        assert all(0.0 < t <= 150.0 for t in times)

    def test_streams_are_per_kind_and_target(self):
        # Raising one kind's rate must not move the other kind's events.
        base = FaultConfig(pm_crash_rate=0.02)
        more = FaultConfig(pm_crash_rate=0.02, nic_degrade_rate=0.05)
        crashes_base = [
            ev for ev in _schedule(base) if ev.kind == KIND_PM_CRASH
        ]
        crashes_more = [
            ev for ev in _schedule(more) if ev.kind == KIND_PM_CRASH
        ]
        assert crashes_base == crashes_more

    def test_vm_kinds_target_vms(self):
        cfg = FaultConfig(vm_stall_rate=0.05)
        events = _schedule(cfg)
        assert events
        assert {ev.kind for ev in events} == {KIND_VM_STALL}
        assert {ev.target for ev in events} <= {"vm1", "vm2"}

    def test_horizon_validated(self):
        with pytest.raises(ValueError):
            _schedule(FaultConfig(), horizon=0.0)

    def test_nic_events_use_configured_duration(self):
        cfg = FaultConfig(nic_degrade_rate=0.05, nic_degrade_s=4.5)
        events = _schedule(cfg)
        assert events
        assert all(
            ev.duration == 4.5
            for ev in events
            if ev.kind == KIND_NIC_DEGRADE
        )


def _ev(time, duration, target="pm1", kind=KIND_PM_CRASH) -> FaultEvent:
    return FaultEvent(time, kind, target, duration)


class TestWindowArithmetic:
    """Edge cases of the fault-window math the oracles lean on."""

    def test_zero_duration_event_rejected(self):
        # A zero-length window would make active_at() unsatisfiable and
        # the clamp arithmetic ambiguous, so construction refuses it.
        with pytest.raises(ValueError):
            _ev(5.0, 0.0)
        with pytest.raises(ValueError):
            _ev(5.0, -1.0)

    def test_window_is_half_open(self):
        ev = _ev(3.0, 4.0)
        assert ev.active_at(3.0)  # onset instant included
        assert ev.active_at(6.999)
        assert not ev.active_at(7.0)  # end instant excluded
        assert not ev.active_at(2.999)

    def test_back_to_back_windows_never_double_count(self):
        first, second = _ev(0.0, 5.0), _ev(5.0, 5.0)
        assert not (first.active_at(5.0) and second.active_at(5.0))
        assert faulty_time([first, second], 100.0) == 10.0

    def test_end_of_horizon_clamp(self):
        straddling = _ev(8.0, 10.0)  # ends at 18, horizon 10
        assert straddling.clamped_end(10.0) == 10.0
        assert straddling.clamped_duration(10.0) == 2.0
        beyond = _ev(12.0, 3.0)  # starts past the horizon
        assert beyond.clamped_end(10.0) == 10.0
        assert beyond.clamped_duration(10.0) == 0.0
        at_edge = _ev(10.0, 3.0)  # onset exactly at the horizon
        assert at_edge.clamped_duration(10.0) == 0.0
        inside = _ev(2.0, 3.0)
        assert inside.clamped_end(10.0) == 5.0
        assert inside.clamped_duration(10.0) == 3.0

    def test_fully_overlapping_windows_merge(self):
        outer, inner = _ev(2.0, 10.0), _ev(4.0, 3.0)
        assert faulty_time([outer, inner], 100.0) == 10.0
        # identical twins count once, not twice
        assert faulty_time([outer, outer], 100.0) == 10.0

    def test_partially_overlapping_windows_merge(self):
        a, b = _ev(0.0, 6.0), _ev(4.0, 6.0)
        assert faulty_time([a, b], 100.0) == 10.0

    def test_disjoint_windows_sum(self):
        a, b = _ev(0.0, 2.0), _ev(10.0, 3.0)
        assert faulty_time([a, b], 100.0) == 5.0

    def test_faulty_time_clamps_at_horizon(self):
        events = [_ev(8.0, 10.0), _ev(50.0, 5.0)]
        assert faulty_time(events, 10.0) == 2.0

    def test_faulty_time_filters_by_target(self):
        events = [
            _ev(0.0, 2.0, target="pm1"),
            _ev(0.0, 5.0, target="pm2"),
        ]
        assert faulty_time(events, 100.0, "pm1") == 2.0
        assert faulty_time(events, 100.0, "pm2") == 5.0
        assert faulty_time(events, 100.0) == 5.0  # union across targets

    def test_faulty_time_validates_horizon(self):
        with pytest.raises(ValueError):
            faulty_time([], 0.0)
        assert faulty_time([], 10.0) == 0.0
