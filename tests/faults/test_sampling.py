"""Tests for the monitor-sample fault model."""

from __future__ import annotations

import numpy as np

from repro.faults import (
    SAMPLE_DROP,
    SAMPLE_OUTLIER,
    FaultConfig,
    SampleFaults,
)


def _model(seed=3, **kw):
    cfg = FaultConfig.sampling_only(**kw)
    return SampleFaults(cfg, np.random.default_rng(seed))


class TestSampleFaults:
    def test_null_config_is_inert_and_drawless(self):
        sf = SampleFaults(FaultConfig(), np.random.default_rng(4))
        assert not sf.active
        assert all(sf.next_sample() is None for _ in range(100))
        # No randomness consumed: the stream is still at its origin.
        assert sf._rng.random() == np.random.default_rng(4).random()

    def test_dropout_comes_in_bursts(self):
        sf = _model(dropout=0.05, burst_mean=4.0)
        verdicts = [sf.next_sample() for _ in range(2000)]
        drops = verdicts.count(SAMPLE_DROP)
        assert drops == sf.dropped > 0
        # Burst lengths should push the drop fraction well above the
        # per-tick start probability.
        assert drops / len(verdicts) > 0.05

    def test_outliers_flagged(self):
        sf = _model(outliers=0.2)
        verdicts = [sf.next_sample() for _ in range(500)]
        assert verdicts.count(SAMPLE_OUTLIER) == sf.corrupted > 0
        assert SAMPLE_DROP not in verdicts

    def test_deterministic_under_seed(self):
        a = _model(seed=17, dropout=0.1, outliers=0.05)
        b = _model(seed=17, dropout=0.1, outliers=0.05)
        va = [a.next_sample() for _ in range(300)]
        vb = [b.next_sample() for _ in range(300)]
        assert va == vb

    def test_corrupt_scales_both_ways(self):
        sf = _model(outliers=0.5, outlier_scale=5.0)
        out = {sf.corrupt(10.0) for _ in range(200)}
        assert out == {50.0, 2.0}

    def test_corrupt_keeps_zero_dead(self):
        sf = _model(outliers=0.5)
        assert sf.corrupt(0.0) == 0.0
