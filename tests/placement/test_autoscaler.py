"""Tests for CloudScale-style vertical scaling."""

from __future__ import annotations

import pytest

from repro.models import TrainingConfig, train_multi_vm_model
from repro.placement.autoscaler import ScalerConfig, VerticalScaler
from repro.sim import Simulator
from repro.workloads import CpuHog, DynamicWorkload
from repro.xen import PhysicalMachine, VMSpec


@pytest.fixture(scope="module")
def model():
    return train_multi_vm_model(
        TrainingConfig(vm_counts=(1, 2, 4), duration=12.0, warmup=2.0)
    )


def make_pm(n_vms=2, seed=81):
    sim = Simulator(seed=seed)
    pm = PhysicalMachine(sim, name="pm1")
    vms = [pm.create_vm(VMSpec(name=f"vm{k}")) for k in range(n_vms)]
    return sim, pm, vms


class TestScalerConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval": 0.0},
            {"min_cap_pct": 0.0},
            {"min_cap_pct": 50.0, "max_cap_pct": 10.0},
            {"headroom": 0.5},
            {"capacity_frac": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ScalerConfig(**kwargs)


class TestVerticalScaler:
    def test_caps_track_steady_demand(self, model):
        sim, pm, vms = make_pm()
        CpuHog(40.0).attach(vms[0])
        CpuHog(10.0).attach(vms[1])
        scaler = VerticalScaler(pm, model)
        pm.start()
        scaler.start()
        sim.run_until(30.0)
        caps = scaler.current_caps()
        # Caps sit a little above usage (padding + headroom), and the
        # busier VM gets the larger cap.
        assert 40.0 < caps["vm0"] < 60.0
        assert 10.0 < caps["vm1"] < 25.0
        assert caps["vm0"] > caps["vm1"]

    def test_caps_do_not_throttle_steady_guests(self, model):
        sim, pm, vms = make_pm()
        CpuHog(50.0).attach(vms[0])
        scaler = VerticalScaler(pm, model)
        pm.start()
        scaler.start()
        sim.run_until(30.0)
        # Despite the cap, the guest still receives its full demand.
        assert pm.snapshot().vm("vm0").cpu_pct == pytest.approx(50.3, abs=1.0)

    def test_caps_follow_a_ramp(self, model):
        sim, pm, vms = make_pm()
        hog = CpuHog(0.0).attach(vms[0])
        DynamicWorkload(sim, hog, lambda t: min(80.0, 2.0 * t))
        scaler = VerticalScaler(pm, model)
        pm.start()
        scaler.start()
        sim.run_until(15.0)
        early_cap = scaler.current_caps()["vm0"]
        sim.run_until(45.0)
        late_cap = scaler.current_caps()["vm0"]
        assert late_cap > early_cap + 20.0

    def test_conflict_resolution_shrinks_caps(self, model):
        sim, pm, vms = make_pm(n_vms=4, seed=82)
        for vm in vms:
            CpuHog(95.0).attach(vm)
        scaler = VerticalScaler(pm, model)
        pm.start()
        scaler.start()
        sim.run_until(30.0)
        caps = scaler.current_caps()
        assert scaler.conflicts > 0
        # Sum of caps respects the overhead-adjusted budget (~190 * 0.95).
        assert sum(caps.values()) <= 190.0
        for cap in caps.values():
            assert cap >= ScalerConfig().min_cap_pct

    def test_min_cap_keeps_idle_guests_schedulable(self, model):
        sim, pm, vms = make_pm()
        scaler = VerticalScaler(pm, model)
        pm.start()
        scaler.start()
        sim.run_until(10.0)
        for cap in scaler.current_caps().values():
            assert cap >= 5.0

    def test_stop_releases_caps(self, model):
        sim, pm, vms = make_pm()
        CpuHog(30.0).attach(vms[0])
        scaler = VerticalScaler(pm, model)
        pm.start()
        scaler.start()
        sim.run_until(10.0)
        scaler.stop()
        assert all(v is None for v in scaler.current_caps().values())
        # Without release:
        scaler2 = VerticalScaler(pm, model)
        scaler2.start()
        sim.run_until(15.0)
        scaler2.stop(release_caps=False)
        assert any(v is not None for v in scaler2.current_caps().values())

    def test_double_start_rejected(self, model):
        sim, pm, _ = make_pm()
        scaler = VerticalScaler(pm, model)
        pm.start()
        scaler.start()
        with pytest.raises(RuntimeError):
            scaler.start()


class TestCapOverridePlumbing:
    def test_effective_cap_default_is_spec(self):
        from repro.xen import GuestVM

        vm = GuestVM(VMSpec(name="v", cap_pct=40.0))
        assert vm.effective_cap_pct == 40.0
        vm.cap_override_pct = 25.0
        assert vm.effective_cap_pct == 25.0
        vm.cap_override_pct = None
        assert vm.effective_cap_pct == 40.0

    def test_negative_override_rejected(self):
        from repro.xen import GuestVM

        vm = GuestVM(VMSpec(name="v"))
        vm.cap_override_pct = -1.0
        with pytest.raises(ValueError):
            _ = vm.effective_cap_pct

    def test_machine_enforces_override(self):
        sim = Simulator(seed=83)
        pm = PhysicalMachine(sim, name="pm1")
        vm = pm.create_vm(VMSpec(name="v"))
        CpuHog(80.0).attach(vm)
        vm.cap_override_pct = 30.0
        pm.start()
        sim.run_until(5.0)
        assert pm.snapshot().vm("v").cpu_pct == pytest.approx(30.0, abs=0.5)