"""Tests for the Figure 10 provisioning scenario (reduced scale)."""

from __future__ import annotations

import pytest

from repro.models import TrainingConfig, train_multi_vm_model
from repro.placement import (
    VM_NAMES,
    VOA,
    VOU,
    profile_demands,
    run_scenario_experiment,
    run_trial,
)


@pytest.fixture(scope="module")
def model():
    return train_multi_vm_model(
        TrainingConfig(vm_counts=(1, 2, 4), duration=12.0, warmup=2.0)
    )


@pytest.fixture(scope="module")
def demands3():
    return profile_demands(3, seed=5, profile_s=25.0)


class TestProfiling:
    def test_demand_vector_shapes(self, demands3):
        assert set(demands3) == set(VM_NAMES)
        web = demands3["vm1-web"]
        # Web tier at 500 clients: ~60 % CPU (plus padding), BW-heavy.
        assert 40.0 < web.cpu < 95.0
        assert web.bw > 300.0

    def test_aux_vms_profiled_at_50pct(self, demands3):
        for name in ("vm3", "vm4", "vm5"):
            assert demands3[name].cpu == pytest.approx(50.0, abs=8.0)

    def test_scenario0_aux_idle(self):
        demands = profile_demands(0, seed=5, profile_s=12.0)
        for name in ("vm3", "vm4", "vm5"):
            assert demands[name].cpu < 2.0

    def test_invalid_scenario(self):
        with pytest.raises(ValueError):
            profile_demands(9)


class TestTrials:
    def test_trial_rejects_bad_order(self, model, demands3):
        with pytest.raises(ValueError):
            run_trial(
                3, VOA, model, demands3, order=["vm1-web"], seed=1
            )

    def test_voa_beats_vou_in_worst_order(self, model, demands3):
        # Worst case for VOU: web lands with all three hogs.
        order = ["vm1-web", "vm3", "vm4", "vm5", "vm2-db"]
        voa = run_trial(
            3, VOA, model, demands3, order=order, seed=3, duration_s=40.0
        )
        vou = run_trial(
            3, VOU, None, demands3, order=order, seed=3, duration_s=40.0
        )
        assert vou.throughput_rps < voa.throughput_rps
        assert vou.total_time_s > voa.total_time_s
        # VOU packed the first four onto pm1.
        assert len(vou.plan.vms_on("pm1")) == 4

    def test_voa_splits_load(self, model, demands3):
        order = ["vm1-web", "vm3", "vm4", "vm5", "vm2-db"]
        voa = run_trial(
            3, VOA, model, demands3, order=order, seed=3, duration_s=30.0
        )
        assert len(voa.plan.vms_on("pm1")) < 4

    def test_scenario0_strategies_equivalent(self, model):
        demands = profile_demands(0, seed=5, profile_s=20.0)
        order = list(VM_NAMES)
        voa = run_trial(
            0, VOA, model, demands, order=order, seed=9, duration_s=30.0
        )
        vou = run_trial(
            0, VOU, None, demands, order=order, seed=9, duration_s=30.0
        )
        # Idle aux VMs: nothing to squeeze, both near offered load.
        assert vou.throughput_rps == pytest.approx(
            voa.throughput_rps, rel=0.05
        )


class TestExperimentGrid:
    def test_small_grid_shape_holds(self, model):
        results = run_scenario_experiment(
            model,
            scenarios=(0, 3),
            trials=2,
            duration_s=25.0,
            profile_s=20.0,
            seed=77,
        )
        by_key = {(r.scenario, r.strategy): r for r in results}
        assert set(by_key) == {(0, VOA), (0, VOU), (3, VOA), (3, VOU)}
        # VOA stable across scenarios; VOU degrades by scenario 3.
        voa0 = by_key[(0, VOA)].mean_throughput()
        voa3 = by_key[(3, VOA)].mean_throughput()
        vou3 = by_key[(3, VOU)].mean_throughput()
        assert voa3 == pytest.approx(voa0, rel=0.1)
        assert vou3 <= voa3
        lo, hi = by_key[(3, VOU)].throughput_percentiles()
        assert lo <= hi
