"""Tests for hotspot detection and migration planning."""

from __future__ import annotations

import pytest

from repro.models import TrainingConfig, train_multi_vm_model
from repro.monitor.metrics import ResourceVector
from repro.placement import (
    HotspotDetector,
    MigrationPlanner,
    Move,
    VmObservation,
)


@pytest.fixture(scope="module")
def model():
    return train_multi_vm_model(
        TrainingConfig(vm_counts=(1, 2, 4), duration=12.0, warmup=2.0)
    )


def obs(name, cpu=0.0, bw=0.0, io=0.0, mem=256):
    return VmObservation(
        name=name, demand=ResourceVector(cpu=cpu, io=io, bw=bw), mem_mb=mem
    )


class TestVmObservation:
    def test_volume_grows_with_pressure(self):
        light = obs("a", cpu=10.0)
        heavy = obs("b", cpu=90.0, io=80.0, bw=50_000.0)
        assert heavy.volume() > 10 * light.volume()

    def test_volume_per_mem_prefers_small_vms(self):
        small = obs("a", cpu=50.0, mem=128)
        big = obs("b", cpu=50.0, mem=1024)
        assert small.volume_per_mem() > big.volume_per_mem()

    def test_volume_bounded_near_saturation(self):
        v = obs("a", cpu=100.0, io=90.0, bw=100_000.0)
        assert v.volume() <= (1 / 0.05) ** 3 + 1e-9


class TestHotspotDetector:
    def test_idle_pm_never_hot(self, model):
        det = HotspotDetector(model, k=2)
        for _ in range(5):
            assert not det.observe("pm1", [])

    def test_requires_k_consecutive(self, model):
        det = HotspotDetector(model, k=3, threshold_frac=0.8)
        hot_set = [obs(f"v{i}", cpu=90.0) for i in range(4)]
        assert not det.observe("pm1", hot_set)
        assert not det.observe("pm1", hot_set)
        assert det.observe("pm1", hot_set)

    def test_transient_spike_ignored(self, model):
        det = HotspotDetector(model, k=3, threshold_frac=0.8)
        hot = [obs(f"v{i}", cpu=90.0) for i in range(4)]
        cool = [obs("v0", cpu=10.0)]
        det.observe("pm1", hot)
        det.observe("pm1", cool)  # breaks the streak
        det.observe("pm1", hot)
        assert not det.observe("pm1", hot)
        assert det.observe("pm1", hot)

    def test_reset_clears_history(self, model):
        det = HotspotDetector(model, k=2, threshold_frac=0.8)
        hot = [obs(f"v{i}", cpu=90.0) for i in range(4)]
        det.observe("pm1", hot)
        det.reset("pm1")
        assert not det.observe("pm1", hot)

    def test_validation(self, model):
        with pytest.raises(ValueError):
            HotspotDetector(model, k=0)
        with pytest.raises(ValueError):
            HotspotDetector(model, threshold_frac=0.0)
        with pytest.raises(ValueError):
            HotspotDetector(model, threshold_frac=1.5)


class TestMigrationPlanner:
    def test_relieves_simple_hotspot(self, model):
        planner = MigrationPlanner(model)
        placement = {
            "pm1": [obs(f"v{i}", cpu=60.0) for i in range(4)],
            "pm2": [obs("calm", cpu=10.0)],
        }
        moves = planner.plan("pm1", placement)
        assert moves
        assert all(m.src == "pm1" and m.dst == "pm2" for m in moves)
        assert planner.relieved("pm1", placement, moves)

    def test_does_not_create_new_hotspot(self, model):
        planner = MigrationPlanner(model, target_frac=0.85)
        placement = {
            "pm1": [obs(f"v{i}", cpu=80.0) for i in range(4)],
            "pm2": [obs(f"w{i}", cpu=75.0) for i in range(2)],
        }
        moves = planner.plan("pm1", placement)
        # pm2 is near its own limit; any accepted move must keep pm2
        # under target (the planner's admission rule).
        state2 = [o for o in placement["pm2"]]
        for mv in moves:
            vm = next(v for v in placement["pm1"] if v.name == mv.vm)
            state2.append(vm)
        assert planner._pm_cpu(state2) <= planner.target + 1e-9

    def test_no_destination_means_no_moves(self, model):
        planner = MigrationPlanner(model)
        placement = {
            "pm1": [obs(f"v{i}", cpu=90.0) for i in range(4)],
            "pm2": [obs(f"w{i}", cpu=90.0) for i in range(4)],
        }
        moves = planner.plan("pm1", placement)
        assert moves == []

    def test_memory_constraint_respected(self, model):
        planner = MigrationPlanner(model)
        placement = {
            "pm1": [obs("huge", cpu=90.0, mem=1400), obs("v", cpu=90.0)],
            "pm2": [obs("resident", cpu=5.0, mem=1500)],
        }
        moves = planner.plan("pm1", placement)
        # 'huge' cannot fit pm2 (1500 + 1400 + dom0 > 2048); only 'v' can
        # move.
        assert all(m.vm != "huge" for m in moves)

    def test_prefers_high_volume_per_mem(self, model):
        planner = MigrationPlanner(model, target_frac=0.7)
        placement = {
            "pm1": [
                obs("small-busy", cpu=85.0, mem=128),
                obs("big-busy", cpu=85.0, mem=1024),
                obs("calm", cpu=20.0),
            ],
            "pm2": [],
        }
        moves = planner.plan("pm1", placement, max_moves=1)
        assert moves and moves[0].vm == "small-busy"

    def test_max_moves_bound(self, model):
        planner = MigrationPlanner(model, target_frac=0.3)
        placement = {
            "pm1": [obs(f"v{i}", cpu=60.0) for i in range(5)],
            "pm2": [],
            "pm3": [],
        }
        moves = planner.plan("pm1", placement, max_moves=2)
        assert len(moves) <= 2

    def test_validation(self, model):
        planner = MigrationPlanner(model)
        with pytest.raises(KeyError):
            planner.plan("ghost", {"pm1": []})
        with pytest.raises(ValueError):
            planner.plan("pm1", {"pm1": []}, max_moves=0)
        with pytest.raises(ValueError):
            MigrationPlanner(model, target_frac=0.0)

    def test_move_record(self):
        m = Move(vm="v", src="a", dst="b")
        assert (m.vm, m.src, m.dst) == ("v", "a", "b")
