"""Tests for overhead-aware consolidation."""

from __future__ import annotations

import pytest

from repro.models import TrainingConfig, train_multi_vm_model
from repro.monitor.metrics import ResourceVector
from repro.placement.consolidation import ConsolidationPlan, ConsolidationPlanner
from repro.placement.migration import VmObservation


@pytest.fixture(scope="module")
def model():
    return train_multi_vm_model(
        TrainingConfig(vm_counts=(1, 2, 4), duration=12.0, warmup=2.0)
    )


@pytest.fixture(scope="module")
def planner(model):
    return ConsolidationPlanner(model, target_frac=0.8)


def obs(name, cpu=0.0, mem=256):
    return VmObservation(name=name, demand=ResourceVector(cpu=cpu), mem_mb=mem)


class TestConsolidation:
    def test_packs_two_light_pms_into_one(self, planner):
        placement = {
            "pm1": [obs("a", cpu=20.0)],
            "pm2": [obs("b", cpu=25.0)],
            "pm3": [obs("c", cpu=15.0)],
        }
        plan = planner.plan(placement)
        assert plan.pms_saved >= 2
        after = planner.apply(placement, plan)
        non_empty = [pm for pm, vms in after.items() if vms]
        assert len(non_empty) == 1
        # The surviving PM stays under target.
        assert planner._pm_cpu(after[non_empty[0]]) <= planner.target

    def test_no_consolidation_when_loaded(self, planner):
        placement = {
            "pm1": [obs(f"a{i}", cpu=80.0) for i in range(2)],
            "pm2": [obs(f"b{i}", cpu=80.0) for i in range(2)],
        }
        plan = planner.plan(placement)
        assert plan.pms_saved == 0
        assert plan.moves == []

    def test_partial_consolidation(self, planner):
        # Two busy PMs plus one nearly-idle PM: only the idle one drains.
        placement = {
            "pm1": [obs(f"a{i}", cpu=70.0) for i in range(2)],
            "pm2": [obs("tiny", cpu=5.0)],
            "pm3": [obs(f"c{i}", cpu=70.0) for i in range(2)],
        }
        plan = planner.plan(placement)
        assert plan.released_pms == ["pm2"]
        after = planner.apply(placement, plan)
        assert after["pm2"] == []
        for pm in ("pm1", "pm3"):
            assert planner._pm_cpu(after[pm]) <= planner.target

    def test_overhead_blocks_naive_packing(self, planner):
        # Guest sums say 4 x 45 = 180 fits a 190-point guest share, but
        # the model adds Dom0 + hypervisor and refuses the merge at the
        # 0.8 target (180 + ~35 > 180).
        placement = {
            "pm1": [obs("a0", cpu=45.0), obs("a1", cpu=45.0)],
            "pm2": [obs("b0", cpu=45.0), obs("b1", cpu=45.0)],
        }
        plan = planner.plan(placement)
        assert plan.pms_saved == 0

    def test_memory_respected(self, planner):
        placement = {
            "pm1": [obs("fat", cpu=5.0, mem=1500)],
            "pm2": [obs("other", cpu=5.0, mem=1500)],
        }
        plan = planner.plan(placement)
        # 1500 + 1500 + 350 > 2048: no merge possible.
        assert plan.pms_saved == 0

    def test_all_or_nothing_per_source(self, planner):
        # pm1 has one movable and one unmovable (memory) guest; it must
        # not be half-drained.
        placement = {
            "pm1": [obs("small", cpu=10.0), obs("fat", cpu=10.0, mem=1600)],
            "pm2": [obs("x", cpu=10.0, mem=1000)],
        }
        plan = planner.plan(placement)
        assert plan.pms_saved == 0
        assert plan.moves == []

    def test_never_reopens_empty_pm(self, planner):
        placement = {
            "pm1": [obs("a", cpu=10.0)],
            "pm2": [],
            "pm3": [obs("b", cpu=10.0)],
        }
        plan = planner.plan(placement)
        after = planner.apply(placement, plan)
        assert after["pm2"] == []

    def test_validation(self, model):
        with pytest.raises(ValueError):
            ConsolidationPlanner(model, target_frac=0.0)
        planner = ConsolidationPlanner(model)
        with pytest.raises(ValueError):
            planner.plan({})

    def test_empty_plan_properties(self):
        plan = ConsolidationPlan()
        assert plan.pms_saved == 0
        assert plan.moves == []
