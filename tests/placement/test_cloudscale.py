"""Tests for the CloudScale-style demand predictor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.placement.cloudscale import DemandPredictor, PredictorConfig


class TestPredictorConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 2},
            {"min_history": 1},
            {"min_history": 500},
            {"signature_threshold": 0.0},
            {"signature_threshold": 1.5},
            {"markov_bins": 1},
            {"padding_frac": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PredictorConfig(**kwargs)


class TestDemandPredictor:
    def test_empty_history_raises(self):
        with pytest.raises(RuntimeError):
            DemandPredictor().predict_raw()

    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError):
            DemandPredictor().update(-1.0)

    def test_constant_demand_predicted_exactly(self):
        p = DemandPredictor()
        for _ in range(30):
            p.update(42.0)
        assert p.predict_raw() == pytest.approx(42.0)

    def test_short_history_uses_mean(self):
        p = DemandPredictor(PredictorConfig(min_history=10))
        for v in (10.0, 20.0):
            p.update(v)
        assert p.predict_raw() == pytest.approx(15.0)

    def test_periodic_signal_uses_signature(self):
        # A strong square wave with period 10: the prediction should be
        # the value from one period ago, i.e. follow the pattern.
        p = DemandPredictor(PredictorConfig(window=60))
        wave = [10.0 if (i // 5) % 2 == 0 else 50.0 for i in range(60)]
        for v in wave:
            p.update(v)
        # Next value continues the pattern: index 60 -> same as index 50.
        assert p.predict_raw() == pytest.approx(wave[50], abs=1.0)

    def test_random_walk_falls_back_to_markov(self):
        rng = np.random.default_rng(0)
        p = DemandPredictor()
        value = 50.0
        for _ in range(100):
            value = max(0.0, value + rng.normal(0, 2.0))
            p.update(value)
        pred = p.predict_raw()
        # Markov prediction stays within the observed range, near the
        # current regime.
        assert 0.0 <= pred <= 120.0
        assert abs(pred - value) < 25.0

    def test_padding_never_negative_and_adds_headroom(self):
        p = DemandPredictor()
        for _ in range(20):
            p.update(100.0)
        assert p.predict() >= 100.0

    def test_padding_covers_recent_underprediction(self):
        # A step increase should inflate padding via the error window.
        p = DemandPredictor(PredictorConfig(min_history=4))
        for _ in range(20):
            p.update(10.0)
        p.predict()
        p.update(30.0)  # under-predicted by ~20
        p.predict()
        p.update(30.0)
        padded = p.predict()
        raw = p.predict_raw()
        assert padded >= raw + 15.0

    def test_window_bounds_history(self):
        p = DemandPredictor(PredictorConfig(window=10))
        for v in range(100):
            p.update(float(v))
        assert len(p) == 10

    def test_predicts_zero_for_idle_vm(self):
        p = DemandPredictor()
        for _ in range(30):
            p.update(0.0)
        assert p.predict() == 0.0
