"""Tests for failure-tolerant migration execution and the control loop."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.models import TrainingConfig, train_multi_vm_model
from repro.placement import (
    HotspotDetector,
    MigrationExecutor,
    MigrationPlanner,
    Move,
    PmCircuitBreaker,
    ResilientControlLoop,
    RetryPolicy,
)
from repro.sim import Simulator
from repro.workloads import CpuHog
from repro.xen import VMSpec


@pytest.fixture(scope="module")
def model():
    return train_multi_vm_model(
        TrainingConfig(vm_counts=(1, 2), duration=10.0, warmup=2.0)
    )


class ScriptedRng:
    """Deterministic stand-in for the mid-flight failure stream."""

    def __init__(self, draws):
        self._draws = list(draws)

    def random(self):
        return self._draws.pop(0) if self._draws else 1.0


def make_cluster(seed=13, vms_on_pm1=2, hog=50.0):
    sim = Simulator(seed=seed)
    cl = Cluster(sim)
    cl.create_pm("pm1")
    cl.create_pm("pm2")
    for i in range(vms_on_pm1):
        vm = cl.place_vm(VMSpec(name=f"vm{i}", mem_mb=256), "pm1")
        CpuHog(hog).attach(vm)
    cl.start()
    return cl


def executor(cl, draws=(), **kw):
    kw.setdefault("failure_prob", 0.5 if draws else 0.0)
    return MigrationExecutor(cl, rng=ScriptedRng(draws), **kw)


class TestRetryPolicy:
    def test_exponential_delays(self):
        pol = RetryPolicy(max_attempts=4, backoff_s=2.0, multiplier=3.0)
        assert pol.delay(1) == 2.0
        assert pol.delay(2) == 6.0
        assert pol.delay(3) == 18.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


class TestPmCircuitBreaker:
    def test_opens_after_threshold_and_cools_down(self):
        br = PmCircuitBreaker(failure_threshold=2, cooldown_s=10.0)
        assert br.allow("pm2", 0.0)
        br.record_failure("pm2", 0.0)
        assert br.allow("pm2", 0.0)
        br.record_failure("pm2", 0.0)
        assert not br.allow("pm2", 5.0)
        assert br.state("pm2", 5.0) == "open"
        assert br.allow("pm2", 10.0)
        assert br.opened == 1

    def test_success_closes_and_clears(self):
        br = PmCircuitBreaker(failure_threshold=2, cooldown_s=10.0)
        br.record_failure("pm2", 0.0)
        br.record_success("pm2")
        br.record_failure("pm2", 1.0)
        assert br.allow("pm2", 1.0)  # count restarted after the success

    def test_breakers_are_per_pm(self):
        br = PmCircuitBreaker(failure_threshold=1, cooldown_s=10.0)
        br.record_failure("pm2", 0.0)
        assert not br.allow("pm2", 0.0)
        assert br.allow("pm3", 0.0)


class TestMigrationExecutor:
    def test_clean_move_lands_without_rng(self):
        cl = make_cluster()
        ex = MigrationExecutor(cl)  # failure_prob = 0
        assert ex.submit(Move(vm="vm0", src="pm1", dst="pm2"))
        assert cl.pm_of("vm0").name == "pm2"
        assert ex.stats.succeeded == 1
        assert ex.log[0].ok and ex.log[0].reason == "ok"

    def test_midflight_failure_rolls_back(self):
        cl = make_cluster()
        ex = executor(cl, draws=[0.0])  # first draw < 0.5 -> abort
        assert not ex.submit(Move(vm="vm0", src="pm1", dst="pm2"))
        # The guest is back on its source, still running.
        assert cl.pm_of("vm0").name == "pm1"
        assert ex.stats.rollbacks == 1
        assert ex.pending == 1

    def test_retry_with_backoff_eventually_lands(self):
        cl = make_cluster()
        ex = executor(
            cl,
            draws=[0.0, 0.0, 1.0],  # fail, fail, succeed
            policy=RetryPolicy(max_attempts=3, backoff_s=2.0),
        )
        assert not ex.submit(Move(vm="vm0", src="pm1", dst="pm2"))
        # First retry due at now+2, second at +2+4.
        assert ex.tick(1.0) == 0  # too early: nothing due
        assert ex.pending == 1
        assert ex.tick(2.0) == 0  # due, fails again
        assert ex.tick(6.0) == 1  # due, lands
        assert cl.pm_of("vm0").name == "pm2"
        assert ex.stats.retries == 2
        assert ex.stats.rollbacks == 2
        assert ex.stats.succeeded == 1
        assert ex.pending == 0
        assert [a.attempt for a in ex.log] == [1, 2, 3]

    def test_abandons_after_max_attempts(self):
        cl = make_cluster()
        ex = executor(
            cl,
            draws=[0.0, 0.0],
            policy=RetryPolicy(max_attempts=2, backoff_s=1.0),
        )
        ex.submit(Move(vm="vm0", src="pm1", dst="pm2"))
        ex.tick(1.0)
        assert ex.stats.abandoned == 1
        assert ex.pending == 0
        assert cl.pm_of("vm0").name == "pm1"

    def test_breaker_vetoes_flapping_destination(self):
        cl = make_cluster()
        ex = executor(
            cl,
            draws=[0.0, 0.0, 0.0, 0.0],
            policy=RetryPolicy(max_attempts=4, backoff_s=1.0),
            breaker=PmCircuitBreaker(failure_threshold=2, cooldown_s=50.0),
        )
        ex.submit(Move(vm="vm0", src="pm1", dst="pm2"))
        ex.submit(Move(vm="vm1", src="pm1", dst="pm2"))  # 2nd failure opens
        vetoed = ex.tick(1.0)
        assert vetoed == 0
        assert ex.stats.vetoed >= 1
        assert all(
            a.reason == "circuit-open" for a in ex.log if a.attempt == 2
        )

    def test_dst_down_fails_without_consuming_rng(self):
        cl = make_cluster()
        cl.pms["pm2"].fail()
        draws = [0.9]
        ex = executor(cl, draws=draws)
        assert not ex.submit(Move(vm="vm0", src="pm1", dst="pm2"))
        assert ex.log[0].reason == "dst-down"
        assert len(draws) == 1  # untouched: vetoed before the draw
        assert cl.pm_of("vm0").name == "pm1"

    def test_vanished_vm_dropped_permanently(self):
        cl = make_cluster()
        ex = MigrationExecutor(cl)
        assert not ex.submit(Move(vm="ghost", src="pm1", dst="pm2"))
        assert ex.stats.abandoned == 1
        assert ex.pending == 0
        assert ex.log[0].reason == "vm-gone"

    def test_no_memory_rolls_back(self):
        sim = Simulator(seed=7)
        cl = Cluster(sim)
        cl.create_pm("pm1")
        cl.create_pm("pm2")
        cl.place_vm(VMSpec(name="vm0", mem_mb=512), "pm1")
        # Fill pm2 so vm0 cannot fit.
        cl.place_vm(VMSpec(name="big", mem_mb=1400), "pm2")
        cl.start()
        ex = MigrationExecutor(cl)
        assert not ex.submit(Move(vm="vm0", src="pm1", dst="pm2"))
        assert ex.log[0].reason == "no-memory"
        assert cl.pm_of("vm0").name == "pm1"

    def test_validation(self):
        cl = make_cluster()
        with pytest.raises(ValueError):
            MigrationExecutor(cl, failure_prob=1.0)


class TestHotspotDetectorMissing:
    def test_missing_does_not_clear_alarm(self, model):
        from repro.monitor.metrics import ResourceVector
        from repro.placement import VmObservation

        hot = [
            VmObservation(
                name=f"v{i}", demand=ResourceVector(cpu=90.0), mem_mb=256
            )
            for i in range(4)
        ]
        det = HotspotDetector(model, k=2, n=4, threshold_frac=0.6)
        det.observe("pm1", hot)
        assert det.observe("pm1", hot)
        # Gaps age the window but k hot votes remain within n.
        assert det.observe_missing("pm1")
        assert det.observe_missing("pm1")
        # Now both hot votes have left the window.
        assert not det.observe_missing("pm1")

    def test_window_wider_than_k_tolerates_gaps(self, model):
        from repro.monitor.metrics import ResourceVector
        from repro.placement import VmObservation

        hot = [
            VmObservation(
                name=f"v{i}", demand=ResourceVector(cpu=90.0), mem_mb=256
            )
            for i in range(4)
        ]
        det = HotspotDetector(model, k=2, n=4, threshold_frac=0.6)
        det.observe("pm1", hot)
        det.observe_missing("pm1")
        assert det.observe("pm1", hot)  # 2 hot votes in a 4-wide window

    def test_n_defaults_to_k(self, model):
        det = HotspotDetector(model, k=3)
        assert det.n == 3
        with pytest.raises(ValueError):
            HotspotDetector(model, k=3, n=2)


class TestResilientControlLoop:
    def test_relieves_hotspot_deterministically(self, model):
        def run_once():
            cl = make_cluster(seed=29, vms_on_pm1=4, hog=95.0)
            ex = MigrationExecutor(cl)
            loop = ResilientControlLoop(
                cl,
                model,
                interval=2.0,
                detector=HotspotDetector(
                    model, k=2, n=3, threshold_frac=0.6
                ),
                planner=MigrationPlanner(model, target_frac=0.6),
                executor=ex,
            )
            loop.start()
            cl.run(30.0)
            return (
                ex.stats.succeeded,
                sorted(cl.pms["pm2"].vms),
                loop.rounds,
            )

        first = run_once()
        assert first[0] >= 1  # some guest actually moved
        assert first == run_once()

    def test_loop_counts_missing_observations(self, model):
        cl = make_cluster(seed=43)
        cl.pms["pm1"].fail()
        loop = ResilientControlLoop(cl, model, interval=2.0)
        loop.start()
        cl.run(10.0)
        assert loop.missing_observations > 0
        assert loop.rounds >= 4

    def test_lifecycle(self, model):
        cl = make_cluster()
        loop = ResilientControlLoop(cl, model, interval=2.0)
        loop.start()
        with pytest.raises(RuntimeError):
            loop.start()
        loop.stop()
        loop.start()
        with pytest.raises(ValueError):
            ResilientControlLoop(cl, model, interval=0.0)
