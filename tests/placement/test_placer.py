"""Tests for VOA / VOU placement."""

from __future__ import annotations

import pytest

from repro.models import MultiVMOverheadModel, TrainingConfig, train_multi_vm_model
from repro.monitor.metrics import ResourceVector
from repro.placement import VOA, VOU, Placer, PlacementRequest
from repro.xen import VMSpec


@pytest.fixture(scope="module")
def model() -> MultiVMOverheadModel:
    return train_multi_vm_model(
        TrainingConfig(vm_counts=(1, 2, 4), duration=12.0, warmup=2.0)
    )


def req(name, cpu=0.0, mem_mb=400, bw=0.0, io=0.0):
    return PlacementRequest(
        spec=VMSpec(name=name, mem_mb=mem_mb),
        demand=ResourceVector(cpu=cpu, mem=mem_mb / 2, io=io, bw=bw),
    )


class TestConstruction:
    def test_voa_requires_model(self):
        with pytest.raises(ValueError, match="model"):
            Placer(["pm1"], strategy=VOA)

    def test_unknown_strategy(self, model):
        with pytest.raises(ValueError):
            Placer(["pm1"], strategy="magic", model=model)

    def test_needs_pms(self, model):
        with pytest.raises(ValueError):
            Placer([], strategy=VOA, model=model)

    def test_headroom_validated(self, model):
        with pytest.raises(ValueError):
            Placer(["pm1"], strategy=VOA, model=model, cpu_headroom=0.0)
        with pytest.raises(ValueError):
            Placer(["pm1"], strategy=VOA, model=model, cpu_headroom=1.5)


class TestVou:
    def test_first_fit_packs_one_pm(self):
        placer = Placer(["pm1", "pm2"], strategy=VOU)
        plan = placer.place([req(f"v{k}", cpu=50.0) for k in range(4)])
        assert set(plan.assignment.values()) == {"pm1"}
        assert plan.forced == []

    def test_memory_overflows_to_second_pm(self):
        # 4 x 400 MB + Dom0 350 fits 2048; the 5th does not.
        placer = Placer(["pm1", "pm2"], strategy=VOU)
        plan = placer.place([req(f"v{k}") for k in range(5)])
        assert plan.vms_on("pm1") == [f"v{k}" for k in range(4)]
        assert plan.vms_on("pm2") == ["v4"]

    def test_ignores_cpu_overhead(self):
        # Four 90 % guests sum to 360 <= 400 nominal: VOU accepts, even
        # though the real effective capacity is ~225.
        placer = Placer(["pm1", "pm2"], strategy=VOU)
        plan = placer.place([req(f"v{k}", cpu=90.0) for k in range(4)])
        assert set(plan.assignment.values()) == {"pm1"}

    def test_duplicate_names_rejected(self):
        placer = Placer(["pm1"], strategy=VOU)
        with pytest.raises(ValueError):
            placer.place([req("a"), req("a")])

    def test_forced_placement_when_nothing_fits(self):
        placer = Placer(["pm1"], strategy=VOU)
        plan = placer.place([req(f"v{k}") for k in range(5)])
        assert "v4" in plan.forced
        assert plan.assignment["v4"] == "pm1"


class TestVoa:
    def test_accounts_for_dom0_and_hypervisor(self, model):
        # Four 90 % guests: predicted PM CPU = 360 + Dom0 + hyp > 225,
        # so VOA splits the set while VOU packs it.
        reqs = [req(f"v{k}", cpu=90.0) for k in range(4)]
        voa_plan = Placer(
            ["pm1", "pm2"], strategy=VOA, model=model
        ).place(reqs)
        vou_plan = Placer(["pm1", "pm2"], strategy=VOU).place(reqs)
        assert len(set(vou_plan.assignment.values())) == 1
        assert len(set(voa_plan.assignment.values())) == 2

    def test_light_vms_still_pack(self, model):
        reqs = [req(f"v{k}", cpu=10.0) for k in range(4)]
        plan = Placer(["pm1", "pm2"], strategy=VOA, model=model).place(reqs)
        assert set(plan.assignment.values()) == {"pm1"}

    def test_bandwidth_overhead_counted(self, model):
        # Heavy network VMs drive Dom0 CPU (0.01 %/Kb/s); VOA must see
        # the PM CPU exceeding capacity even at modest guest CPU.
        reqs = [req(f"v{k}", cpu=20.0, bw=6000.0) for k in range(3)]
        plan = Placer(["pm1", "pm2"], strategy=VOA, model=model).place(reqs)
        assert len(set(plan.assignment.values())) == 2

    def test_memory_check_includes_dom0(self, model):
        plan = Placer(["pm1", "pm2"], strategy=VOA, model=model).place(
            [req(f"v{k}") for k in range(5)]
        )
        assert plan.assignment["v4"] == "pm2"
