"""Double-run determinism regression: same seed, byte-identical output.

The fault layer's contract ("zero-fault runs stay byte-identical to the
seed") and every recorded EXPERIMENTS.md number rest on this: one
artifact, run twice under the sanitizer, must render byte-identical
reports *and* consume exactly the same number of RNG draws from exactly
the same streams.  Identical bytes with different draw counts would
mean a component silently stealing entropy from another's stream --
the cross-run contamination the sanitizer exists to catch.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments import runner
from repro.sim import sanitize, sanitized


def _run_fig5a_once():
    with sanitized():
        result = runner.run("fig5a", fast=True)
        counts = sanitize.aggregate_draw_counts()
        pops = sanitize.total_pops()
    csv_lines = [
        f"{s.label},{x:.9g},{y:.9g}"
        for s in result.series
        for x, y in zip(s.x, s.y)
    ]
    return result.render().encode(), "\n".join(csv_lines).encode(), counts, pops


class TestDoubleRunDeterminism:
    def test_double_run_is_byte_identical_with_identical_draws(self):
        text1, csv1, counts1, pops1 = _run_fig5a_once()
        text2, csv2, counts2, pops2 = _run_fig5a_once()
        assert text1 == text2
        assert csv1 == csv2
        assert counts1 == counts2
        assert pops1 == pops2
        # the run actually exercised the sanitizer
        assert pops1 > 0
        assert sum(counts1.values()) > 0
        assert len(counts1) >= 2  # multiple independent named streams

    def test_sanitizer_does_not_change_results(self):
        with sanitized():
            checked = runner.run("fig5a", fast=True).render()
        plain = runner.run("fig5a", fast=True).render()
        assert checked == plain


class TestCliSanitizeFlag:
    def test_run_sanitize_smoke(self, capsys):
        assert main(["run", "fig5a", "--fast", "--sanitize"]) == 0
        out = capsys.readouterr().out
        assert "sanitizer:" in out
        assert "event pops vetted" in out
        # flag is not sticky: the default is restored afterwards
        assert not sanitize.default_enabled()

    def test_sanitize_output_stable_across_invocations(self, capsys):
        assert main(["run", "fig5a", "--fast", "--sanitize"]) == 0
        first = capsys.readouterr().out
        assert main(["run", "fig5a", "--fast", "--sanitize"]) == 0
        second = capsys.readouterr().out
        assert first == second
