"""Content-addressed result cache: round trips, keys, stale eviction."""

from __future__ import annotations

import pytest

from repro.perf.cache import (
    ResultCache,
    canonical_json,
    code_fingerprint,
)
from repro.perf.integrity import ArtifactIntegrityWarning
from repro.perf.cells import MicrobenchCell, content_digest
from repro.perf.executor import CellOutcome, run_cells


def _cell(level: float = 25.0, **overrides) -> MicrobenchCell:
    kwargs = dict(
        kind="cpu", n_vms=1, level=level, index=0, duration=4.0, seed=42
    )
    kwargs.update(overrides)
    return MicrobenchCell(**kwargs)


class TestKeying:
    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_key_depends_on_config(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.key(_cell()) == cache.key(_cell())
        assert cache.key(_cell()) != cache.key(_cell(seed=43))
        assert cache.key(_cell()) != cache.key(_cell(level=50.0))

    def test_key_depends_on_code_fingerprint(self, tmp_path):
        now = ResultCache(tmp_path, fingerprint="a" * 64)
        later = ResultCache(tmp_path, fingerprint="b" * 64)
        assert now.key(_cell()) != later.key(_cell())

    def test_code_fingerprint_is_stable_hex(self):
        fp = code_fingerprint()
        assert fp == code_fingerprint()
        assert len(fp) == 64
        int(fp, 16)

    def test_content_digest_distinguishes_values(self):
        assert content_digest({"a": 1}) == content_digest({"a": 1})
        assert content_digest({"a": 1}) != content_digest({"a": 2})


class TestRoundTrip:
    def test_cold_then_warm_identical(self, tmp_path):
        cells = [_cell(level=10.0), _cell(level=20.0, index=1)]
        cache = ResultCache(tmp_path)
        cold = run_cells(cells, cache=cache)
        assert cache.misses == 2 and cache.hits == 0
        warm_cache = ResultCache(tmp_path)
        warm = run_cells(cells, cache=warm_cache)
        assert warm_cache.hits == 2 and warm_cache.misses == 0
        assert warm == cold

    def test_corrupt_entry_is_a_miss_and_recomputed(self, tmp_path):
        cell = _cell()
        cache = ResultCache(tmp_path)
        (good,) = run_cells([cell], cache=cache)
        path = cache._path(cell)
        path.write_bytes(b"not a pickle")
        fresh = ResultCache(tmp_path)
        with pytest.warns(ArtifactIntegrityWarning):
            (recomputed,) = run_cells([cell], cache=fresh)
        assert fresh.misses == 1
        assert recomputed == good

    def test_truncated_entry_is_evicted_with_warning(self, tmp_path):
        cell = _cell()
        cache = ResultCache(tmp_path)
        cache.put(cell, CellOutcome(value=1.0))
        path = cache._path(cell)
        path.write_bytes(path.read_bytes()[:-5])
        fresh = ResultCache(tmp_path)
        with pytest.warns(ArtifactIntegrityWarning, match="truncated"):
            assert fresh.get(cell) is None
        assert fresh.misses == 1
        assert not path.exists()  # evicted, not left to warn forever
        # The slot is immediately writable again.
        fresh.put(cell, CellOutcome(value=2.0))
        assert fresh.get(cell).value == 2.0

    def test_wrong_schema_entry_is_a_miss(self, tmp_path):
        from repro.perf import integrity

        cell = _cell()
        cache = ResultCache(tmp_path)
        integrity.write_artifact(
            cache._path(cell), CellOutcome(value=1.0),
            schema="repro.other/v99",
        )
        with pytest.warns(ArtifactIntegrityWarning, match="schema"):
            assert cache.get(cell) is None
        assert cache.misses == 1

    def test_missing_entry_is_a_silent_miss(self, tmp_path, recwarn):
        cache = ResultCache(tmp_path)
        assert cache.get(_cell()) is None
        assert cache.misses == 1
        assert len(recwarn) == 0

    def test_put_get_outcome(self, tmp_path):
        cache = ResultCache(tmp_path)
        outcome = CellOutcome(value={"x": 1.0}, events=123)
        cache.put(_cell(), outcome)
        stored = cache.get(_cell())
        assert stored.value == {"x": 1.0}
        assert stored.events == 123


class TestStaleEviction:
    def test_fingerprint_change_invalidates_and_evicts(self, tmp_path):
        cell = _cell()
        old = ResultCache(tmp_path, fingerprint="a" * 64)
        old.put(cell, CellOutcome(value=1))
        assert old.get(cell) is not None
        # "New code": different fingerprint -> miss, old generation gone.
        new = ResultCache(tmp_path, fingerprint="b" * 64)
        assert new.get(cell) is None
        assert new.stats().stale_generations == 0
        assert not (tmp_path / ("a" * 16)).exists()

    def test_evict_stale_disabled_keeps_generations(self, tmp_path):
        old = ResultCache(tmp_path, fingerprint="a" * 64, evict_stale=False)
        old.put(_cell(), CellOutcome(value=1))
        new = ResultCache(tmp_path, fingerprint="b" * 64, evict_stale=False)
        assert new.stats().stale_generations == 1

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_cell(), CellOutcome(value=1))
        cache.put(_cell(seed=43), CellOutcome(value=2))
        assert cache.clear() == 2
        assert cache.stats().entries == 0


class TestStats:
    def test_stats_counts_and_render(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_cells([_cell()], cache=cache)
        run_cells([_cell()], cache=cache)
        stats = cache.stats()
        assert stats.entries == 1
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.5)
        assert "entries" in stats.render()


class TestPersistedStats:
    """Regression: ``repro cache stats`` used to always report 0/0,
    because hit/miss counters lived only on the in-process instance."""

    def test_flush_makes_counters_visible_to_fresh_instance(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_cells([_cell()], cache=cache)
        run_cells([_cell()], cache=cache)
        cache.flush_stats()
        # The bug: a fresh instance (what the stats subcommand builds)
        # reported hits=0, misses=0 no matter what the cache had done.
        fresh = ResultCache(tmp_path)
        assert fresh.stats().hits == 1
        assert fresh.stats().misses == 1

    def test_flush_accumulates_across_sessions(self, tmp_path):
        for _ in range(2):
            cache = ResultCache(tmp_path)
            run_cells([_cell()], cache=cache)
            cache.flush_stats()
        stats = ResultCache(tmp_path).stats()
        assert stats.hits == 1  # second session was all hits
        assert stats.misses == 1  # first session was all misses

    def test_double_flush_does_not_double_count(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_cells([_cell()], cache=cache)
        cache.flush_stats()
        cache.flush_stats()
        assert ResultCache(tmp_path).stats().misses == 1

    def test_session_counters_still_session_scoped(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_cells([_cell()], cache=cache)
        cache.flush_stats()
        assert cache.hits == 0 and cache.misses == 0
        # stats() folds persisted + session.
        run_cells([_cell()], cache=cache)
        assert cache.hits == 1
        assert cache.stats().hits == 1 and cache.stats().misses == 1

    def test_stats_file_not_counted_as_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_cells([_cell()], cache=cache)
        before = cache.stats()
        cache.flush_stats()
        after = ResultCache(tmp_path).stats()
        assert after.entries == before.entries == 1
        assert after.bytes == before.bytes

    def test_corrupt_stats_file_resets_with_warning(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_cells([_cell()], cache=cache)
        cache.flush_stats()
        cache._stats_path.write_bytes(b"scrambled")
        with pytest.warns(ArtifactIntegrityWarning, match="cache stats"):
            stats = ResultCache(tmp_path).stats()
        assert stats.hits == 0 and stats.misses == 0
        assert not cache._stats_path.exists()

    def test_stale_eviction_drops_old_generation_stats(self, tmp_path):
        old = ResultCache(tmp_path, fingerprint="a" * 64)
        old.misses = 5
        old.flush_stats()
        new = ResultCache(tmp_path, fingerprint="b" * 64)
        assert new.stats().misses == 0
