"""Incremental-consume (streaming) mode of ``run_cells``.

``consume(index, value)`` must fire for every cell in strict cell
order, release each outcome slot as it goes, return an empty list, and
compose unchanged with the cache, the run manifest (resume re-consumes
restored cells) and parallel fan-out.  A permanent cell failure leaves
the tail unconsumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

import pytest

from repro.perf.cache import ResultCache
from repro.perf.cells import Cell, MicrobenchCell
from repro.perf.executor import _CONSUMED, run_cells
from repro.perf.manifest import RunManifest
from repro.perf.supervisor import (
    CellExecutionError,
    SupervisorConfig,
    reset_stats,
)

NO_RETRY = SupervisorConfig(max_attempts=1, backoff_base_s=0.0)


@dataclass(frozen=True)
class ValueCell(Cell):
    """A trivial inline cell: value = 10 * ident, 1 event."""

    ident: int

    group = "value"

    def config(self) -> Dict[str, Any]:
        return {"cell": "value", "ident": self.ident}

    def run(self) -> Tuple[Any, int]:
        return self.ident * 10, 1

    def label(self) -> str:
        return f"value[{self.ident}]"


@dataclass(frozen=True)
class BoomCell(Cell):
    ident: int = 0

    group = "boom"

    def config(self) -> Dict[str, Any]:
        return {"cell": "boom", "ident": self.ident}

    def run(self) -> Tuple[Any, int]:
        raise RuntimeError("boom")

    def label(self) -> str:
        return f"boom[{self.ident}]"


def _micro_cells(n: int = 4):
    return [
        MicrobenchCell(
            kind="cpu", n_vms=1, level=10.0 + 20.0 * i, index=i,
            duration=4.0, seed=42,
        )
        for i in range(n)
    ]


@pytest.fixture(autouse=True)
def _fresh_stats():
    reset_stats()
    yield
    reset_stats()


class TestConsumeOrder:
    def test_consumed_in_cell_order_and_returns_empty(self):
        seen = []
        result = run_cells(
            [ValueCell(i) for i in range(5)],
            consume=lambda i, v: seen.append((i, v)),
        )
        assert result == []
        assert seen == [(i, i * 10) for i in range(5)]

    def test_consumed_values_match_plain_run(self):
        cells = [ValueCell(i) for i in (3, 1, 4, 1, 5)]
        plain = run_cells(cells)
        streamed = []
        run_cells(cells, consume=lambda i, v: streamed.append(v))
        assert streamed == plain

    def test_slots_released_as_consumed(self):
        # The consume callback sees its own slot already released --
        # the executor never retains a consumed outcome.
        cells = [ValueCell(i) for i in range(3)]
        holder = {}

        def grab(i, v):
            holder[i] = v

        run_cells(cells, consume=grab)
        assert holder == {0: 0, 1: 10, 2: 20}

    def test_parallel_consume_matches_serial(self):
        cells = _micro_cells(4)
        serial = run_cells(cells, jobs=1)
        streamed = []
        result = run_cells(
            cells, jobs=2, consume=lambda i, v: streamed.append((i, v))
        )
        assert result == []
        assert [i for i, _ in streamed] == [0, 1, 2, 3]
        assert [v for _, v in streamed] == serial


class TestConsumeComposition:
    def test_cache_hits_are_consumed_in_order(self, tmp_path):
        cells = [ValueCell(i) for i in range(4)]
        cache = ResultCache(tmp_path / "cache")
        cold = []
        run_cells(cells, cache=cache, consume=lambda i, v: cold.append(v))
        warm = []
        run_cells(cells, cache=cache, consume=lambda i, v: warm.append(v))
        assert warm == cold == [0, 10, 20, 30]

    def test_resume_reconsumes_restored_cells(self, tmp_path):
        cells = [ValueCell(i) for i in range(3)]
        first = RunManifest(tmp_path / "run")
        first.open_run(["test"], resumed=False)
        run_cells(cells, manifest=first, consume=lambda i, v: None)
        second = RunManifest(tmp_path / "run")
        second.open_run(["test"], resumed=True)
        replayed = []
        run_cells(
            cells, manifest=second, resume=True,
            consume=lambda i, v: replayed.append((i, v)),
        )
        assert replayed == [(0, 0), (1, 10), (2, 20)]
        assert second.restored == 3
        assert second.executed == 0

    def test_failure_leaves_tail_unconsumed(self):
        cells = [ValueCell(0), BoomCell(), ValueCell(2)]
        seen = []
        with pytest.raises(CellExecutionError):
            run_cells(
                cells, supervisor=NO_RETRY,
                consume=lambda i, v: seen.append((i, v)),
            )
        # Cell 0 streamed; the failed cell blocks its slot, so cell 2
        # completed but was never handed to the aggregator.
        assert seen == [(0, 0)]

    def test_consumed_sentinel_is_not_a_value(self):
        # The sentinel marking released slots must never equal a real
        # cell value (it is identity-checked, but keep it inert).
        assert _CONSUMED is not None
        run_cells([ValueCell(0)], consume=lambda i, v: None)
