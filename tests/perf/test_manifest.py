"""Run manifests: ledger replay, checkpoint/resume, gc, crash tolerance."""

from __future__ import annotations

import pytest

from repro.perf.cells import MicrobenchCell
from repro.perf.executor import CellOutcome, run_cells
from repro.perf.integrity import ArtifactIntegrityWarning
from repro.perf.manifest import (
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_PENDING,
    RunManifest,
)


def _cell(level: float = 25.0, **overrides) -> MicrobenchCell:
    kwargs = dict(
        kind="cpu", n_vms=1, level=level, index=0, duration=4.0, seed=42
    )
    kwargs.update(overrides)
    return MicrobenchCell(**kwargs)


class TestLedger:
    def test_plan_records_pending_once(self, tmp_path):
        manifest = RunManifest(tmp_path)
        cells = [_cell(10.0), _cell(20.0, index=1)]
        manifest.plan(cells)
        manifest.plan(cells)  # replanning must not duplicate
        status = manifest.status()
        assert len(status.cells) == 2
        assert status.counts()[STATUS_PENDING] == 2
        assert not status.complete

    def test_done_and_failed_transitions(self, tmp_path):
        manifest = RunManifest(tmp_path)
        good, bad = _cell(10.0), _cell(20.0, index=1)
        manifest.plan([good, bad])
        manifest.record_done(good, CellOutcome(value=1.0), attempts=1)
        manifest.record_failed(bad, attempts=3, error="boom")
        status = manifest.status()
        counts = status.counts()
        assert counts[STATUS_DONE] == 1
        assert counts[STATUS_FAILED] == 1
        assert not status.complete
        rendered = status.render()
        assert "resumable" in rendered
        assert bad.label() in rendered

    def test_open_run_records_command(self, tmp_path):
        manifest = RunManifest(tmp_path)
        manifest.open_run(["run", "fig5", "--jobs", "2"], resumed=False)
        manifest.open_run(["run", "fig5", "--jobs", "2"], resumed=True)
        status = manifest.status()
        assert status.runs == 2
        assert status.resumed_runs == 1
        assert status.command == ["run", "fig5", "--jobs", "2"]

    def test_truncated_tail_line_is_tolerated(self, tmp_path):
        manifest = RunManifest(tmp_path)
        manifest.plan([_cell()])
        with open(manifest.path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "done", "key"')  # killed mid-append
        status = RunManifest(tmp_path).status()
        assert status.skipped_lines == 1
        assert len(status.cells) == 1


class TestCheckpointResume:
    def test_load_round_trips_outcome(self, tmp_path):
        manifest = RunManifest(tmp_path)
        cell = _cell()
        outcome = CellOutcome(
            value={"v": 2.5}, events=7, draw_counts={"s": 3}, pops=11
        )
        manifest.plan([cell])
        manifest.record_done(cell, outcome, attempts=2)
        fresh = RunManifest(tmp_path)
        restored = fresh.load(cell)
        assert restored.value == {"v": 2.5}
        assert restored.events == 7
        assert restored.draw_counts == {"s": 3}
        assert restored.pops == 11
        assert fresh.restored == 1

    def test_load_returns_none_for_pending(self, tmp_path):
        manifest = RunManifest(tmp_path)
        manifest.plan([_cell()])
        assert manifest.load(_cell()) is None

    def test_corrupt_checkpoint_demotes_to_pending(self, tmp_path):
        manifest = RunManifest(tmp_path)
        cell = _cell()
        manifest.plan([cell])
        manifest.record_done(cell, CellOutcome(value=1.0), attempts=1)
        ckpt = manifest._checkpoint_path(manifest.key(cell))
        ckpt.write_bytes(ckpt.read_bytes()[:-3])
        fresh = RunManifest(tmp_path)
        with pytest.warns(ArtifactIntegrityWarning):
            assert fresh.load(cell) is None
        assert fresh.restored == 0

    def test_swapped_checkpoint_fails_ledger_digest(self, tmp_path):
        # Internally consistent artifact, but not the one the ledger
        # recorded: the whole-file digest catches the swap.
        manifest = RunManifest(tmp_path)
        a, b = _cell(10.0), _cell(20.0, index=1)
        manifest.plan([a, b])
        manifest.record_done(a, CellOutcome(value=1.0), attempts=1)
        manifest.record_done(b, CellOutcome(value=2.0), attempts=1)
        path_a = manifest._checkpoint_path(manifest.key(a))
        path_b = manifest._checkpoint_path(manifest.key(b))
        path_a.write_bytes(path_b.read_bytes())
        fresh = RunManifest(tmp_path)
        with pytest.warns(ArtifactIntegrityWarning, match="checksum"):
            assert fresh.load(a) is None

    def test_changed_code_matches_no_keys(self, tmp_path):
        old = RunManifest(tmp_path, fingerprint="a" * 64)
        cell = _cell()
        old.plan([cell])
        old.record_done(cell, CellOutcome(value=1.0), attempts=1)
        new = RunManifest(tmp_path, fingerprint="b" * 64)
        assert new.load(cell) is None

    def test_run_cells_resumes_from_checkpoints(self, tmp_path):
        cells = [_cell(10.0), _cell(20.0, index=1)]
        first = RunManifest(tmp_path)
        baseline = run_cells(cells, manifest=first, resume=False)
        assert first.executed == 2
        second = RunManifest(tmp_path)
        resumed = run_cells(cells, manifest=second, resume=True)
        assert resumed == baseline
        assert second.restored == 2
        assert second.executed == 0


class TestGc:
    def test_gc_removes_orphans_keeps_done(self, tmp_path):
        manifest = RunManifest(tmp_path)
        cell = _cell()
        manifest.plan([cell])
        manifest.record_done(cell, CellOutcome(value=1.0), attempts=1)
        orphan = manifest.cells_dir / ("f" * 64 + ".pkl")
        orphan.write_bytes(b"junk")
        removed = RunManifest(tmp_path).gc()
        assert removed["orphaned"] == 1
        assert removed["stale"] == 0
        assert not orphan.exists()
        assert manifest._checkpoint_path(manifest.key(cell)).exists()

    def test_gc_tolerates_concurrently_vanishing_file(
        self, tmp_path, monkeypatch
    ):
        # A concurrent resume/gc can unlink a checkpoint between the
        # directory listing and our stat; gc must skip it and count
        # bytes only for files this sweep actually removed.
        import os
        import pathlib

        manifest = RunManifest(tmp_path)
        manifest.plan([_cell()])
        manifest.cells_dir.mkdir(parents=True, exist_ok=True)
        vanishing = manifest.cells_dir / ("a" * 64 + ".pkl")
        vanishing.write_bytes(b"gone")
        survivor = manifest.cells_dir / ("f" * 64 + ".pkl")
        survivor.write_bytes(b"junk!")
        real_stat = pathlib.Path.stat
        raced = {"done": False}

        def racing_stat(self, *args, **kwargs):
            if self.name == vanishing.name and not raced["done"]:
                raced["done"] = True
                os.unlink(self)  # the concurrent sweep wins the race
            return real_stat(self, *args, **kwargs)

        monkeypatch.setattr(pathlib.Path, "stat", racing_stat)
        removed = RunManifest(tmp_path).gc()
        assert raced["done"]
        assert removed["orphaned"] == 1
        assert removed["bytes"] == len(b"junk!")
        assert not survivor.exists()

    def test_gc_drops_everything_after_code_change(self, tmp_path):
        old = RunManifest(tmp_path, fingerprint="a" * 64)
        cell = _cell()
        old.open_run(["run", "fig5"], resumed=False)
        old.plan([cell])
        old.record_done(cell, CellOutcome(value=1.0), attempts=1)
        new = RunManifest(tmp_path, fingerprint="b" * 64)
        removed = new.gc()
        assert removed["stale"] == 1
        assert list(new.cells_dir.glob("*.pkl")) == []
