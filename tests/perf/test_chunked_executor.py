"""Chunked dispatch and the warm worker pool.

``--chunk N`` batches cells into pool tasks and the warm pool keeps
workers alive across sweep phases; neither is allowed to change a
single output byte.  These tests pin the chunk cost model, double-run
byte-identity under chunked parallel execution, warm-pool reuse /
rebuild / discard semantics, and the bench regression comparator.
"""

from __future__ import annotations

import pytest

from repro.experiments import runner
from repro.perf import pool as warmpool
from repro.perf.bench import REGRESSION_TOLERANCE, compare_bench
from repro.perf.cells import MicrobenchCell
from repro.perf.executor import (
    default_chunk,
    execution_defaults,
    resolve_chunk,
    run_cells,
    set_default_chunk,
)
from repro.perf.profiler import PhaseStats
from repro.sim import sanitize


def _fig2a_render(jobs: int, chunk=None) -> str:
    with execution_defaults(jobs=jobs, chunk=chunk):
        return runner.run("fig2a", fast=True).render()


@pytest.fixture(autouse=True)
def _clean_pool():
    yield
    warmpool.shutdown_pool()


class TestResolveChunk:
    def test_explicit_chunk_wins(self):
        assert resolve_chunk(5, 40, 4) == 5
        assert resolve_chunk(1, 1000, 8) == 1

    def test_auto_targets_four_waves_per_worker(self):
        # 40 cells / (4 jobs * 4 waves) = 2.5 -> ceil -> 3
        assert resolve_chunk(0, 40, 4) == 3
        assert resolve_chunk(None, 40, 4) == 3
        assert resolve_chunk(0, 160, 4) == 10

    def test_auto_degenerates_to_singletons(self):
        assert resolve_chunk(0, 40, 1) == 1
        assert resolve_chunk(0, 3, 4) == 1
        assert resolve_chunk(0, 0, 4) == 1

    def test_default_chunk_round_trips(self):
        assert default_chunk() == 0
        with execution_defaults(chunk=7):
            assert default_chunk() == 7
            assert resolve_chunk(None, 100, 4) == 7
        assert default_chunk() == 0

    def test_set_default_chunk_clamps_negative(self):
        prev = default_chunk()
        set_default_chunk(-3)
        try:
            assert default_chunk() == 0
        finally:
            set_default_chunk(prev)


class TestChunkedDeterminism:
    def test_chunked_double_run_byte_identical(self):
        serial = _fig2a_render(1)
        first = _fig2a_render(4, chunk=2)
        second = _fig2a_render(4, chunk=2)
        assert first == serial
        assert second == serial

    def test_chunked_sanitizer_accounting_matches_serial(self):
        cells = [
            MicrobenchCell(
                kind="bw", n_vms=1, level=level, index=i,
                duration=6.0, seed=42,
            )
            for i, level in enumerate((16.0, 32.0, 64.0, 96.0))
        ]
        with sanitize.sanitized():
            serial_values = run_cells(cells, jobs=1)
            serial_counts = sanitize.aggregate_draw_counts()
            serial_pops = sanitize.total_pops()
        with sanitize.sanitized():
            chunked_values = run_cells(cells, jobs=2, chunk=2)
            chunked_counts = sanitize.aggregate_draw_counts()
            chunked_pops = sanitize.total_pops()
        assert chunked_values == serial_values
        assert serial_counts
        assert chunked_counts == serial_counts
        assert chunked_pops == serial_pops

    def test_oversized_chunk_collapses_to_one_task(self):
        cells = [
            MicrobenchCell(
                kind="cpu", n_vms=1, level=level, index=i,
                duration=2.0, seed=42,
            )
            for i, level in enumerate((10.0, 40.0, 70.0))
        ]
        serial = run_cells(cells, jobs=1)
        assert run_cells(cells, jobs=2, chunk=99) == serial


class TestWarmPool:
    def test_pool_reused_for_identical_signature(self):
        context = (False, False)
        first = warmpool.get_pool(2, context)
        second = warmpool.get_pool(2, context)
        assert second is first

    def test_pool_rebuilt_when_context_changes(self):
        first = warmpool.get_pool(2, (False, False))
        second = warmpool.get_pool(2, (True, False))
        assert second is not first

    def test_pool_rebuilt_when_worker_count_changes(self):
        first = warmpool.get_pool(2, (False, False))
        second = warmpool.get_pool(3, (False, False))
        assert second is not first

    def test_discard_forces_fresh_pool(self):
        first = warmpool.get_pool(2, (False, False))
        warmpool.discard(first)
        second = warmpool.get_pool(2, (False, False))
        assert second is not first

    def test_discard_ignores_stale_handle(self):
        first = warmpool.get_pool(2, (False, False))
        current = warmpool.get_pool(2, (False, False))
        warmpool.discard(object())  # not the live pool: must be a no-op
        assert warmpool.get_pool(2, (False, False)) is current
        assert current is first

    def test_shutdown_clears_handle(self):
        first = warmpool.get_pool(2, (False, False))
        warmpool.shutdown_pool()
        second = warmpool.get_pool(2, (False, False))
        assert second is not first

    def test_context_blob_is_deterministic(self):
        blob = warmpool.context_blob((False, True))
        assert blob == warmpool.context_blob((False, True))
        assert blob != warmpool.context_blob((True, True))

    def test_prestart_is_best_effort_and_reuses(self):
        pool = warmpool.prestart(2, (False, False))
        assert warmpool.get_pool(2, (False, False)) is pool


class TestBenchCompare:
    BASE = {
        "revision": "deadbeef",
        "metrics": {"events_per_sec": 30000.0, "parallel_speedup": 1.6},
    }

    @staticmethod
    def _record(eps, speedup):
        return {"metrics": {"events_per_sec": eps, "parallel_speedup": speedup}}

    def test_no_regression_within_tolerance(self):
        record = self._record(30000.0 * 0.85, 1.6 * 0.85)
        assert compare_bench(record, self.BASE) == []

    def test_regression_beyond_tolerance_flagged(self):
        record = self._record(30000.0 * 0.5, 1.6)
        problems = compare_bench(record, self.BASE)
        assert len(problems) == 1
        assert "events_per_sec" in problems[0]

    def test_both_metrics_can_regress(self):
        record = self._record(1.0, 0.1)
        assert len(compare_bench(record, self.BASE)) == 2

    def test_improvement_never_flags(self):
        record = self._record(3.0e5, 4.0)
        assert compare_bench(record, self.BASE) == []

    def test_null_or_missing_baseline_metric_skipped(self):
        base = {"metrics": {"events_per_sec": None}}
        record = self._record(1.0, 0.0)
        assert compare_bench(record, base) == []

    def test_null_new_metric_skipped(self):
        record = {"metrics": {"events_per_sec": None}}
        assert compare_bench(record, self.BASE) == []

    def test_custom_tolerance(self):
        record = self._record(30000.0 * 0.95, 1.6)
        assert compare_bench(record, self.BASE, tolerance=0.01)
        assert compare_bench(record, self.BASE, tolerance=0.10) == []

    def test_default_tolerance_is_twenty_percent(self):
        assert REGRESSION_TOLERANCE == 0.20


class TestPureReplayPhases:
    def test_pure_replay_reports_null_events_per_sec(self):
        stats = PhaseStats(name="cache_warm")
        stats.cells = 5
        stats.cache_hits = 5
        stats.events = 0
        stats.wall_s = 1e-5
        assert stats.pure_replay
        assert stats.as_dict()["events_per_sec"] is None

    def test_simulating_phase_keeps_events_per_sec(self):
        stats = PhaseStats(name="serial")
        stats.cells = 5
        stats.cache_hits = 0
        stats.events = 1000
        stats.wall_s = 0.5
        assert not stats.pure_replay
        assert stats.as_dict()["events_per_sec"] == pytest.approx(2000.0)
