"""Profiler phase accounting and the ``repro bench`` JSON record."""

from __future__ import annotations

import json

import pytest

from repro.perf.bench import (
    BENCH_SCHEMA,
    bench_cells,
    default_output_path,
    run_bench,
    write_bench,
)
from repro.perf.cells import MicrobenchCell
from repro.perf.executor import run_cells
from repro.perf.profiler import Profiler, default_profiler, profiled


class TestProfiler:
    def test_phase_accumulates_wall_time(self):
        prof = Profiler()
        with prof.phase("work"):
            pass
        with prof.phase("work"):
            pass
        stats = prof.stats("work")
        assert stats.intervals == 2
        assert stats.wall_s >= 0.0

    def test_record_and_rates(self):
        prof = Profiler()
        with prof.phase("p"):
            pass
        prof.record("p", cells=4, events=1000, cache_hits=1, cache_misses=3)
        stats = prof.stats("p")
        assert stats.cells == 4
        assert stats.events == 1000
        assert stats.cache_hits == 1
        d = stats.as_dict()
        assert {"wall_s", "cells", "events", "events_per_sec"} <= set(d)

    def test_profiled_installs_default(self):
        assert default_profiler() is None
        with profiled() as prof:
            assert default_profiler() is prof
        assert default_profiler() is None

    def test_run_cells_records_phase(self):
        cell = MicrobenchCell(
            kind="cpu", n_vms=1, level=25.0, index=0, duration=2.0, seed=42
        )
        with profiled() as prof:
            run_cells([cell])
        stats = prof.stats("microbench")
        assert stats.cells == 1
        assert stats.events > 0
        assert stats.wall_s > 0.0


class TestBench:
    def test_bench_cells_matrix(self):
        fast = bench_cells(fast=True)
        full = bench_cells(fast=False)
        assert 0 < len(fast) < len(full)
        assert all(isinstance(c, MicrobenchCell) for c in fast)

    def test_default_output_path_embeds_revision(self, tmp_path):
        path = default_output_path(tmp_path)
        assert path.name.startswith("BENCH_")
        assert path.suffix == ".json"

    def test_run_bench_record_schema(self, tmp_path):
        record = run_bench(fast=True, jobs=2)
        assert record["schema"] == BENCH_SCHEMA
        assert record["jobs"] == 2
        workload = record["workload"]
        assert workload["cells"] == len(bench_cells(fast=True))
        metrics = record["metrics"]
        for key in (
            "events_per_sec",
            "cells_per_sec",
            "serial_wall_s",
            "parallel_wall_s",
            "parallel_speedup",
            "cache_cold_wall_s",
            "cache_warm_wall_s",
            "cache_warm_speedup",
            "cache_hit_rate",
        ):
            assert metrics[key] >= 0.0, key
        # Warm phase must be pure hits.
        assert metrics["cache_hit_rate"] == pytest.approx(1.0)
        assert record["phases"]["cache_warm"]["cache_misses"] == 0
        # The record is valid, stable JSON.
        out = tmp_path / "bench.json"
        write_bench(record, out)
        assert json.loads(out.read_text()) == json.loads(out.read_text())
