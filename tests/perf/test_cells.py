"""Cell descriptors and the refactors they were factored out of."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.experiments import prediction
from repro.experiments.sweeps import (
    LEVEL_SERIES,
    microbench_sweep,
)
from repro.perf.cells import (
    CELL_SCHEMA_VERSION,
    MicrobenchCell,
    PredictionCell,
    ScenarioTrialCell,
)


class TestCellDescriptors:
    def test_microbench_cell_is_picklable_and_runs(self):
        cell = MicrobenchCell(
            kind="cpu", n_vms=1, level=25.0, index=0, duration=2.0, seed=42
        )
        clone = pickle.loads(pickle.dumps(cell))
        means, events = clone.run()
        assert events > 0
        assert set(means) == set(LEVEL_SERIES)

    def test_config_is_json_serializable_and_versioned(self):
        import json

        cell = MicrobenchCell(
            kind="bw", n_vms=2, level=64.0, index=1, duration=2.0, seed=7
        )
        config = cell.config()
        assert config["version"] == CELL_SCHEMA_VERSION
        json.dumps(config)

    def test_prediction_cell_config_digests_models(self):
        single, multi = prediction.trained_models(duration=20.0)
        cell = PredictionCell(
            n_apps=1, clients=300, duration=10.0, seed=99,
            single_model=single, multi_model=multi,
        )
        config = cell.config()
        assert len(config["single_model"]) == 64
        assert config["single_model"] != config["multi_model"]

    def test_scenario_cell_rejects_nothing_until_run(self):
        cell = ScenarioTrialCell(
            scenario=0, strategy="VOA", order=("a",), seed=1,
            duration_s=1.0, clients=10,
        )
        assert cell.config()["order"] == ["a"]

    def test_labels_are_short_and_distinct(self):
        a = MicrobenchCell(
            kind="cpu", n_vms=1, level=25.0, index=0, duration=2.0, seed=42
        )
        b = MicrobenchCell(
            kind="mem", n_vms=2, level=25.0, index=0, duration=2.0, seed=42
        )
        assert a.label() != b.label()


class TestSweepRefactor:
    def test_sweep_levels_and_series_shape(self):
        sweep = microbench_sweep("cpu", 1, duration=4.0, seed=42)
        assert len(sweep.levels) == 5
        for pair in LEVEL_SERIES:
            assert len(sweep.means[pair]) == len(sweep.levels)

    def test_vectorized_means_bit_identical_to_scalar(self):
        # The refactor replaced 13 scalar np.mean calls by one
        # mean(axis=1) over the stacked trace matrix; row-wise reduction
        # must match the per-trace means bit for bit.
        rng = np.random.default_rng(0)
        rows = [rng.random(97) for _ in range(len(LEVEL_SERIES))]
        stacked = np.stack(rows).mean(axis=1)
        for row, vectorized in zip(rows, stacked):
            assert float(np.mean(row)) == float(vectorized)


class TestTrainedModelsMemo:
    def test_one_training_shared_across_call_spellings(self, monkeypatch):
        calls = {"single": 0, "multi": 0}
        real_single = prediction.train_single_vm_model
        real_multi = prediction.train_multi_vm_model

        def counting_single(cfg):
            calls["single"] += 1
            return real_single(cfg)

        def counting_multi(cfg):
            calls["multi"] += 1
            return real_multi(cfg)

        monkeypatch.setattr(
            prediction, "train_single_vm_model", counting_single
        )
        monkeypatch.setattr(prediction, "train_multi_vm_model", counting_multi)
        prediction.clear_model_memo()
        try:
            first = prediction.trained_models(duration=20.0)
            # Positional, keyword and repeated calls all share one entry.
            assert prediction.trained_models(20.0) is not None
            again = prediction.trained_models(duration=20.0)
            assert calls == {"single": 1, "multi": 1}
            assert again[0] is first[0] and again[1] is first[1]
        finally:
            prediction.clear_model_memo()

    def test_fast_kwargs_groups_share_one_instance(self, monkeypatch):
        from repro.experiments import runner

        calls = {"n": 0}
        real_single = prediction.train_single_vm_model

        def counting_single(cfg):
            calls["n"] += 1
            return real_single(cfg)

        monkeypatch.setattr(
            prediction, "train_single_vm_model", counting_single
        )
        prediction.clear_model_memo()
        try:
            kw7 = runner._fast_kwargs("fig7", True)
            kw10 = runner._fast_kwargs("fig10", True)
            kwc = runner._fast_kwargs("chaos", True)
            assert calls["n"] == 1
            assert kw7["multi_model"] is kw10["model"] is kwc["model"]
        finally:
            prediction.clear_model_memo()
