"""Warm-pool lifecycle: idempotent shutdown, discarded-pool reaping."""

from __future__ import annotations

import pytest

from repro.perf import pool as warm_pool


@pytest.fixture(autouse=True)
def clean_pool():
    warm_pool.shutdown_pool()
    yield
    warm_pool.shutdown_pool()


def _answer() -> int:
    return 42


class TestShutdownIdempotence:
    def test_double_shutdown_is_harmless(self):
        # The explicit CLI shutdown and the atexit backstop both fire.
        warm_pool.get_pool(1, ())
        warm_pool.shutdown_pool()
        warm_pool.shutdown_pool()

    def test_shutdown_without_pool_is_noop(self):
        warm_pool.shutdown_pool()
        warm_pool.shutdown_pool()

    def test_shutdown_survives_broken_pool_teardown(self):
        pool = warm_pool.get_pool(1, ())
        original = pool.shutdown

        def exploding_shutdown(*args, **kwargs):
            raise OSError("broken pool")

        pool.shutdown = exploding_shutdown  # instance attr shadows method
        try:
            warm_pool.shutdown_pool()  # must not raise
        finally:
            del pool.shutdown
            original(wait=True, cancel_futures=True)


class TestDiscardedPoolReaping:
    def test_discarded_pool_is_reaped_by_shutdown(self):
        pool = warm_pool.get_pool(1, ())
        assert pool.submit(_answer).result() == 42
        warm_pool.discard(pool)
        warm_pool.shutdown_pool()
        # The discarded executor must have been shut down too -- before
        # the fix it was only dropped, leaking its manager thread.
        with pytest.raises(RuntimeError):
            pool.submit(_answer)

    def test_handleless_discard_still_reaps_current(self):
        pool = warm_pool.get_pool(1, ())
        warm_pool.discard()
        warm_pool.discard(pool)  # re-discard of the same pool: no-op
        warm_pool.shutdown_pool()
        with pytest.raises(RuntimeError):
            pool.submit(_answer)

    def test_discard_then_get_pool_builds_fresh(self):
        first = warm_pool.get_pool(1, ())
        warm_pool.discard(first)
        second = warm_pool.get_pool(1, ())
        assert second is not first
        assert second.submit(_answer).result() == 42
        # The replaced pool is reaped when the fresh one shuts down.
        warm_pool.shutdown_pool()
        with pytest.raises(RuntimeError):
            first.submit(_answer)
