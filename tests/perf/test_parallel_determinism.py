"""Parallel execution must be byte-identical to serial.

The acceptance contract of the perf layer: ``--jobs N`` changes wall
time only.  Rendered artifacts, series values and even the sanitizer's
per-stream RNG draw accounting must match a serial run exactly.
"""

from __future__ import annotations

import pytest

from repro.experiments import runner
from repro.perf.cells import MicrobenchCell
from repro.perf.executor import (
    execution_defaults,
    resolve_jobs,
    run_cells,
    set_default_jobs,
)
from repro.sim import sanitize


def _fig2a_render(jobs: int) -> str:
    with execution_defaults(jobs=jobs):
        return runner.run("fig2a", fast=True).render()


class TestParallelDeterminism:
    def test_fig2a_parallel_render_byte_identical(self):
        serial = _fig2a_render(1)
        parallel = _fig2a_render(4)
        assert parallel == serial

    def test_parallel_sanitizer_accounting_matches_serial(self):
        cells = [
            MicrobenchCell(
                kind="bw", n_vms=1, level=level, index=i,
                duration=6.0, seed=42,
            )
            for i, level in enumerate((16.0, 64.0))
        ]
        with sanitize.sanitized():
            serial_values = run_cells(cells, jobs=1)
            serial_counts = sanitize.aggregate_draw_counts()
            serial_pops = sanitize.total_pops()
        with sanitize.sanitized():
            parallel_values = run_cells(cells, jobs=2)
            parallel_counts = sanitize.aggregate_draw_counts()
            parallel_pops = sanitize.total_pops()
        assert parallel_values == serial_values
        assert serial_counts  # the sweep draws from named streams
        assert parallel_counts == serial_counts
        assert parallel_pops == serial_pops

    def test_results_merge_in_cell_order_not_completion_order(self):
        # Cells with very different workloads: the heavy cell is
        # submitted first and finishes last; its result must still come
        # back first.
        cells = [
            MicrobenchCell(
                kind="cpu", n_vms=2, level=80.0, index=0,
                duration=20.0, seed=42,
            ),
            MicrobenchCell(
                kind="cpu", n_vms=1, level=10.0, index=1,
                duration=2.0, seed=42,
            ),
        ]
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=2)
        assert parallel == serial


class TestJobsPlumbing:
    def test_resolve_jobs_default_and_cpu_count(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1

    def test_execution_defaults_restores(self):
        set_default_jobs(1)
        with execution_defaults(jobs=7):
            assert resolve_jobs(None) == 7
        assert resolve_jobs(None) == 1

    def test_empty_cell_list(self):
        assert run_cells([]) == []


class TestCliJobsFlag:
    def test_run_accepts_jobs(self, capsys):
        from repro.cli import main

        assert main(["run", "table1", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "All shape checks passed" in out
