"""Supervised execution: worker death, hangs, retries, degradation.

The worker faults are injected deterministically through
:mod:`repro.faults.workers` (SIGKILL / stall on first attempt, marker
file makes retries clean), so every recovery path is exercised with a
real process pool and the recovered output can be compared
byte-for-byte against a clean run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

import pytest

from repro.faults.workers import WORKER_KILL, WORKER_STALL, FaultableCell
from repro.perf.cells import Cell, MicrobenchCell
from repro.perf.executor import run_cells
from repro.perf.manifest import RunManifest
from repro.perf.supervisor import (
    CellExecutionError,
    SupervisorConfig,
    reset_stats,
    stats,
)
from repro.sim import sanitize

#: Fast supervision knobs: tests must not wait out real backoffs.
QUICK = SupervisorConfig(deadline_s=30.0, backoff_base_s=0.0)


def _cell(level: float = 25.0, **overrides) -> MicrobenchCell:
    kwargs = dict(
        kind="cpu", n_vms=1, level=level, index=0, duration=4.0, seed=42
    )
    kwargs.update(overrides)
    return MicrobenchCell(**kwargs)


def _cells(n: int = 3):
    return [_cell(10.0 + 20.0 * i, index=i) for i in range(n)]


@dataclass(frozen=True, eq=False)
class BoomCell(Cell):
    """A cell that fails permanently (every attempt raises)."""

    ident: int = 0

    group = "boom"

    def config(self) -> Dict[str, Any]:
        return {"cell": "boom", "ident": self.ident}

    def run(self) -> Tuple[Any, int]:
        raise RuntimeError("boom")

    def label(self) -> str:
        return f"boom[{self.ident}]"


@pytest.fixture(autouse=True)
def _fresh_stats():
    reset_stats()
    yield
    reset_stats()


class TestConfig:
    def test_backoff_schedule_is_deterministic_doubling(self):
        cfg = SupervisorConfig(backoff_base_s=0.1)
        assert cfg.backoff_s(1) == 0.0
        assert cfg.backoff_s(2) == pytest.approx(0.1)
        assert cfg.backoff_s(3) == pytest.approx(0.2)
        assert cfg.backoff_s(4) == pytest.approx(0.4)

    def test_zero_base_disables_backoff(self):
        assert SupervisorConfig(backoff_base_s=0.0).backoff_s(5) == 0.0


class TestCrashedWorker:
    def test_killed_worker_is_retried_and_output_identical(self, tmp_path):
        clean = run_cells(_cells(), jobs=1)
        faulted = [
            FaultableCell(
                inner=cell,
                marker_dir=str(tmp_path),
                fault=WORKER_KILL if i == 1 else None,
            )
            for i, cell in enumerate(_cells())
        ]
        values = run_cells(faulted, jobs=2, supervisor=QUICK)
        assert values == clean
        s = stats()
        assert s.retries >= 1
        assert s.pool_rebuilds >= 1
        assert s.recovered
        assert s.failed == []

    def test_hung_worker_trips_deadline_and_is_retried(self, tmp_path):
        clean = run_cells(_cells(2), jobs=1)
        faulted = [
            FaultableCell(
                inner=cell,
                marker_dir=str(tmp_path),
                fault=WORKER_STALL if i == 0 else None,
                stall_s=30.0,
            )
            for i, cell in enumerate(_cells(2))
        ]
        config = SupervisorConfig(deadline_s=1.5, backoff_base_s=0.0)
        values = run_cells(faulted, jobs=2, supervisor=config)
        assert values == clean
        s = stats()
        assert s.timeouts >= 1
        assert s.failed == []

    def test_degrades_to_serial_when_pool_unrecoverable(self, tmp_path):
        clean = run_cells(_cells(2), jobs=1)
        faulted = [
            FaultableCell(
                inner=cell,
                marker_dir=str(tmp_path),
                fault=WORKER_KILL if i == 0 else None,
            )
            for i, cell in enumerate(_cells(2))
        ]
        config = SupervisorConfig(
            deadline_s=30.0, backoff_base_s=0.0, max_pool_rebuilds=0
        )
        values = run_cells(faulted, jobs=2, supervisor=config)
        assert values == clean
        assert stats().serial_fallbacks == 1


class TestPermanentFailure:
    def test_failing_cell_raises_after_siblings_checkpoint(self, tmp_path):
        manifest = RunManifest(tmp_path)
        cells = [_cell(10.0), BoomCell(), _cell(20.0, index=1)]
        with pytest.raises(CellExecutionError) as exc:
            run_cells(cells, jobs=1, manifest=manifest, supervisor=QUICK)
        assert [label for label, _ in exc.value.failures] == ["boom[0]"]
        counts = manifest.status().counts()
        assert counts["done"] == 2
        assert counts["failed"] == 1
        s = stats()
        assert s.failed and s.failed[0][0] == "boom[0]"
        # Every attempt was charged: first run + retries.
        assert s.attempts >= QUICK.max_attempts

    def test_failure_is_bounded_by_max_attempts(self):
        config = SupervisorConfig(backoff_base_s=0.0, max_attempts=2)
        with pytest.raises(CellExecutionError):
            run_cells([BoomCell()], jobs=1, supervisor=config)
        assert stats().attempts == 2

    def test_timed_out_cell_is_not_retried_inline(self, tmp_path):
        faulted = FaultableCell(
            inner=_cell(),
            marker_dir=str(tmp_path),
            fault=WORKER_STALL,
            stall_s=30.0,
        )
        config = SupervisorConfig(
            deadline_s=1.0, backoff_base_s=0.0, max_pool_rebuilds=0
        )
        # jobs must exceed 1 so the stall happens in a pool worker; with
        # rebuilds exhausted the cell must fail rather than hang the
        # supervising process inline.
        with pytest.raises(CellExecutionError) as exc:
            run_cells([faulted, _cell(99.0, index=7)],
                      jobs=2, supervisor=config)
        assert any(
            "not retried inline" in error
            for _, error in exc.value.failures
        )


class TestKillAndResume:
    def test_interrupted_then_resumed_matches_uninterrupted(self, tmp_path):
        cells = _cells(4)
        with sanitize.sanitized():
            baseline = run_cells(cells, jobs=2, supervisor=QUICK)
            baseline_counts = sanitize.aggregate_draw_counts()
            baseline_pops = sanitize.total_pops()
        # "Interrupted": only half the sweep completed before the kill.
        interrupted = RunManifest(tmp_path / "run")
        with sanitize.sanitized():
            run_cells(cells[:2], jobs=2, manifest=interrupted,
                      supervisor=QUICK)
        assert interrupted.executed == 2
        # Resume the full sweep: restored + fresh must equal baseline,
        # including the sanitizer's per-stream accounting.
        resumed_manifest = RunManifest(tmp_path / "run")
        with sanitize.sanitized():
            resumed = run_cells(
                cells, jobs=2, manifest=resumed_manifest, resume=True,
                supervisor=QUICK,
            )
            resumed_counts = sanitize.aggregate_draw_counts()
            resumed_pops = sanitize.total_pops()
        assert resumed == baseline
        assert resumed_manifest.restored == 2
        assert resumed_manifest.executed == 2
        assert resumed_counts == baseline_counts
        assert resumed_pops == baseline_pops

    def test_recovery_after_kill_with_manifest(self, tmp_path):
        cells = _cells(2)
        clean = run_cells(cells, jobs=1)
        manifest = RunManifest(tmp_path / "run")
        faulted = [
            FaultableCell(
                inner=cell,
                marker_dir=str(tmp_path / "markers"),
                fault=WORKER_KILL if i == 0 else None,
            )
            for i, cell in enumerate(cells)
        ]
        values = run_cells(
            faulted, jobs=2, manifest=manifest, supervisor=QUICK
        )
        assert values == clean
        assert manifest.status().complete
