"""Artifact integrity guards: checksummed writes, verified reads."""

from __future__ import annotations

import json

import pytest

from repro.perf.integrity import (
    ArtifactIntegrityWarning,
    IntegrityError,
    file_digest,
    read_artifact,
    warn_corrupt,
    write_artifact,
)

SCHEMA = "repro.test/v1"


def _write(tmp_path, obj={"x": 1.0, "y": [1, 2, 3]}):
    path = tmp_path / "a.pkl"
    digest = write_artifact(path, obj, schema=SCHEMA)
    return path, digest


class TestRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        path, digest = _write(tmp_path)
        assert read_artifact(path, schema=SCHEMA) == {
            "x": 1.0, "y": [1, 2, 3]
        }
        assert len(digest) == 64

    def test_header_is_json_first_line(self, tmp_path):
        path, digest = _write(tmp_path)
        header = json.loads(path.read_bytes().split(b"\n", 1)[0])
        assert header["schema"] == SCHEMA
        assert header["sha256"] == digest

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        _write(tmp_path)
        leftovers = [p for p in tmp_path.iterdir() if p.suffix != ".pkl"]
        assert leftovers == []

    def test_file_digest_covers_whole_file(self, tmp_path):
        path, _ = _write(tmp_path)
        before = file_digest(path)
        with open(path, "ab") as fh:
            fh.write(b"z")
        assert file_digest(path) != before


class TestRejection:
    def _reason(self, path):
        with pytest.raises(IntegrityError) as exc:
            read_artifact(path, schema=SCHEMA)
        return exc.value.reason

    def test_missing_file(self, tmp_path):
        assert self._reason(tmp_path / "absent.pkl") == "missing"

    def test_not_an_artifact(self, tmp_path):
        path = tmp_path / "a.pkl"
        path.write_bytes(b"not a header\njunk")
        assert self._reason(path) == "not-an-artifact"

    def test_truncated_payload(self, tmp_path):
        path, _ = _write(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        assert self._reason(path) == "truncated"

    def test_flipped_payload_byte(self, tmp_path):
        path, _ = _write(tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert self._reason(path) == "checksum-mismatch"

    def test_schema_mismatch(self, tmp_path):
        path, _ = _write(tmp_path)
        with pytest.raises(IntegrityError) as exc:
            read_artifact(path, schema="repro.other/v9")
        assert exc.value.reason == "schema-mismatch"

    def test_error_carries_path_and_detail(self, tmp_path):
        path = tmp_path / "absent.pkl"
        with pytest.raises(IntegrityError) as exc:
            read_artifact(path, schema=SCHEMA)
        assert str(path) in str(exc.value)


class TestWarning:
    def test_warn_corrupt_is_structured_and_nonfatal(self, tmp_path):
        err = IntegrityError(tmp_path / "a.pkl", "truncated", "short read")
        with pytest.warns(ArtifactIntegrityWarning, match="truncated"):
            warn_corrupt(err, action="evicted cache entry")
