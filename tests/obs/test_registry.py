"""Tests for the metrics registry: families, labels, snapshots."""

from __future__ import annotations

import math

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    KIND_COUNTER,
    KIND_GAUGE,
    KIND_HISTOGRAM,
    MetricsRegistry,
    labels_key,
)


class TestLabelsKey:
    def test_sorted_and_stringified(self):
        assert labels_key({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))

    def test_empty(self):
        assert labels_key({}) == ()


class TestCounter:
    def test_get_or_create_is_same_series(self):
        reg = MetricsRegistry()
        reg.counter("events_total", pm="pm1").inc()
        reg.counter("events_total", pm="pm1").inc(2.0)
        assert reg.counter("events_total", pm="pm1").value == 3.0

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        reg.counter("events_total", pm="pm1").inc()
        reg.counter("events_total", pm="pm2").inc(5.0)
        assert reg.counter("events_total", pm="pm1").value == 1.0
        assert reg.counter("events_total", pm="pm2").value == 5.0
        assert len(reg) == 2

    def test_counter_name_must_end_total(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("events")

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("events_total")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad name_total")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10.0)
        gauge.inc(2.0)
        gauge.dec(5.0)
        assert gauge.value == 7.0


class TestHistogram:
    def test_observe_buckets_and_sum(self):
        hist = MetricsRegistry().histogram("lat_seconds", buckets=(1.0, 5.0))
        for v in (0.5, 2.0, 100.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.sum == 102.5
        # Non-cumulative per-bound counts: <=1: one, <=5: one; the
        # third observation overflows to +Inf (count - sum(counts)).
        assert hist.counts == [1, 1]
        assert hist.cumulative() == [1, 2]

    def test_default_buckets(self):
        hist = MetricsRegistry().histogram("lat_seconds")
        assert hist.buckets == DEFAULT_BUCKETS

    def test_nan_observation_rejected(self):
        hist = MetricsRegistry().histogram("lat_seconds")
        with pytest.raises(ValueError):
            hist.observe(math.nan)


class TestKindConflicts:
    def test_same_name_different_kind_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_families_sorted(self):
        reg = MetricsRegistry()
        reg.gauge("b")
        reg.counter("a_total")
        reg.histogram("c_seconds")
        names = [name for name, _, _, _ in reg.families()]
        kinds = [kind for _, kind, _, _ in reg.families()]
        assert names == ["a_total", "b", "c_seconds"]
        assert kinds == [KIND_COUNTER, KIND_GAUGE, KIND_HISTOGRAM]


class TestSnapshotMerge:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("events_total", pm="pm1").inc(3.0)
        reg.gauge("depth").set(2.0)
        reg.histogram("lat_seconds", buckets=(1.0,)).observe(0.5)
        return reg

    def test_merge_into_empty_equals_original(self):
        reg = self._populated()
        other = MetricsRegistry()
        other.merge_snapshot(reg.snapshot())
        assert other.snapshot() == reg.snapshot()

    def test_counters_add_gauges_win_histograms_add(self):
        reg = self._populated()
        reg.merge_snapshot(self._populated().snapshot())
        assert reg.counter("events_total", pm="pm1").value == 6.0
        assert reg.gauge("depth").value == 2.0
        hist = reg.histogram("lat_seconds", buckets=(1.0,))
        assert hist.count == 2 and hist.sum == 1.0

    def test_bucket_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("lat_seconds", buckets=(1.0,)).observe(0.5)
        other = MetricsRegistry()
        other.histogram("lat_seconds", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            reg.merge_snapshot(other.snapshot())

    def test_snapshot_roundtrips_through_json(self):
        import json

        reg = self._populated()
        snap = json.loads(json.dumps(reg.snapshot()))
        other = MetricsRegistry()
        other.merge_snapshot(snap)
        assert other.snapshot() == reg.snapshot()
