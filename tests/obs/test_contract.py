"""The SimTracer <-> SpanRecorder shared contract.

Both logs promise: bounded capacity with oldest-first eviction,
``emitted``/``dropped`` counters that keep running, optional source
filtering, empty-source rejection, and -- at the instrumentation layer
-- that nothing whatsoever is recorded when no sink is installed.
The parametrized backends keep the two implementations from drifting.
"""

from __future__ import annotations

import pytest

from repro.obs import runtime
from repro.obs.spans import Span, SpanRecorder
from repro.sim import SimTracer, Simulator


class TracerBackend:
    """SimTracer: events stamped with the simulation clock."""

    name = "simtracer"

    def make(self, **kw):
        self.sim = Simulator(seed=1)
        return SimTracer(self.sim, **kw)

    def emit(self, log, source="src", tag="m"):
        log.emit(source, tag)

    def entries(self, log, source=None):
        return log.events(source=source)

    def tag(self, entry):
        return entry.message


class RecorderBackend:
    """SpanRecorder: finished spans stamped with wall (and sim) clocks."""

    name = "spanrecorder"

    def make(self, **kw):
        return SpanRecorder(**kw)

    def emit(self, log, source="src", tag="m"):
        log.record(
            Span(
                name=tag, source=source, wall_start=0.0, wall_end=1.0
            )
        )

    def entries(self, log, source=None):
        return log.spans(source=source)

    def tag(self, entry):
        return entry.name


@pytest.fixture(params=[TracerBackend, RecorderBackend], ids=lambda c: c.name)
def backend(request):
    return request.param()


class TestSharedContract:
    def test_bounded_capacity_drops_oldest(self, backend):
        log = backend.make(capacity=3)
        for i in range(5):
            backend.emit(log, tag=str(i))
        assert len(log) == 3
        assert log.emitted == 5
        assert log.dropped == 2
        assert [backend.tag(e) for e in backend.entries(log)] == [
            "2", "3", "4",
        ]

    def test_capacity_must_be_positive(self, backend):
        with pytest.raises(ValueError):
            backend.make(capacity=0)

    def test_source_filter_skips_without_dropping(self, backend):
        log = backend.make(source_filter=lambda s: s == "keep")
        backend.emit(log, source="keep")
        backend.emit(log, source="noise")
        assert len(log) == 1
        assert log.emitted == 2
        assert log.dropped == 0
        assert backend.entries(log, source="noise") == []

    def test_empty_source_rejected(self, backend):
        log = backend.make()
        with pytest.raises(ValueError):
            backend.emit(log, source="")

    def test_tail_and_clear(self, backend):
        log = backend.make()
        for i in range(4):
            backend.emit(log, tag=str(i))
        assert [backend.tag(e) for e in log.tail(2)] == ["2", "3"]
        with pytest.raises(ValueError):
            log.tail(0)
        log.clear()
        assert len(log) == 0
        assert log.emitted == 4  # counters keep running


class TestNothingRecordedWhenUninstalled:
    """The zero-overhead side of the contract, at the call sites."""

    def test_obs_helpers_leave_no_trace(self):
        assert runtime.installed() is None
        with runtime.span("work", "test", cell="a"):
            runtime.inc("x_total")
        assert runtime.installed() is None  # still nothing to inspect

    def test_installed_collector_sees_what_uninstalled_missed(self):
        with runtime.collecting() as collector:
            with runtime.span("work", "test"):
                runtime.inc("x_total")
        assert len(collector.spans) == 1
        assert collector.metrics.counter("x_total").value == 1.0
        # Outside the scope the helpers are no-ops again.
        runtime.inc("x_total", 100.0)
        assert collector.metrics.counter("x_total").value == 1.0
