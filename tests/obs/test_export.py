"""Tests for the OpenMetrics / JSONL exporters and the obs-dir layout."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    METRICS_FILE,
    SPANS_FILE,
    SUMMARY_FILE,
    ObsExportError,
    build_summary,
    load_obs_dir,
    parse_openmetrics,
    parse_spans_jsonl,
    render_openmetrics,
    render_spans_jsonl,
    render_summary_text,
    validate_span,
    write_obs_dir,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.runtime import ObsCollector
from repro.obs.spans import Span


def _registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("events_total", "processed events", pm="pm1").inc(3.0)
    reg.counter("events_total", pm='we"ird\\pm').inc(1.0)
    reg.gauge("sim_time_seconds").set(42.5)
    reg.histogram("lat_seconds", buckets=(0.1, 1.0)).observe(0.05)
    reg.histogram("lat_seconds", buckets=(0.1, 1.0)).observe(0.5)
    reg.histogram("lat_seconds", buckets=(0.1, 1.0)).observe(5.0)
    return reg


def _span(**kw) -> Span:
    base = dict(name="work", source="test", wall_start=0.0, wall_end=1.0)
    base.update(kw)
    return Span(**base)


class TestOpenMetrics:
    def test_render_parse_roundtrip(self):
        text = render_openmetrics(_registry())
        families = parse_openmetrics(text)
        assert set(families) == {"events", "sim_time_seconds", "lat_seconds"}
        assert families["events"]["kind"] == "counter"
        assert families["events"]["help"] == "processed events"
        # Label values survive escaping.
        sample_labels = [s[1] for s in families["events"]["samples"]]
        assert {"pm": 'we"ird\\pm'} in sample_labels

    def test_counter_family_strips_total_suffix(self):
        text = render_openmetrics(_registry())
        assert "# TYPE events counter" in text
        assert 'events_total{pm="pm1"} 3' in text

    def test_histogram_buckets_cumulative_with_inf(self):
        text = render_openmetrics(_registry())
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text
        assert "lat_seconds_sum 5.55" in text

    def test_ends_with_eof(self):
        assert render_openmetrics(MetricsRegistry()).endswith("# EOF\n")

    def test_missing_eof_rejected(self):
        with pytest.raises(ObsExportError, match="EOF"):
            parse_openmetrics("# TYPE x gauge\nx 1\n")

    def test_sample_without_family_rejected(self):
        with pytest.raises(ObsExportError, match="no declared family"):
            parse_openmetrics("orphan 1\n# EOF\n")

    def test_malformed_sample_rejected(self):
        with pytest.raises(ObsExportError, match="malformed"):
            parse_openmetrics("# TYPE x gauge\nx one two three\n# EOF\n")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ObsExportError, match="unknown metric kind"):
            parse_openmetrics("# TYPE x untyped\n# EOF\n")


class TestSpansJsonl:
    def test_roundtrip(self):
        spans = [
            _span(),
            _span(sim_start=0.0, sim_end=3.0, labels=(("cell", "a"),)),
        ]
        rows = parse_spans_jsonl(render_spans_jsonl(spans))
        assert [Span.from_dict(r) for r in rows] == spans

    def test_validate_rejects_bad_rows(self):
        good = _span().as_dict()
        validate_span(good)
        for mutation in (
            {"name": ""},
            {"wall_end": -1.0},
            {"sim_start": 1.0},  # sim_end still null
            {"status": "maybe"},
            {"labels": {"k": 1}},
        ):
            bad = dict(good, **mutation)
            with pytest.raises(ObsExportError):
                validate_span(bad)

    def test_parse_reports_line_numbers(self):
        with pytest.raises(ObsExportError, match="line 2"):
            parse_spans_jsonl(
                render_spans_jsonl([_span()]) + "not json\n"
            )


class TestSummaryAndObsDir:
    def _collector(self) -> ObsCollector:
        collector = ObsCollector()
        collector.metrics.counter("events_total").inc(7.0)
        collector.record_span(_span(source="sim"))
        collector.record_span(_span(source="executor", status="error"))
        return collector

    def test_build_summary(self):
        summary = build_summary(self._collector())
        assert summary["spans"] == 2
        assert summary["span_sources"] == ["executor", "sim"]
        assert summary["per_source"]["executor"]["errors"] == 1
        assert summary["counters"]["events_total"] == 7.0

    def test_render_summary_text(self):
        text = render_summary_text(build_summary(self._collector()))
        assert "spans recorded:    2" in text
        assert "events_total" in text

    def test_write_then_load_roundtrip(self, tmp_path):
        out = tmp_path / "obs"
        summary = write_obs_dir(self._collector(), out)
        for name in (METRICS_FILE, SPANS_FILE, SUMMARY_FILE):
            assert (out / name).is_file()
        metrics, spans, loaded = load_obs_dir(out)
        assert loaded == json.loads(json.dumps(summary))
        assert len(spans) == 2
        assert "events" in metrics

    def test_load_missing_dir_rejected(self, tmp_path):
        with pytest.raises(ObsExportError, match="not an observability"):
            load_obs_dir(tmp_path / "nope")

    def test_load_missing_file_rejected(self, tmp_path):
        out = tmp_path / "obs"
        write_obs_dir(self._collector(), out)
        (out / SPANS_FILE).unlink()
        with pytest.raises(ObsExportError, match=SPANS_FILE):
            load_obs_dir(out)

    def test_load_span_count_mismatch_rejected(self, tmp_path):
        out = tmp_path / "obs"
        write_obs_dir(self._collector(), out)
        (out / SPANS_FILE).write_text(
            render_spans_jsonl([_span(source="sim")])
        )
        with pytest.raises(ObsExportError, match="claims 2"):
            load_obs_dir(out)

    def test_load_corrupt_metrics_rejected(self, tmp_path):
        out = tmp_path / "obs"
        write_obs_dir(self._collector(), out)
        (out / METRICS_FILE).write_text("garbage\n")
        with pytest.raises(ObsExportError):
            load_obs_dir(out)
