"""Tests for span records, the recorder, and the ``span()`` helper."""

from __future__ import annotations

import pytest

from repro.obs import runtime
from repro.obs.runtime import (
    SPAN_WALL_METRIC,
    ObsCollector,
    collecting,
    inc,
    observe,
    set_gauge,
    span,
)
from repro.obs.spans import STATUS_ERROR, STATUS_OK, Span, SpanRecorder
from repro.sim import Simulator


def _span(source="test", name="work", start=0.0, end=1.0, **kw):
    return Span(
        name=name, source=source, wall_start=start, wall_end=end, **kw
    )


class TestSpan:
    def test_elapsed(self):
        s = _span(start=1.0, end=3.5, sim_start=0.0, sim_end=10.0)
        assert s.wall_elapsed == 2.5
        assert s.sim_elapsed == 10.0

    def test_sim_elapsed_none_without_sim_stamps(self):
        assert _span().sim_elapsed is None

    def test_dict_roundtrip(self):
        s = _span(
            sim_start=0.0, sim_end=2.0, status=STATUS_ERROR,
            labels=(("cell", "cpu-0"),),
        )
        assert Span.from_dict(s.as_dict()) == s

    def test_render_mentions_source_and_status(self):
        text = _span(status=STATUS_ERROR).render()
        assert "test:work" in text
        assert "error" in text


class TestSpanHelper:
    def test_uninstalled_is_a_bare_noop(self):
        assert runtime.installed() is None
        with span("work", "test"):
            pass  # must not raise, record, or read any clock

    def test_records_wall_and_sim_stamps(self):
        sim = Simulator(seed=1)
        with collecting() as collector:
            with span("work", "test", sim=sim, cell="a"):
                pass
        (recorded,) = collector.spans.spans()
        assert recorded.name == "work"
        assert recorded.wall_end >= recorded.wall_start
        assert recorded.sim_start == 0.0 and recorded.sim_end == 0.0
        assert recorded.status == STATUS_OK
        assert recorded.labels == (("cell", "a"),)

    def test_exception_marks_error_and_propagates(self):
        with collecting() as collector:
            with pytest.raises(RuntimeError):
                with span("work", "test"):
                    raise RuntimeError("boom")
        (recorded,) = collector.spans.spans()
        assert recorded.status == STATUS_ERROR

    def test_span_feeds_wall_histogram(self):
        with collecting() as collector:
            with span("work", "test"):
                pass
        hist = collector.metrics.histogram(SPAN_WALL_METRIC, source="test")
        assert hist.count == 1


class TestRuntimeHelpers:
    def test_helpers_noop_when_uninstalled(self):
        assert runtime.installed() is None
        inc("x_total")
        set_gauge("g", 1.0)
        observe("h", 0.5)  # nothing to assert beyond "does not raise"

    def test_helpers_record_when_installed(self):
        with collecting() as collector:
            inc("x_total", 2.0, pm="pm1")
            set_gauge("g", 7.0)
            observe("h", 0.5)
        assert collector.metrics.counter("x_total", pm="pm1").value == 2.0
        assert collector.metrics.gauge("g").value == 7.0
        assert collector.metrics.histogram("h").count == 1

    def test_collecting_restores_previous_state(self):
        outer = runtime.install(ObsCollector())
        runtime.set_default(False)
        with collecting():
            assert runtime.installed() is not outer
            assert runtime.default_enabled()
        assert runtime.installed() is outer
        assert not runtime.default_enabled()
        runtime.uninstall()


class TestCollectorSnapshot:
    def test_snapshot_merge_combines_metrics_and_spans(self):
        child = ObsCollector()
        child.metrics.counter("x_total").inc(3.0)
        child.record_span(_span())
        parent = ObsCollector()
        parent.merge_snapshot(child.snapshot())
        parent.merge_snapshot(child.snapshot())
        assert parent.metrics.counter("x_total").value == 6.0
        assert len(parent.spans) == 2

    def test_unknown_snapshot_schema_rejected(self):
        with pytest.raises(ValueError):
            ObsCollector().merge_snapshot({"schema": "bogus/9"})
