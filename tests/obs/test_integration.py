"""End-to-end observability: experiments, executor merge, CLI, placement.

The two load-bearing guarantees:

* **Byte identity** -- attaching a collector never changes what a run
  computes or writes; disabling it leaves artifacts byte-identical.
* **Process transparency** -- a ``--jobs N`` run reports the same
  deterministic counters and span census a serial run would, because
  worker cells snapshot their scoped collector into the outcome and
  the parent merges it.
"""

from __future__ import annotations

from repro.cli import main
from repro.obs import runtime
from repro.obs.export import load_obs_dir
from repro.obs.registry import KIND_COUNTER
from repro.perf.cells import MicrobenchCell
from repro.perf.executor import run_cells


def _cells(n=3):
    return [
        MicrobenchCell(
            kind="cpu", n_vms=1, level=20.0 + 10 * i, index=i,
            duration=3.0, seed=42,
        )
        for i in range(n)
    ]


def _counter_values(collector):
    out = {}
    for name, kind, _help, children in collector.metrics.families():
        if kind == KIND_COUNTER:
            for key, child in children:
                out[(name, key)] = child.value
    return out


class TestExperimentCoverage:
    def test_fig5a_spans_cover_required_sources(self):
        from repro.experiments import runner

        with runtime.collecting() as collector:
            runner.run("fig5a", fast=True)
        sources = set(collector.spans.sources())
        assert {"sim", "executor", "supervisor", "monitor"} <= sources
        counters = _counter_values(collector)
        assert counters[("repro_sim_events_total", ())] > 0

    def test_observed_run_matches_unobserved_run(self):
        from repro.experiments import runner

        plain = runner.run("fig5a", fast=True)
        with runtime.collecting():
            observed = runner.run("fig5a", fast=True)
        assert observed.series == plain.series
        assert observed.render() == plain.render()


class TestExecutorMerge:
    def test_pool_counters_match_serial(self):
        cells = _cells()
        with runtime.collecting() as serial:
            serial_out = run_cells(cells, jobs=1)
        with runtime.collecting() as pooled:
            pooled_out = run_cells(cells, jobs=2)
        assert pooled_out == serial_out
        assert _counter_values(pooled) == _counter_values(serial)
        assert len(pooled.spans) == len(serial.spans)

    def test_cache_hit_counters(self, tmp_path):
        from repro.perf.cache import ResultCache

        cells = _cells()
        cache = ResultCache(tmp_path)
        with runtime.collecting() as collector:
            run_cells(cells, cache=cache)
            run_cells(cells, cache=cache)
        counters = _counter_values(collector)
        hits = sum(
            v for (name, _), v in counters.items()
            if name == "repro_executor_cache_hits_total"
        )
        misses = sum(
            v for (name, _), v in counters.items()
            if name == "repro_executor_cache_misses_total"
        )
        assert misses == len(cells)
        assert hits == len(cells)

    def test_cached_outcomes_still_merge_spans(self, tmp_path):
        from repro.perf.cache import ResultCache

        cells = _cells()
        with runtime.collecting():
            run_cells(cells, cache=ResultCache(tmp_path))
        with runtime.collecting() as warm:
            run_cells(cells, cache=ResultCache(tmp_path))
        # Cached cells replay the spans their original execution
        # recorded (shipped inside the outcome snapshot).
        assert "sim" in warm.spans.sources()


class TestPlacementCoverage:
    def test_control_loop_emits_placement_spans(self):
        from repro.cluster import Cluster
        from repro.models import TrainingConfig, train_multi_vm_model
        from repro.placement import ResilientControlLoop
        from repro.sim import Simulator
        from repro.workloads import CpuHog
        from repro.xen import VMSpec

        model = train_multi_vm_model(
            TrainingConfig(vm_counts=(1, 2), duration=6.0, warmup=2.0)
        )
        sim = Simulator(seed=13)
        cl = Cluster(sim)
        cl.create_pm("pm1")
        cl.create_pm("pm2")
        vm = cl.place_vm(VMSpec(name="vm0", mem_mb=256), "pm1")
        CpuHog(50.0).attach(vm)
        cl.start()
        with runtime.collecting() as collector:
            loop = ResilientControlLoop(cl, model, interval=2.0)
            loop.start()
            cl.run(10.0)
        spans = collector.spans.spans(source="placement")
        assert len(spans) == loop.rounds > 0
        assert spans[0].sim_elapsed is not None
        counters = _counter_values(collector)
        assert counters[
            ("repro_placement_rounds_total", ())
        ] == loop.rounds


class TestCliObs:
    def test_obs_dir_export_and_byte_identity(self, tmp_path, capsys):
        plain_out = tmp_path / "plain"
        obs_out = tmp_path / "observed"
        obs_dir = tmp_path / "obs"
        assert main(
            ["run", "fig5a", "--fast", "--out", str(plain_out)]
        ) == 0
        assert main(
            ["run", "fig5a", "--fast", "--out", str(obs_out),
             "--obs-dir", str(obs_dir)]
        ) == 0
        err = capsys.readouterr().err
        assert "observability: wrote" in err
        for name in ("fig5a.txt", "fig5a.csv"):
            assert (obs_out / name).read_bytes() == (
                plain_out / name
            ).read_bytes()
        metrics, spans, summary = load_obs_dir(obs_dir)
        assert {"sim", "executor", "supervisor", "monitor"} <= set(
            summary["span_sources"]
        )
        assert spans
        # The collector is torn down after export: later runs in this
        # process record nothing.
        assert runtime.installed() is None
        assert not runtime.default_enabled()

    def test_obs_summary_and_require(self, tmp_path, capsys):
        obs_dir = tmp_path / "obs"
        main(["run", "fig5a", "--fast", "--obs-dir", str(obs_dir),
              "--out", str(tmp_path / "o")])
        capsys.readouterr()
        assert main(
            ["obs", "summary", "--obs-dir", str(obs_dir),
             "--require", "sim,executor,monitor"]
        ) == 0
        assert "span sources:" in capsys.readouterr().out
        assert main(
            ["obs", "summary", "--obs-dir", str(obs_dir),
             "--require", "sim,teapot"]
        ) == 1
        assert "teapot" in capsys.readouterr().err

    def test_obs_spans_and_export(self, tmp_path, capsys):
        obs_dir = tmp_path / "obs"
        main(["run", "fig5a", "--fast", "--obs-dir", str(obs_dir),
              "--out", str(tmp_path / "o")])
        capsys.readouterr()
        assert main(
            ["obs", "spans", "--obs-dir", str(obs_dir), "--source", "sim"]
        ) == 0
        captured = capsys.readouterr()
        assert "sim:" in captured.out
        assert main(["obs", "export", "--obs-dir", str(obs_dir)]) == 0
        assert capsys.readouterr().out.endswith("# EOF\n")

    def test_obs_on_missing_dir_is_usage_error(self, tmp_path, capsys):
        assert main(
            ["obs", "summary", "--obs-dir", str(tmp_path / "nope")]
        ) == 2
        assert "error:" in capsys.readouterr().err
