"""Tests for the online overhead-prediction service."""
