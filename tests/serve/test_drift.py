"""Tests for the Page-Hinkley drift detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.drift import PageHinkley


class TestPageHinkley:
    def test_no_alarm_on_stationary_noise(self):
        rng = np.random.default_rng(0)
        ph = PageHinkley(delta=0.05, lambda_=4.0, min_samples=30)
        fired = [ph.update(abs(v)) for v in rng.normal(0.0, 0.02, 2000)]
        assert not any(fired)
        assert ph.alarms == 0

    def test_alarms_on_level_shift(self):
        rng = np.random.default_rng(1)
        ph = PageHinkley(delta=0.05, lambda_=4.0, min_samples=30)
        for v in rng.normal(0.02, 0.005, 200):
            assert not ph.update(abs(v))
        fired_at = None
        for i, v in enumerate(rng.normal(0.5, 0.02, 200)):
            if ph.update(abs(v)):
                fired_at = i
                break
        assert fired_at is not None
        # The shift is ~0.43 above the old mean per sample against a
        # lambda of 4 -- detection within a couple dozen samples.
        assert fired_at < 50
        assert ph.alarms == 1

    def test_burn_in_suppresses_early_alarms(self):
        ph = PageHinkley(delta=0.0, lambda_=0.5, min_samples=50)
        # A huge step immediately: must stay silent for min_samples.
        for i in range(49):
            assert not ph.update(10.0 if i else 0.0)

    def test_alarm_is_edge_triggered_and_resets(self):
        ph = PageHinkley(delta=0.0, lambda_=1.0, min_samples=2)
        ph.update(0.0)
        ph.update(0.0)
        assert ph.update(5.0)
        # Statistics reset: the very next sample cannot re-alarm.
        assert ph.n == 1 or not ph.update(0.0)
        assert ph.alarms == 1

    def test_score_property(self):
        ph = PageHinkley()
        assert ph.score == 0.0
        ph.update(1.0)
        assert ph.score >= 0.0

    def test_determinism(self):
        rng = np.random.default_rng(2)
        values = [abs(v) for v in rng.normal(0.1, 0.05, 500)]
        a, b = PageHinkley(), PageHinkley()
        assert [a.update(v) for v in values] == [b.update(v) for v in values]
        assert (a.n, a.mean, a.cum, a.cum_min) == (b.n, b.mean, b.cum, b.cum_min)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"delta": -0.1},
            {"lambda_": 0.0},
            {"min_samples": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PageHinkley(**kwargs)
