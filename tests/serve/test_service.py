"""Tests for the crash-safe, drift-aware prediction service."""

from __future__ import annotations

import math
import warnings

import numpy as np
import pytest

from repro.monitor.metrics import ResourceVector
from repro.serve.service import (
    ConfigMismatchWarning,
    QUERY_DEGRADED,
    QUERY_OK,
    QUERY_UNAVAILABLE,
    VERDICT_ACCEPTED,
    VERDICT_DUPLICATE,
    VERDICT_INVALID,
    VERDICT_QUARANTINED,
    VERDICT_SHED,
    VERDICT_STALE,
    PredictionService,
    ServiceConfig,
)

UTIL = ResourceVector(0.3, 0.3, 0.1, 0.1)


def _sample(seq: int, rng: np.random.Generator):
    """One synthetic monitor sample with a fixed linear ground truth."""
    x = tuple(float(v) for v in rng.uniform(0.05, 0.9, 4))
    y = {
        t: 0.02 + 0.2 * sum(x)
        for t in ("dom0.cpu", "hyp.cpu", "pm.mem", "pm.io", "pm.bw")
    }
    return seq, x, y


def _drive(service: PredictionService, ticks: int, *, pm: str = "pm00",
           seed: int = 0, start_tick: int = 0, start_seq: int = 0) -> int:
    """Deliver one sample per tick and advance; returns the next seq."""
    rng = np.random.default_rng(seed)
    seq = start_seq
    for tick in range(start_tick, start_tick + ticks):
        s, x, y = _sample(seq, rng)
        service.deliver(pm, s, tick, x, y)
        service.tick(tick)
        seq += 1
    return seq


def _config(**overrides) -> ServiceConfig:
    base = dict(min_fit_samples=8, staleness_s=10.0,
                quarantine_strikes=2, strike_window_s=5.0, quarantine_s=8.0)
    base.update(overrides)
    return ServiceConfig(**base)


class TestIngestVerdicts:
    def test_accept_and_duplicate(self, tmp_path):
        service = PredictionService(tmp_path, config=_config())
        rng = np.random.default_rng(0)
        seq, x, y = _sample(0, rng)
        assert service.deliver("pm00", seq, 0, x, y) == VERDICT_ACCEPTED
        assert service.deliver("pm00", seq, 0, x, y) == VERDICT_DUPLICATE
        assert service.stats.accepted == 1
        assert service.stats.duplicates == 1

    def test_stale_sequence_outside_reorder_window(self, tmp_path):
        service = PredictionService(
            tmp_path, config=_config(reorder_window=4)
        )
        rng = np.random.default_rng(0)
        for seq in range(10):
            s, x, y = _sample(seq, rng)
            service.deliver("pm00", s, 0, x, y)
        s, x, y = _sample(2, rng)
        assert service.deliver("pm00", 2, 0, x, y) == VERDICT_STALE

    def test_reordered_but_in_window_accepted(self, tmp_path):
        service = PredictionService(
            tmp_path, config=_config(reorder_window=8)
        )
        rng = np.random.default_rng(0)
        for seq in (0, 1, 3, 4):
            s, x, y = _sample(seq, rng)
            service.deliver("pm00", seq, 0, x, y)
        _, x, y = _sample(2, rng)
        assert service.deliver("pm00", 2, 0, x, y) == VERDICT_ACCEPTED

    def test_invalid_samples_strike_then_quarantine(self, tmp_path):
        service = PredictionService(tmp_path, config=_config())
        rng = np.random.default_rng(0)
        _, x, y = _sample(0, rng)
        bad = (math.nan,) + x[1:]
        assert service.deliver("pm00", 0, 0, bad, y) == VERDICT_INVALID
        assert service.deliver("pm00", 1, 1, bad, y) == VERDICT_INVALID
        assert service.stats.quarantines == 1
        # Third sample is clean but the stream is quarantined now.
        _, x2, y2 = _sample(2, rng)
        assert service.deliver("pm00", 2, 2, x2, y2) == VERDICT_QUARANTINED
        # Quarantine expires after quarantine_s.
        assert service.deliver("pm00", 3, 12, x2, y2) == VERDICT_ACCEPTED

    def test_outlier_magnitude_strikes(self, tmp_path):
        service = PredictionService(tmp_path, config=_config())
        rng = np.random.default_rng(0)
        _, x, y = _sample(0, rng)
        y_bad = dict(y, **{"dom0.cpu": 1.0e12})
        assert service.deliver("pm00", 0, 0, x, y_bad) == VERDICT_INVALID

    def test_bounded_queue_sheds_deterministically(self, tmp_path):
        service = PredictionService(
            tmp_path, config=_config(queue_capacity=4)
        )
        rng = np.random.default_rng(0)
        verdicts = []
        for seq in range(6):
            s, x, y = _sample(seq, rng)
            verdicts.append(service.deliver("pm00", seq, 0, x, y))
        assert verdicts == [VERDICT_ACCEPTED] * 4 + [VERDICT_SHED] * 2
        assert service.stats.shed == 2

    def test_old_tick_delivery_is_stale(self, tmp_path):
        service = PredictionService(tmp_path, config=_config())
        _drive(service, 5)
        rng = np.random.default_rng(9)
        s, x, y = _sample(99, rng)
        assert service.deliver("pm00", 99, 2, x, y) == VERDICT_STALE


class TestQueryPath:
    def test_unfitted_model_is_never_served(self, tmp_path):
        service = PredictionService(tmp_path, config=_config())
        answer = service.query("pm00", UTIL, now=0)
        assert answer.status == QUERY_UNAVAILABLE
        assert answer.predictions is None
        assert answer.version is None
        _drive(service, 3)  # below min_fit_samples: still not promoted
        answer = service.query("pm00", UTIL, now=3)
        assert answer.status == QUERY_UNAVAILABLE
        assert answer.reason == "no promoted model"

    def test_promotion_enables_ok_answers(self, tmp_path):
        service = PredictionService(tmp_path, config=_config())
        _drive(service, 12)
        answer = service.query("pm00", UTIL, now=12)
        assert answer.status == QUERY_OK
        assert not answer.degraded
        assert answer.version == 1
        assert set(answer.predictions) >= {"dom0.cpu", "pm.cpu"}
        # Ground truth: every target is 0.02 + 0.2 * sum(x).
        want = 0.02 + 0.2 * (0.3 + 0.3 + 0.1 + 0.1)
        assert answer.predictions["dom0.cpu"] == pytest.approx(want, abs=0.05)

    def test_staleness_circuit_breaker_degrades(self, tmp_path):
        service = PredictionService(tmp_path, config=_config())
        _drive(service, 12)
        late = service.query("pm00", UTIL, now=500)
        assert late.status == QUERY_DEGRADED
        assert late.degraded and "dark" in late.reason
        # Last-good answer still comes from the promoted version.
        assert late.version == 1
        assert late.predictions is not None

    def test_quarantined_stream_degrades_but_answers(self, tmp_path):
        service = PredictionService(tmp_path, config=_config())
        next_seq = _drive(service, 12)
        bad = (math.nan, 0.1, 0.1, 0.1)
        y = {t: 0.1 for t in ("dom0.cpu", "hyp.cpu", "pm.mem", "pm.io",
                              "pm.bw")}
        service.deliver("pm00", next_seq, 12, bad, y)
        service.deliver("pm00", next_seq + 1, 12, bad, y)
        answer = service.query("pm00", UTIL, now=12)
        assert answer.status == QUERY_DEGRADED
        assert answer.reason == "stream quarantined"
        assert answer.version == 1
        assert answer.predictions is not None

    def test_unknown_pm_is_structured_not_raised(self, tmp_path):
        service = PredictionService(tmp_path, config=_config())
        answer = service.query("nope", UTIL, now=0)
        assert answer.status == QUERY_UNAVAILABLE
        assert answer.reason == "unknown pm"

    def test_latency_model_reflects_queue_depth(self, tmp_path):
        service = PredictionService(
            tmp_path,
            config=_config(queue_capacity=64, drain_per_tick=1),
        )
        rng = np.random.default_rng(0)
        for seq in range(10):
            s, x, y = _sample(seq, rng)
            service.deliver("pm00", seq, 0, x, y)
        shallow = service.query("pm00", UTIL, now=0)
        service.tick(0)  # drains one
        drained = service.query("pm00", UTIL, now=0)
        assert shallow.latency_ms > drained.latency_ms


class TestDriftAndRollback:
    def test_drift_opens_refit_epoch_and_repromotes(self, tmp_path):
        service = PredictionService(
            tmp_path,
            config=_config(min_fit_samples=8, ph_min_samples=10,
                           ph_lambda=2.0),
        )
        rng = np.random.default_rng(0)
        seq = 0
        for tick in range(40):
            x = tuple(float(v) for v in rng.uniform(0.05, 0.9, 4))
            scale = 0.2 if tick < 20 else 0.9  # regime shift
            y = {t: 0.02 + scale * sum(x)
                 for t in ("dom0.cpu", "hyp.cpu", "pm.mem", "pm.io", "pm.bw")}
            service.deliver("pm00", seq, tick, x, y)
            service.tick(tick)
            seq += 1
        assert service.stats.drift_alarms >= 1
        assert service.registry.max_version >= 2
        final = service.query("pm00", UTIL, now=39)
        assert final.status == QUERY_OK
        # Post-refit answers track the new regime.
        want = 0.02 + 0.9 * (0.3 + 0.3 + 0.1 + 0.1)
        assert final.predictions["dom0.cpu"] == pytest.approx(want, abs=0.1)

    def test_rollback_changes_the_answering_version(self, tmp_path):
        service = PredictionService(
            tmp_path,
            config=_config(min_fit_samples=8, ph_min_samples=10,
                           ph_lambda=2.0),
        )
        rng = np.random.default_rng(0)
        seq = 0
        for tick in range(40):
            x = tuple(float(v) for v in rng.uniform(0.05, 0.9, 4))
            scale = 0.2 if tick < 20 else 0.9
            y = {t: 0.02 + scale * sum(x)
                 for t in ("dom0.cpu", "hyp.cpu", "pm.mem", "pm.io", "pm.bw")}
            service.deliver("pm00", seq, tick, x, y)
            service.tick(tick)
            seq += 1
        active = service.registry.active("pm00").version
        assert active >= 2
        target = service.rollback("pm00", now=40)
        assert target.version < active
        answer = service.query("pm00", UTIL, now=39)
        assert answer.version == target.version
        # Rollback survives a restart (it is ledgered).
        service.wal.close()
        reopened = PredictionService(tmp_path)
        assert reopened.registry.active("pm00").version == target.version
        reopened.wal.close()


class TestCrashRecovery:
    def test_replay_restores_byte_identical_state(self, tmp_path):
        cfg = _config(min_fit_samples=8)
        clean_root = tmp_path / "clean"
        crash_root = tmp_path / "crash"
        clean = PredictionService(clean_root, config=cfg)
        _drive(clean, 30, seed=4)
        clean.wal.close()
        # Crash run: stop at tick 17 (no flush -- state abandoned), then
        # a fresh process re-drives the same trace from tick zero.
        crashed = PredictionService(crash_root, config=cfg)
        _drive(crashed, 17, seed=4)
        del crashed  # SIGKILL stand-in: no close, no drain
        resumed = PredictionService(crash_root, config=cfg)
        assert resumed.stats.recovered_records > 0
        _drive(resumed, 30, seed=4)
        resumed.wal.close()

        def tree(root):
            return {
                p.relative_to(root).as_posix(): p.read_bytes()
                for p in sorted(root.rglob("*")) if p.is_file()
            }

        assert tree(clean_root) == tree(crash_root)

    def test_replay_restores_model_coefficients_exactly(self, tmp_path):
        cfg = _config(min_fit_samples=8)
        service = PredictionService(tmp_path, config=cfg)
        _drive(service, 25, seed=7)
        want = {
            t: service._pms["pm00"].model.coefficients(t)
            for t in ("dom0.cpu", "pm.bw")
        }
        service.wal.close()
        reopened = PredictionService(tmp_path, config=cfg)
        # Recovery leaves the final tick's drain pending until the
        # driver advances; complete the timeline before comparing.
        reopened.tick(24)
        for t, m in want.items():
            got = reopened._pms["pm00"].model.coefficients(t)
            assert got.intercept == m.intercept  # repro: noqa[REP004] replay must be bit-exact
            np.testing.assert_array_equal(got.coef, m.coef)
        reopened.wal.close()

    def test_quarantine_state_survives_restart(self, tmp_path):
        cfg = _config()
        service = PredictionService(tmp_path, config=cfg)
        bad = (math.nan, 0.1, 0.1, 0.1)
        y = {t: 0.1 for t in ("dom0.cpu", "hyp.cpu", "pm.mem", "pm.io",
                              "pm.bw")}
        service.deliver("pm00", 0, 0, bad, y)
        service.deliver("pm00", 1, 0, bad, y)
        service.wal.close()
        reopened = PredictionService(tmp_path, config=cfg)
        # Strike records replayed: the stream is still quarantined.
        _, reason = reopened._degradation(reopened._pms["pm00"], 1.0)
        assert reason == "stream quarantined"
        rng = np.random.default_rng(0)
        _, x, y2 = _sample(2, rng)
        assert reopened.deliver("pm00", 2, 1, x, y2) == VERDICT_QUARANTINED
        reopened.wal.close()

    def test_ticks_before_recovered_clock_are_noops(self, tmp_path):
        cfg = _config()
        service = PredictionService(tmp_path, config=cfg)
        _drive(service, 10)
        service.wal.close()
        reopened = PredictionService(tmp_path, config=cfg)
        now = reopened.now
        reopened.tick(2)
        assert reopened.now == now  # repro: noqa[REP004] exact clock equality is the contract
        reopened.wal.close()


class TestStatsAndStatus:
    def test_status_report_mentions_streams_and_registry(self, tmp_path):
        service = PredictionService(tmp_path, config=_config())
        _drive(service, 12)
        text = service.status_report()
        assert "pm00" in text
        assert "model registry" in text
        assert "service stats" in text

    def test_stats_as_dict_round_trip(self, tmp_path):
        service = PredictionService(tmp_path, config=_config())
        _drive(service, 5)
        d = service.stats.as_dict()
        assert d["accepted"] == 5
        assert d["delivered"] == 5


class TestConfigPinning:
    def test_first_open_pins_and_reopen_inherits(self, tmp_path):
        custom = _config(min_fit_samples=12)
        service = PredictionService(tmp_path, config=custom)
        service.wal.close()
        assert (tmp_path / "service.json").is_file()
        reopened = PredictionService(tmp_path)
        reopened.wal.close()
        assert reopened.config == custom

    def test_differing_explicit_config_warns_and_loses(self, tmp_path):
        custom = _config(min_fit_samples=12)
        PredictionService(tmp_path, config=custom).wal.close()
        with pytest.warns(ConfigMismatchWarning, match="min_fit_samples"):
            reopened = PredictionService(
                tmp_path, config=_config(min_fit_samples=20)
            )
        reopened.wal.close()
        assert reopened.config == custom

    def test_reopen_of_completed_state_dir_is_read_only(self, tmp_path):
        # The replay timeline depends on the config the WAL was written
        # under; pinning makes a bare reopen (status/query) replay the
        # exact history -- no divergence warnings, no ledger appends.
        service = PredictionService(tmp_path, config=_config())
        _drive(service, 40)
        service.flush()
        before = {
            p.name: p.read_bytes()
            for p in sorted(tmp_path.rglob("*")) if p.is_file()
        }
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            reopened = PredictionService(tmp_path)
        reopened.wal.close()
        assert reopened.registry.promotions == 0
        assert reopened.registry.replayed >= 1
        after = {
            p.name: p.read_bytes()
            for p in sorted(tmp_path.rglob("*")) if p.is_file()
        }
        assert before == after

    def test_damaged_pinned_config_is_repinned(self, tmp_path):
        PredictionService(tmp_path, config=_config()).wal.close()
        (tmp_path / "service.json").write_text("not a ledger line\n")
        with pytest.warns(ConfigMismatchWarning, match="damaged"):
            reopened = PredictionService(tmp_path, config=_config())
        reopened.wal.close()
        assert reopened.config == _config()


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_capacity": 0},
            {"drain_per_tick": 0},
            {"min_fit_samples": 1},
            {"quarantine_strikes": 0},
            {"staleness_s": 0.0},
            {"reorder_window": 0},
            {"outlier_limit": 0.0},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)
