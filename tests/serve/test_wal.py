"""Tests for the checksummed, truncation-tolerant sample WAL."""

from __future__ import annotations

import pytest

from repro.serve.wal import (
    RECORD_SAMPLE,
    RECORD_STRIKE,
    SampleWAL,
    WalCorruptionWarning,
    WalRecord,
    decode_line,
    encode_line,
)


def _sample(seq: int, tick: int = 0, pm: str = "pm00") -> WalRecord:
    return WalRecord(
        kind=RECORD_SAMPLE, pm=pm, seq=seq, tick=tick,
        x=(0.1, 0.2, 0.3, 0.4),
        y=(("dom0.cpu", 0.5), ("hyp.cpu", 0.25)),
    )


class TestCodec:
    def test_round_trip(self):
        body = {"k": "sample", "pm": "pm00", "seq": 3, "t": 7,
                "x": [0.1], "y": {"dom0.cpu": 0.5}}
        assert decode_line(encode_line(body)) == body

    def test_float_exactness(self):
        # json serializes floats with repr, so values survive exactly.
        value = 0.1 + 0.2
        body = decode_line(encode_line({"v": value}))
        assert body["v"] == value  # repro: noqa[REP004] codec exactness is the property under test

    def test_rejects_flipped_bits(self):
        line = encode_line({"k": "strike", "pm": "a", "seq": 1, "t": 0})
        corrupted = line.replace('"seq":1', '"seq":2')
        assert decode_line(corrupted) is None

    def test_rejects_garbage(self):
        assert decode_line("not json") is None
        assert decode_line("[1,2,3]") is None
        assert decode_line('{"c":1}') is None
        assert decode_line('{"c":1,"v":3}') is None


class TestAppendRecover:
    def test_round_trip(self, tmp_path):
        wal = SampleWAL(tmp_path)
        records = [_sample(i, tick=i) for i in range(5)]
        for r in records:
            wal.append(r)
        wal.close()
        assert SampleWAL(tmp_path).recover() == records

    def test_strike_records_round_trip(self, tmp_path):
        wal = SampleWAL(tmp_path)
        strike = WalRecord(kind=RECORD_STRIKE, pm="pm01", seq=9, tick=4)
        wal.append(strike)
        wal.close()
        assert SampleWAL(tmp_path).recover() == [strike]

    def test_empty_and_missing(self, tmp_path):
        assert SampleWAL(tmp_path).recover() == []
        (tmp_path / "wal.jsonl").write_bytes(b"")
        assert SampleWAL(tmp_path).recover() == []

    def test_truncates_partial_tail(self, tmp_path):
        wal = SampleWAL(tmp_path)
        for i in range(3):
            wal.append(_sample(i))
        wal.close()
        path = tmp_path / "wal.jsonl"
        intact = path.read_bytes()
        # A SIGKILL mid-append leaves a partial final line.
        path.write_bytes(intact + b'{"c":123,"v":{"k":"sam')
        with pytest.warns(WalCorruptionWarning):
            recovered = SampleWAL(tmp_path).recover()
        assert recovered == [_sample(i) for i in range(3)]
        # Physically truncated back to the valid prefix.
        assert path.read_bytes() == intact

    def test_unterminated_but_parseable_tail_is_damaged(self, tmp_path):
        # A complete-looking record with no trailing newline must be
        # dropped: the next append would otherwise concatenate onto it.
        wal = SampleWAL(tmp_path)
        wal.append(_sample(0))
        wal.close()
        path = tmp_path / "wal.jsonl"
        intact = path.read_bytes()
        path.write_bytes(intact + encode_line(_sample(1).body()).encode())
        with pytest.warns(WalCorruptionWarning):
            recovered = SampleWAL(tmp_path).recover()
        assert recovered == [_sample(0)]
        assert path.read_bytes() == intact

    def test_append_after_recovery_is_byte_identical(self, tmp_path):
        # Interrupted-then-resumed log == clean log, byte for byte.
        clean_dir = tmp_path / "clean"
        crash_dir = tmp_path / "crash"
        records = [_sample(i, tick=i) for i in range(6)]
        clean = SampleWAL(clean_dir)
        for r in records:
            clean.append(r)
        clean.close()
        crash = SampleWAL(crash_dir)
        for r in records[:3]:
            crash.append(r)
        crash.close()
        path = crash_dir / "wal.jsonl"
        path.write_bytes(path.read_bytes() + b"{\"c\":9,\"v\":{")
        resumed = SampleWAL(crash_dir)
        with pytest.warns(WalCorruptionWarning):
            assert resumed.recover() == records[:3]
        for r in records[3:]:
            resumed.append(r)
        resumed.close()
        assert path.read_bytes() == (clean_dir / "wal.jsonl").read_bytes()

    def test_mid_log_corruption_truncates_from_there(self, tmp_path):
        wal = SampleWAL(tmp_path)
        for i in range(4):
            wal.append(_sample(i))
        wal.close()
        path = tmp_path / "wal.jsonl"
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1][:10] + b"X" + lines[1][11:]
        path.write_bytes(b"".join(lines))
        with pytest.warns(WalCorruptionWarning):
            recovered = SampleWAL(tmp_path).recover()
        # Only the prefix before the damage survives.
        assert recovered == [_sample(0)]

    def test_byte_size_and_iter(self, tmp_path):
        wal = SampleWAL(tmp_path)
        assert wal.byte_size() == 0
        wal.append(_sample(0))
        wal.close()
        assert wal.byte_size() > 0
        assert list(wal.iter_records()) == [_sample(0)]
