"""Tests for the versioned model registry."""

from __future__ import annotations

import pytest

from repro.perf import integrity
from repro.serve.registry import (
    MODEL_SCHEMA,
    ModelRegistry,
    RegistryError,
    RegistryReplayWarning,
)


def _targets(scale: float = 1.0):
    return {
        t: {"intercept": 0.01 * scale, "coef": [0.1 * scale] * 4}
        for t in ("dom0.cpu", "hyp.cpu", "pm.mem", "pm.io", "pm.bw")
    }


class TestPromote:
    def test_monotonic_versions_across_pms(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        v1 = reg.promote("pm00", _targets(1.0), tick=10, n_samples=24)
        v2 = reg.promote("pm01", _targets(2.0), tick=11, n_samples=24)
        v3 = reg.promote("pm00", _targets(3.0), tick=20, n_samples=24)
        assert (v1.version, v2.version, v3.version) == (1, 2, 3)
        assert reg.active("pm00").version == 3
        assert reg.active("pm01").version == 2
        assert reg.max_version == 3

    def test_snapshot_payload_round_trip(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        mv = reg.promote("pm00", _targets(1.5), tick=5, n_samples=30)
        payload = reg.load_payload(mv)
        assert payload["pm"] == "pm00"
        assert payload["n_samples"] == 30
        assert payload["targets"]["dom0.cpu"]["intercept"] == pytest.approx(
            0.015
        )

    def test_ledger_survives_reopen(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        reg.promote("pm00", _targets(1.0), tick=1, n_samples=24)
        reg.promote("pm00", _targets(2.0), tick=2, n_samples=24)
        reg.rollback("pm00", tick=3)
        reopened = ModelRegistry(tmp_path)
        assert reopened.active("pm00").version == 1
        assert [mv.version for mv in reopened.history("pm00")] == [1, 2]
        assert reopened.max_version == 2

    def test_replay_idempotency(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        a = reg.promote("pm00", _targets(1.0), tick=1, n_samples=24)
        b = reg.promote("pm00", _targets(2.0), tick=2, n_samples=24)
        before = sorted(
            (p.name, p.read_bytes()) for p in tmp_path.rglob("*") if p.is_file()
        )
        # A restarted service re-promotes the same content in the same
        # order: versions are matched, nothing is appended or rewritten.
        replayed = ModelRegistry(tmp_path)
        ra = replayed.promote("pm00", _targets(1.0), tick=1, n_samples=24)
        rb = replayed.promote("pm00", _targets(2.0), tick=2, n_samples=24)
        assert (ra, rb) == (a, b)
        assert replayed.promotions == 0
        assert replayed.replayed == 2
        after = sorted(
            (p.name, p.read_bytes()) for p in tmp_path.rglob("*") if p.is_file()
        )
        assert before == after
        # Post-replay promotions continue the monotonic sequence.
        c = replayed.promote("pm00", _targets(3.0), tick=3, n_samples=24)
        assert c.version == 3

    def test_replay_divergence_warns_and_appends_fresh(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        reg.promote("pm00", _targets(1.0), tick=1, n_samples=24)
        replayed = ModelRegistry(tmp_path)
        with pytest.warns(RegistryReplayWarning):
            fresh = replayed.promote(
                "pm00", _targets(99.0), tick=1, n_samples=24
            )
        assert fresh.version == 2
        assert replayed.active("pm00").version == 2


class TestRollback:
    def test_rollback_then_promote(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        reg.promote("pm00", _targets(1.0), tick=1, n_samples=24)
        reg.promote("pm00", _targets(2.0), tick=2, n_samples=24)
        back = reg.rollback("pm00", tick=3)
        assert back.version == 1
        nxt = reg.promote("pm00", _targets(3.0), tick=4, n_samples=24)
        assert nxt.version == 3
        assert reg.active("pm00").version == 3

    def test_rollback_requires_history(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        with pytest.raises(RegistryError):
            reg.rollback("pm00", tick=0)
        reg.promote("pm00", _targets(1.0), tick=1, n_samples=24)
        with pytest.raises(RegistryError):
            reg.rollback("pm00", tick=2)


class TestCrashWindows:
    def test_partial_ledger_tail_is_compacted(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        reg.promote("pm00", _targets(1.0), tick=1, n_samples=24)
        ledger = tmp_path / "registry.jsonl"
        intact = ledger.read_bytes()
        ledger.write_bytes(intact + b'{"c":3,"v":{"type":"prom')
        with pytest.warns(RegistryReplayWarning):
            recovered = ModelRegistry(tmp_path)
        assert recovered.active("pm00").version == 1
        assert ledger.read_bytes() == intact

    def test_orphan_snapshot_is_rewritten_identically(self, tmp_path):
        # SIGKILL between snapshot write and ledger append: the snapshot
        # exists but no record names it.  Replay re-promotes the same
        # content and must converge on identical bytes.
        reg = ModelRegistry(tmp_path)
        mv = reg.promote("pm00", _targets(1.0), tick=1, n_samples=24)
        snapshot = mv.path_in(tmp_path / "models")
        orphan_bytes = snapshot.read_bytes()
        # Simulate the crash window: drop the ledger, keep the snapshot.
        (tmp_path / "registry.jsonl").unlink()
        replayed = ModelRegistry(tmp_path)
        again = replayed.promote("pm00", _targets(1.0), tick=1, n_samples=24)
        assert again.version == 1
        assert snapshot.read_bytes() == orphan_bytes

    def test_corrupt_snapshot_is_rewritten_on_replay_match(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        mv = reg.promote("pm00", _targets(1.0), tick=1, n_samples=24)
        snapshot = mv.path_in(tmp_path / "models")
        good = snapshot.read_bytes()
        snapshot.write_bytes(good[:-4] + b"XXXX")
        replayed = ModelRegistry(tmp_path)
        with pytest.warns(integrity.ArtifactIntegrityWarning):
            replayed.promote("pm00", _targets(1.0), tick=1, n_samples=24)
        assert snapshot.read_bytes() == good

    def test_stray_tmp_files_are_swept(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        reg.promote("pm00", _targets(1.0), tick=1, n_samples=24)
        stray = tmp_path / "models" / "v000009.pkl.tmp.1234"
        stray.write_bytes(b"half-written")
        ModelRegistry(tmp_path)
        assert not stray.exists()

    def test_load_payload_cross_checks_ledger_digest(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        mv = reg.promote("pm00", _targets(1.0), tick=1, n_samples=24)
        # Replace the snapshot with a *valid* artifact of different
        # content -- the ledger digest check must still catch it.
        integrity.write_artifact(
            mv.path_in(tmp_path / "models"),
            {"pm": "pm00", "tick": 1, "n_samples": 24, "targets": {}},
            schema=MODEL_SCHEMA,
        )
        with pytest.raises(integrity.IntegrityError) as exc:
            reg.load_payload(mv)
        assert exc.value.reason == "checksum-mismatch"

    def test_render_lists_active_versions(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        reg.promote("pm00", _targets(1.0), tick=1, n_samples=24)
        text = reg.render()
        assert "pm00" in text and "active=v1" in text
