"""Tests for the deterministic client swarm (and its obs export)."""

from __future__ import annotations

import pytest

from repro.faults.service import ServiceFaultConfig
from repro.serve import ServiceConfig, SwarmConfig, run_swarm
from repro.serve.swarm import _percentile


def _tree(root):
    return {
        p.relative_to(root).as_posix(): p.read_bytes()
        for p in sorted(root.rglob("*")) if p.is_file()
    }


FAULTY = ServiceFaultConfig(
    loss_prob=0.02, dup_prob=0.05, reorder_prob=0.05,
    stuck_prob=0.01, corrupt_prob=0.01,
)


def _swarm_config(**overrides) -> SwarmConfig:
    base = dict(pms=2, ticks=80, seed=11)
    base.update(overrides)
    return SwarmConfig(**base)


def _service_config() -> ServiceConfig:
    return ServiceConfig(min_fit_samples=10, staleness_s=15.0)


class TestDeterminism:
    def test_same_seed_same_report_and_bytes(self, tmp_path):
        cfg = _swarm_config(faults=FAULTY)
        a = run_swarm(tmp_path / "a", cfg, service_config=_service_config())
        b = run_swarm(tmp_path / "b", cfg, service_config=_service_config())
        assert a.as_dict() == b.as_dict()
        assert _tree(tmp_path / "a") == _tree(tmp_path / "b")

    def test_different_seed_different_trace(self, tmp_path):
        a = run_swarm(tmp_path / "a", _swarm_config(seed=1),
                      service_config=_service_config())
        b = run_swarm(tmp_path / "b", _swarm_config(seed=2),
                      service_config=_service_config())
        assert _tree(tmp_path / "a") != _tree(tmp_path / "b")
        assert a.emitted == b.emitted

    def test_crash_resume_converges_bytewise(self, tmp_path):
        # The CI smoke does this with a real SIGKILL; here the crash is
        # modeled by stop_after_tick (drive abandoned, queues dropped).
        cfg = _swarm_config(ticks=100, faults=FAULTY, drift_at=50)
        sc = _service_config()
        run_swarm(tmp_path / "clean", cfg, service_config=sc)
        run_swarm(tmp_path / "crash", cfg, service_config=sc,
                  stop_after_tick=43)
        resumed = run_swarm(tmp_path / "crash", cfg, service_config=sc)
        assert resumed.recovered_records > 0
        assert _tree(tmp_path / "clean") == _tree(tmp_path / "crash")

    def test_double_crash_still_converges(self, tmp_path):
        cfg = _swarm_config(ticks=90, faults=FAULTY)
        sc = _service_config()
        run_swarm(tmp_path / "clean", cfg, service_config=sc)
        run_swarm(tmp_path / "crash", cfg, service_config=sc,
                  stop_after_tick=20)
        run_swarm(tmp_path / "crash", cfg, service_config=sc,
                  stop_after_tick=60)
        run_swarm(tmp_path / "crash", cfg, service_config=sc)
        assert _tree(tmp_path / "clean") == _tree(tmp_path / "crash")


class TestReportShape:
    def test_clean_run_report(self, tmp_path):
        report = run_swarm(tmp_path, _swarm_config(),
                           service_config=_service_config())
        assert report.emitted == 2 * 80
        assert report.verdicts["accepted"] == report.emitted
        assert report.queries == 80 * 2
        assert report.queries_ok > 0
        # Before the first promotion, queries are unavailable -- and
        # explicitly reported as such, never silently wrong.
        assert report.queries_unavailable > 0
        assert report.promotions == 2
        assert report.latency_p50_ms > 0
        assert report.latency_max_ms >= report.latency_p99_ms
        text = report.render()
        assert "swarm:" in text and "latency_ms" in text

    def test_drift_shift_triggers_refit(self, tmp_path):
        report = run_swarm(
            tmp_path,
            _swarm_config(pms=1, ticks=220, drift_at=110, drift_scale=2.0,
                          seed=3),
            service_config=_service_config(),
        )
        assert report.drift_alarms >= 1
        assert report.registry_versions >= 2

    def test_corruption_quarantines_and_degrades(self, tmp_path):
        report = run_swarm(
            tmp_path,
            _swarm_config(
                ticks=150, seed=5,
                faults=ServiceFaultConfig(
                    corrupt_prob=0.03, corrupt_burst_mean=3.0
                ),
            ),
            service_config=_service_config(),
        )
        assert report.quarantines >= 1
        assert report.verdicts["invalid"] >= 1
        assert report.verdicts["quarantined"] >= 1
        # Queries during the fault window still answered (degraded).
        assert report.queries_degraded >= 1


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(values, 50.0) == 2.0
        assert _percentile(values, 100.0) == 4.0
        assert _percentile(values, 1.0) == 1.0

    def test_empty_sample_has_no_percentile(self):
        # 0.0 would be indistinguishable from a perfect run.
        assert _percentile([], 50.0) is None
        assert _percentile([], 99.0) is None


class TestZeroQueryRun:
    def test_zero_answered_queries_report_null_latency(self, tmp_path):
        report = run_swarm(tmp_path, _swarm_config(queries_per_tick=0),
                           service_config=_service_config())
        assert report.queries == 0
        assert report.latency_p50_ms is None
        assert report.latency_p90_ms is None
        assert report.latency_p99_ms is None
        assert report.latency_max_ms is None
        as_dict = report.as_dict()
        assert as_dict["latency_p50_ms"] is None  # JSON null, not 0.0
        text = report.render()
        assert "p50=n/a" in text and "max=n/a" in text


class TestObsIntegration:
    def test_obs_disabled_state_is_byte_identical(self, tmp_path):
        from repro.obs import runtime as obs_runtime

        cfg = _swarm_config(faults=FAULTY)
        run_swarm(tmp_path / "plain", cfg, service_config=_service_config())
        with obs_runtime.collecting():
            run_swarm(tmp_path / "obs", cfg, service_config=_service_config())
        assert _tree(tmp_path / "plain") == _tree(tmp_path / "obs")

    def test_serve_metrics_round_trip_through_obs_dir(self, tmp_path):
        from repro.obs import runtime as obs_runtime
        from repro.obs.export import load_obs_dir, write_obs_dir

        cfg = _swarm_config(faults=FAULTY, ticks=60)
        with obs_runtime.collecting() as collector:
            run_swarm(tmp_path / "state", cfg,
                      service_config=_service_config())
        out = tmp_path / "obsdir"
        write_obs_dir(collector, out)
        metrics, spans, summary = load_obs_dir(out)
        assert "serve" in summary["span_sources"]
        assert "serve_samples" in metrics
        assert "serve_queries" in metrics
        assert "serve_query_latency_ms" in metrics
        # Counter samples carry the _total suffix and verdict labels.
        sample_names = {
            name for name, _labels, _v in metrics["serve_samples"]["samples"]
        }
        assert "serve_samples_total" in sample_names
        verdicts = {
            labels.get("verdict")
            for _n, labels, _v in metrics["serve_samples"]["samples"]
        }
        assert "accepted" in verdicts
        assert any(s["name"] == "serve.swarm" for s in spans)

    def test_obs_summary_require_serve_gates(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs import runtime as obs_runtime
        from repro.obs.export import write_obs_dir

        with obs_runtime.collecting() as collector:
            run_swarm(tmp_path / "state", _swarm_config(ticks=30),
                      service_config=_service_config())
        out = tmp_path / "obsdir"
        write_obs_dir(collector, out)
        assert main(["obs", "summary", "--obs-dir", str(out),
                     "--require", "serve"]) == 0
        capsys.readouterr()
        assert main(["obs", "summary", "--obs-dir", str(out),
                     "--require", "serve,executor"]) == 1
        err = capsys.readouterr().err
        assert "executor" in err


class TestSwarmConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pms": 0},
            {"ticks": 0},
            {"samples_per_tick": 0},
            {"queries_per_tick": -1},
            {"drift_at": -1},
            {"drift_scale": 0.0},
            {"noise": -0.1},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            SwarmConfig(**kwargs)
