"""Tests for the CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.runner import ALL_IDS


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out == ALL_IDS

    def test_run_table(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Generated benchmarks" in out
        assert "All shape checks passed" in out

    def test_run_subfigure_fast(self, capsys):
        assert main(["run", "fig5a", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "fig5a" in out

    def test_run_group_fast_with_out(self, tmp_path, capsys):
        assert main(["run", "fig5", "--fast", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig5a.txt").exists()
        assert (tmp_path / "fig5b.txt").exists()
        csv_text = (tmp_path / "fig5a.csv").read_text()
        assert csv_text.startswith("series,x,y")
        assert "Dom0," in csv_text

    def test_unknown_id(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCliValidate:
    def test_validate_fast(self, capsys):
        assert main(["validate", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "fit quality" in out
        assert "cross-validated RMSE" in out
        assert "dom0.cpu" in out

    def test_run_extras(self, capsys):
        assert main(["run", "purity"]) == 0
        assert "purity" in capsys.readouterr().out
