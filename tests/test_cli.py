"""Tests for the CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.runner import ALL_IDS


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out == ALL_IDS

    def test_run_table(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Generated benchmarks" in out
        assert "All shape checks passed" in out

    def test_run_subfigure_fast(self, capsys):
        assert main(["run", "fig5a", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "fig5a" in out

    def test_run_group_fast_with_out(self, tmp_path, capsys):
        assert main(["run", "fig5", "--fast", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig5a.txt").exists()
        assert (tmp_path / "fig5b.txt").exists()
        csv_text = (tmp_path / "fig5a.csv").read_text()
        assert csv_text.startswith("series,x,y")
        assert "Dom0," in csv_text

    def test_unknown_id(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCliValidate:
    def test_validate_fast(self, capsys):
        assert main(["validate", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "fit quality" in out
        assert "cross-validated RMSE" in out
        assert "dom0.cpu" in out

    def test_run_extras(self, capsys):
        assert main(["run", "purity"]) == 0
        assert "purity" in capsys.readouterr().out


class TestCacheStatsCli:
    """Regression: cached runs used to leave ``repro cache stats``
    reporting nothing -- counters died with the run's process."""

    def test_cache_stats_reports_lifetime_counters(self, tmp_path, capsys):
        cd = str(tmp_path / "cache")
        assert main(["run", "fig5a", "--fast", "--cache-dir", cd]) == 0
        assert main(["run", "fig5a", "--fast", "--cache-dir", cd]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cd]) == 0
        out = capsys.readouterr().out
        assert "hits/misses:" in out  # absent before the fix (0/0)
        counts = out.split("hits/misses:")[1].split()[0]
        hits, misses = (int(v) for v in counts.split("/"))
        # Run 1 misses every cell (and may re-hit shared ones); run 2
        # replays everything from disk, so hits strictly dominate.
        assert hits > 0 and misses > 0
        assert hits >= misses

    def test_clear_also_drops_stats(self, tmp_path, capsys):
        cd = str(tmp_path / "cache")
        main(["run", "fig5a", "--fast", "--cache-dir", cd])
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", cd]) == 0
        assert main(["cache", "stats", "--cache-dir", cd]) == 0
        out = capsys.readouterr().out
        assert "hits/misses:" not in out


class TestCrashSafety:
    """--run-dir / --resume / repro runs, and the supervised exit codes."""

    def test_run_dir_records_manifest(self, tmp_path, capsys):
        rd = tmp_path / "rd"
        assert main(
            ["run", "fig5a", "--fast", "--run-dir", str(rd)]
        ) == 0
        captured = capsys.readouterr()
        assert "run manifest:" in captured.err
        assert (rd / "manifest.jsonl").is_file()
        assert list((rd / "cells").glob("*.pkl"))

    def test_runs_status_complete(self, tmp_path, capsys):
        rd = tmp_path / "rd"
        main(["run", "fig5a", "--fast", "--run-dir", str(rd)])
        capsys.readouterr()
        assert main(["runs", "status", str(rd)]) == 0
        out = capsys.readouterr().out
        assert "complete" in out
        assert "run fig5a --fast" in out

    def test_resume_restores_and_output_identical(self, tmp_path, capsys):
        rd = tmp_path / "rd"
        out1, out2 = tmp_path / "o1", tmp_path / "o2"
        main(["run", "fig5a", "--fast", "--run-dir", str(rd),
              "--out", str(out1)])
        capsys.readouterr()
        assert main(["run", "fig5a", "--fast", "--resume", str(rd),
                     "--out", str(out2)]) == 0
        err = capsys.readouterr().err
        assert "0 executed" in err
        for name in ("fig5a.txt", "fig5a.csv"):
            assert (out2 / name).read_bytes() == (out1 / name).read_bytes()

    def test_runs_resume_nothing_to_do(self, tmp_path, capsys):
        rd = tmp_path / "rd"
        main(["run", "fig5a", "--fast", "--run-dir", str(rd)])
        capsys.readouterr()
        assert main(["runs", "resume", str(rd)]) == 0
        assert "nothing to resume" in capsys.readouterr().out

    def test_runs_resume_reissues_recorded_command(self, tmp_path, capsys):
        from repro.perf.manifest import RunManifest

        rd = tmp_path / "rd"
        out = tmp_path / "out"
        # A ledger with a recorded command but no completed cells: the
        # shape of a run killed before any checkpoint landed.
        RunManifest(rd).open_run(
            ["run", "fig5a", "--fast", "--run-dir", str(rd),
             "--out", str(out)],
            resumed=False,
        )
        assert main(["runs", "resume", str(rd)]) == 0
        captured = capsys.readouterr()
        assert "resuming: repro run fig5a" in captured.err
        assert "--resume" in captured.err
        assert (out / "fig5a.txt").is_file()
        status = RunManifest(rd).status()
        assert status.resumed_runs == 1
        assert status.complete

    def test_runs_resume_without_command_errors(self, tmp_path, capsys):
        assert main(["runs", "resume", str(tmp_path / "empty")]) == 2
        assert "no recorded command" in capsys.readouterr().err

    def test_runs_gc_reports_removals(self, tmp_path, capsys):
        rd = tmp_path / "rd"
        main(["run", "fig5a", "--fast", "--run-dir", str(rd)])
        capsys.readouterr()
        orphan = rd / "cells" / ("e" * 64 + ".pkl")
        orphan.write_bytes(b"junk")
        assert main(["runs", "gc", str(rd)]) == 0
        assert "1 orphaned" in capsys.readouterr().out
        assert not orphan.exists()

    def test_permanent_failure_exits_3_with_hint(
        self, tmp_path, capsys, monkeypatch
    ):
        def boom(cell):
            raise RuntimeError("injected failure")

        monkeypatch.setattr("repro.perf.executor._execute_cell", boom)
        rd = tmp_path / "rd"
        code = main(
            ["run", "fig5a", "--fast", "--run-dir", str(rd),
             "--cell-attempts", "2"]
        )
        assert code == 3
        err = capsys.readouterr().err
        assert "failed permanently" in err
        assert "runs resume" in err  # the retry hint names the fix

    def test_recovered_retry_exits_0_with_warning(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.perf.executor as executor

        real = executor._execute_cell
        calls = {"n": 0}

        def flaky(cell):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient failure")
            return real(cell)

        monkeypatch.setattr("repro.perf.executor._execute_cell", flaky)
        code = main(["run", "fig5a", "--fast", "--cell-attempts", "3"])
        assert code == 0
        err = capsys.readouterr().err
        assert "supervisor:" in err
        assert "recovered" in err

    def test_cell_attempts_validated(self, capsys):
        assert main(["run", "fig5a", "--fast", "--cell-attempts", "0"]) == 2
        assert "--cell-attempts" in capsys.readouterr().err


class TestChaosActions:
    """``repro chaos fuzz|replay|shrink`` front-ends."""

    def test_fuzz_campaign_exits_0_and_writes_scorecard(
        self, tmp_path, capsys
    ):
        out_dir = tmp_path / "camp"
        code = main(
            ["chaos", "fuzz", "--seed", "5", "--runs", "1",
             "--out-dir", str(out_dir)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "all invariants held" in out
        assert "zero-fault-identity" in out
        assert (out_dir / "resilience.json").is_file()

    def test_fuzz_validates_runs(self, capsys):
        assert main(["chaos", "fuzz", "--runs", "0"]) == 2
        assert "runs" in capsys.readouterr().err

    def test_replay_requires_a_plan(self, capsys):
        assert main(["chaos", "replay"]) == 2
        assert "plan" in capsys.readouterr().err

    def test_replay_rejects_a_bad_plan_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}", encoding="utf-8")
        assert main(["chaos", "replay", str(bad)]) == 2
        assert "schema" in capsys.readouterr().err

    def test_replay_fuzz_plan_rechecks_oracles(self, tmp_path, capsys):
        from repro.faults.fuzz import FuzzConfig, sample_plan
        from repro.faults.plan import dump_plan

        plan_path = tmp_path / "plan.json"
        dump_plan(sample_plan(FuzzConfig(seed=5), 0), plan_path)
        code = main(
            ["chaos", "replay", str(plan_path),
             "--out-dir", str(tmp_path / "work")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[pass] vm-conservation" in out

    def test_shrink_refuses_a_passing_plan(self, tmp_path, capsys):
        from repro.faults.fuzz import FuzzConfig, sample_plan
        from repro.faults.plan import dump_plan

        plan_path = tmp_path / "plan.json"
        dump_plan(sample_plan(FuzzConfig(seed=5), 0), plan_path)
        code = main(
            ["chaos", "shrink", str(plan_path),
             "--out-dir", str(tmp_path / "work")]
        )
        assert code == 2
        assert "nothing to shrink" in capsys.readouterr().err

    def test_sweep_seed_and_plan_out_capture(self, tmp_path, capsys):
        from repro.faults.plan import load_plan

        plan_path = tmp_path / "sweep.json"
        code = main(
            ["chaos", "--fast", "--seed", "77",
             "--plan-out", str(plan_path),
             "--out", str(tmp_path / "arts")]
        )
        assert code == 0
        plan = load_plan(plan_path)
        assert plan.driver == "chaosb"
        assert plan.placement.seed == 77
