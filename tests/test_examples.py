"""Smoke tests running the fast example scripts end to end.

Only the examples that complete within a few seconds run here; the
model-training examples are exercised indirectly through the unit
suites of the modules they use.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 120.0):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=EXAMPLES.parent,
    )


class TestExamples:
    def test_all_examples_present(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "measurement_study.py",
            "overhead_prediction.py",
            "capacity_planning.py",
            "placement_study.py",
            "hotspot_mitigation.py",
            "billing_attribution.py",
            "elastic_scaling.py",
        } <= names

    def test_quickstart_runs(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "virtualization overhead" in result.stdout
        assert "dom0" in result.stdout

    def test_measurement_study_runs(self, tmp_path):
        out = tmp_path / "study.csv"
        result = subprocess.run(
            [
                sys.executable,
                str(EXAMPLES / "measurement_study.py"),
                str(out),
            ],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert result.returncode == 0, result.stderr
        assert "increase rate" in result.stdout
        assert out.exists()

    @pytest.mark.parametrize(
        "name",
        [
            "quickstart.py",
            "measurement_study.py",
            "overhead_prediction.py",
            "capacity_planning.py",
            "placement_study.py",
            "hotspot_mitigation.py",
            "billing_attribution.py",
            "elastic_scaling.py",
        ],
    )
    def test_examples_compile(self, name):
        # Every example must at least be syntactically sound and
        # importable machinery (no run).
        source = (EXAMPLES / name).read_text()
        compile(source, name, "exec")
