"""Tests for the measurement-tool self-overhead model."""

from __future__ import annotations

import pytest

from repro.monitor import (
    MeasurementScript,
    ProbeLoad,
    apply_probe_load,
    clear_probe_load,
    naive_probe_load,
    probe_load,
    unified_probe_load,
)
from repro.sim import Simulator
from repro.workloads import CpuHog
from repro.xen import PhysicalMachine, VMSpec


class TestProbeLoads:
    def test_unified_is_cheaper_than_naive(self):
        naive = naive_probe_load()
        unified = unified_probe_load()
        # The unified script's whole point: strictly less perturbation,
        # especially inside the guests.
        assert unified.dom0_cpu_pct < naive.dom0_cpu_pct
        assert unified.per_guest_cpu_pct <= naive.per_guest_cpu_pct / 2

    def test_probe_load_composition(self):
        load = probe_load(["xentop"], ["top", "vmstat"])
        assert load.dom0_cpu_pct == pytest.approx(1.10)
        assert load.per_guest_cpu_pct == pytest.approx(0.35 + 0.12)

    def test_unknown_tool_rejected(self):
        with pytest.raises(ValueError):
            probe_load(["htop"], [])
        with pytest.raises(ValueError):
            probe_load([], ["htop"])

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            ProbeLoad(-1.0, 0.0)


class TestProbePerturbation:
    @staticmethod
    def run_with(load):
        sim = Simulator(seed=17)
        pm = PhysicalMachine(sim, name="pm1")
        vm = pm.create_vm(VMSpec(name="vm1"))
        CpuHog(60.0).attach(vm)
        apply_probe_load(pm, load)
        pm.start()
        sim.run_until(3.0)
        report = MeasurementScript(pm, noiseless=True).run(duration=20.0)
        return report

    def test_probes_inflate_measured_utilizations(self):
        clean = self.run_with(ProbeLoad(0.0, 0.0))
        naive = self.run_with(naive_probe_load())
        dom0_delta = naive.mean("dom0", "cpu") - clean.mean("dom0", "cpu")
        vm_delta = naive.mean("vm1", "cpu") - clean.mean("vm1", "cpu")
        assert dom0_delta == pytest.approx(
            naive_probe_load().dom0_cpu_pct, abs=0.4
        )
        assert vm_delta == pytest.approx(
            naive_probe_load().per_guest_cpu_pct, abs=0.2
        )

    def test_unified_perturbs_less(self):
        naive = self.run_with(naive_probe_load())
        unified = self.run_with(unified_probe_load())
        assert unified.mean("dom0", "cpu") < naive.mean("dom0", "cpu")
        assert unified.mean("vm1", "cpu") < naive.mean("vm1", "cpu")

    def test_clear_probe_load(self):
        sim = Simulator(seed=18)
        pm = PhysicalMachine(sim, name="pm1")
        pm.create_vm(VMSpec(name="vm1"))
        apply_probe_load(pm, naive_probe_load())
        clear_probe_load(pm)
        assert pm.dom0.probe_cpu_pct == 0.0
        assert pm.vms["vm1"].demand.probe_cpu_pct == 0.0
