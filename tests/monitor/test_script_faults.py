"""Tests for measurement-script behaviour under sample faults."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultConfig, SampleFaults
from repro.monitor import GAP_HOLD, GAP_NAN
from repro.monitor.script import MeasurementScript
from repro.sim import Simulator
from repro.workloads import CpuHog
from repro.xen import PhysicalMachine, VMSpec


def make_pm(seed=37):
    sim = Simulator(seed=seed)
    pm = PhysicalMachine(sim, name="pm1")
    vm = pm.create_vm(VMSpec(name="vm1"))
    CpuHog(50.0).attach(vm)
    pm.start()
    sim.run_until(2.0)
    return pm


def faulty_script(pm, *, dropout=0.0, outliers=0.0, **kw):
    faults = SampleFaults(
        FaultConfig.sampling_only(dropout=dropout, outliers=outliers),
        pm.sim.rng(f"faults.monitor.{pm.name}"),
    )
    return MeasurementScript(pm, faults=faults, **kw)


class TestGapRecording:
    def test_clean_run_has_no_validity_mask(self):
        pm = make_pm()
        report = MeasurementScript(pm).run(10.0)
        assert report.validity is None
        assert report.n_gaps() == 0
        assert report.valid_fraction() == 1.0

    def test_dropouts_recorded_as_gaps_hold(self):
        pm = make_pm()
        script = faulty_script(pm, dropout=0.3)
        report = script.run(40.0)
        assert report.validity is not None
        assert 0 < report.n_gaps() == script.gap_samples
        # Hold policy: every value is finite, gap ticks repeat the
        # previous reading, and the series length is unbroken.
        trace = report.series("vm1", "cpu")
        assert len(trace.values) == len(report.validity)
        assert np.isfinite(trace.values).all()

    def test_dropouts_recorded_as_nan(self):
        pm = make_pm()
        script = faulty_script(pm, dropout=0.3, gap_policy=GAP_NAN)
        report = script.run(40.0)
        values = report.series("vm1", "cpu").values
        gaps = ~report.validity
        assert gaps.any()
        assert np.isnan(values[gaps]).all()
        assert np.isfinite(values[report.validity]).all()

    def test_valid_only_mean_skips_gaps(self):
        pm = make_pm()
        script = faulty_script(pm, dropout=0.3, gap_policy=GAP_NAN)
        report = script.run(40.0)
        clean_mean = report.mean("vm1", "cpu", valid_only=True)
        assert np.isfinite(clean_mean)
        assert np.isnan(report.mean("vm1", "cpu"))

    def test_gap_policy_validated(self):
        pm = make_pm()
        with pytest.raises(ValueError):
            MeasurementScript(pm, gap_policy="interpolate")


class TestOutlierCorruption:
    def test_outliers_stay_flagged_valid(self):
        pm = make_pm()
        script = faulty_script(pm, outliers=0.3)
        report = script.run(40.0)
        # Silent corruption: validity all True, but values perturbed.
        assert report.validity is not None
        assert report.validity.all()
        assert script._faults.corrupted > 0

    def test_corruption_moves_values(self):
        pm = make_pm(seed=91)
        clean = MeasurementScript(pm).run(30.0)
        pm2 = make_pm(seed=91)
        corrupted = faulty_script(pm2, outliers=0.4).run(30.0)
        a = clean.series("vm1", "cpu").values
        b = corrupted.series("vm1", "cpu").values
        assert not np.allclose(a, b)


class TestDeterminismAndPurity:
    def test_faulty_run_deterministic(self):
        def one():
            pm = make_pm(seed=53)
            rep = faulty_script(pm, dropout=0.2, outliers=0.1).run(30.0)
            return rep.validity.tolist(), rep.series("pm", "cpu").values.tolist()

        assert one() == one()

    def test_null_faults_do_not_shift_measurements(self):
        # A SampleFaults with a null config must leave the measured
        # values byte-identical to a script with no fault model at all.
        pm = make_pm(seed=67)
        plain = MeasurementScript(pm).run(20.0)
        pm2 = make_pm(seed=67)
        nulled = MeasurementScript(
            pm2,
            faults=SampleFaults(
                FaultConfig(), pm2.sim.rng("faults.monitor.pm1")
            ),
        ).run(20.0)
        np.testing.assert_array_equal(
            plain.series("pm", "cpu").values,
            nulled.series("pm", "cpu").values,
        )
        # The fault-aware run reports a (all-True) validity mask.
        assert nulled.validity is not None and nulled.validity.all()
        assert plain.validity is None
