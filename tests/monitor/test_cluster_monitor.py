"""Tests for the cluster-wide monitor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.faults import FaultConfig
from repro.monitor import ClusterMonitor
from repro.sim import Simulator
from repro.workloads import CpuHog
from repro.xen import VMSpec


def make_cluster(seed: int = 71) -> Cluster:
    sim = Simulator(seed=seed)
    cl = Cluster(sim)
    cl.create_pm("pm1")
    cl.create_pm("pm2")
    vm = cl.place_vm(VMSpec(name="busy"), "pm1")
    CpuHog(60.0).attach(vm)
    cl.place_vm(VMSpec(name="idle"), "pm2")
    cl.start()
    cl.run(2.0)
    return cl


@pytest.fixture()
def cluster():
    return make_cluster()


class TestClusterMonitor:
    def test_reports_every_pm(self, cluster):
        reports = ClusterMonitor(cluster).run(20.0)
        assert set(reports) == {"pm1", "pm2"}
        assert reports["pm1"].mean("busy", "cpu") == pytest.approx(
            60.3, abs=0.5
        )
        assert reports["pm2"].mean("idle", "cpu") < 1.0

    def test_reports_are_synchronized(self, cluster):
        reports = ClusterMonitor(cluster).run(10.0)
        t1 = reports["pm1"].series("dom0", "cpu").times
        t2 = reports["pm2"].series("dom0", "cpu").times
        assert list(t1) == list(t2)

    def test_lifecycle_errors(self, cluster):
        mon = ClusterMonitor(cluster)
        with pytest.raises(RuntimeError):
            mon.stop()
        mon.start()
        with pytest.raises(RuntimeError):
            mon.start()
        cluster.run(3.0)
        mon.stop()

    def test_duration_validated(self, cluster):
        with pytest.raises(ValueError):
            ClusterMonitor(cluster).run(0.0)

    def test_empty_cluster_rejected(self):
        sim = Simulator(seed=1)
        with pytest.raises(ValueError):
            ClusterMonitor(Cluster(sim))

    def test_failure_injection_counted(self, cluster):
        mon = ClusterMonitor(cluster, tool_failure_prob=0.3)
        mon.run(20.0)
        assert mon.missed_samples() > 0

    def test_pm_names(self, cluster):
        assert ClusterMonitor(cluster).pm_names == ["pm1", "pm2"]


class TestClusterMonitorUnderFailures:
    def test_tool_failures_keep_reports_aligned(self, cluster):
        mon = ClusterMonitor(cluster, tool_failure_prob=0.3)
        reports = mon.run(25.0)
        assert mon.missed_samples() > 0
        t1 = reports["pm1"].series("dom0", "cpu").times
        t2 = reports["pm2"].series("dom0", "cpu").times
        assert list(t1) == list(t2)
        n = len(t1)
        for rep in reports.values():
            for trace in rep.traces:
                assert len(trace.values) == n, trace.name

    def test_tool_failures_deterministic_under_seed(self):
        def one_run():
            cl = make_cluster(seed=207)
            mon = ClusterMonitor(cl, tool_failure_prob=0.25)
            reports = mon.run(20.0)
            return (
                mon.missed_samples(),
                {
                    pm: rep.series("dom0", "cpu").values.tolist()
                    for pm, rep in reports.items()
                },
            )

        missed_a, traces_a = one_run()
        missed_b, traces_b = one_run()
        assert missed_a == missed_b
        assert traces_a == traces_b

    def test_dropout_faults_record_aligned_gaps(self, cluster):
        mon = ClusterMonitor(
            cluster,
            faults=FaultConfig.sampling_only(dropout=0.2, outliers=0.0),
        )
        reports = mon.run(40.0)
        gaps = mon.gap_counts()
        assert mon.total_gaps() > 0
        n = len(reports["pm1"].series("dom0", "cpu").times)
        for pm, rep in reports.items():
            assert rep.validity is not None
            assert len(rep.validity) == n
            assert rep.n_gaps() == gaps[pm]
        # Per-PM streams are independent: identical burst patterns on
        # both PMs would mean they share one RNG stream.
        v1 = np.asarray(reports["pm1"].validity)
        v2 = np.asarray(reports["pm2"].validity)
        assert not np.array_equal(v1, v2)
