"""Tests for the cluster-wide monitor."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.monitor import ClusterMonitor
from repro.sim import Simulator
from repro.workloads import CpuHog
from repro.xen import VMSpec


@pytest.fixture()
def cluster():
    sim = Simulator(seed=71)
    cl = Cluster(sim)
    cl.create_pm("pm1")
    cl.create_pm("pm2")
    vm = cl.place_vm(VMSpec(name="busy"), "pm1")
    CpuHog(60.0).attach(vm)
    cl.place_vm(VMSpec(name="idle"), "pm2")
    cl.start()
    cl.run(2.0)
    return cl


class TestClusterMonitor:
    def test_reports_every_pm(self, cluster):
        reports = ClusterMonitor(cluster).run(20.0)
        assert set(reports) == {"pm1", "pm2"}
        assert reports["pm1"].mean("busy", "cpu") == pytest.approx(
            60.3, abs=0.5
        )
        assert reports["pm2"].mean("idle", "cpu") < 1.0

    def test_reports_are_synchronized(self, cluster):
        reports = ClusterMonitor(cluster).run(10.0)
        t1 = reports["pm1"].series("dom0", "cpu").times
        t2 = reports["pm2"].series("dom0", "cpu").times
        assert list(t1) == list(t2)

    def test_lifecycle_errors(self, cluster):
        mon = ClusterMonitor(cluster)
        with pytest.raises(RuntimeError):
            mon.stop()
        mon.start()
        with pytest.raises(RuntimeError):
            mon.start()
        cluster.run(3.0)
        mon.stop()

    def test_duration_validated(self, cluster):
        with pytest.raises(ValueError):
            ClusterMonitor(cluster).run(0.0)

    def test_empty_cluster_rejected(self):
        sim = Simulator(seed=1)
        with pytest.raises(ValueError):
            ClusterMonitor(Cluster(sim))

    def test_failure_injection_counted(self, cluster):
        mon = ClusterMonitor(cluster, tool_failure_prob=0.3)
        mon.run(20.0)
        assert mon.missed_samples() > 0

    def test_pm_names(self, cluster):
        assert ClusterMonitor(cluster).pm_names == ["pm1", "pm2"]
