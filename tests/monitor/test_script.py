"""Integration tests for the unified measurement script."""

from __future__ import annotations

import pytest

from repro.monitor import MeasurementScript
from repro.sim import Simulator
from repro.workloads import CpuHog, PingLoad
from repro.xen import PhysicalMachine, VMSpec


def make_setup(n_vms=1, seed=7):
    sim = Simulator(seed=seed)
    pm = PhysicalMachine(sim, name="pm1")
    vms = [pm.create_vm(VMSpec(name=f"vm{k}")) for k in range(n_vms)]
    pm.start()
    return sim, pm, vms


class TestMeasurementScript:
    def test_produces_all_trace_names(self):
        sim, pm, vms = make_setup(2)
        report = MeasurementScript(pm).run(duration=10.0)
        names = set(report.traces.names)
        for entity in ("vm0", "vm1", "dom0", "pm"):
            for res in ("cpu", "mem", "io", "bw"):
                assert f"{entity}.{res}" in names
        assert "hyp.cpu" in names

    def test_sample_count_matches_duration(self):
        sim, pm, _ = make_setup()
        report = MeasurementScript(pm, interval=1.0).run(duration=120.0)
        assert len(report.series("dom0", "cpu")) == 120

    def test_mean_tracks_machine_state(self):
        sim, pm, vms = make_setup()
        CpuHog(60.0).attach(vms[0])
        report = MeasurementScript(pm).run(duration=30.0)
        assert report.mean("vm0", "cpu") == pytest.approx(60.3, abs=0.5)
        assert report.mean("dom0", "cpu") > 16.8

    def test_pm_cpu_is_sum_of_components(self):
        sim, pm, vms = make_setup(2)
        CpuHog(40.0).attach(vms[0])
        report = MeasurementScript(pm, noiseless=True).run(duration=20.0)
        total = (
            report.mean("dom0", "cpu")
            + report.mean("hyp", "cpu")
            + report.mean("vm0", "cpu")
            + report.mean("vm1", "cpu")
        )
        assert report.mean("pm", "cpu") == pytest.approx(total, rel=1e-9)

    def test_pm_mem_is_dom0_plus_guests(self):
        sim, pm, vms = make_setup(2)
        report = MeasurementScript(pm, noiseless=True).run(duration=5.0)
        total = (
            report.mean("dom0", "mem")
            + report.mean("vm0", "mem")
            + report.mean("vm1", "mem")
        )
        assert report.mean("pm", "mem") == pytest.approx(total, rel=1e-9)

    def test_noise_averages_out_over_two_minutes(self):
        sim, pm, vms = make_setup()
        CpuHog(90.0).attach(vms[0])
        noisy = MeasurementScript(pm).run(duration=120.0)
        # 120-sample mean is within 0.5 % of truth.
        assert noisy.mean("vm0", "cpu") == pytest.approx(90.3, rel=0.005)

    def test_bw_measurement(self):
        sim, pm, vms = make_setup()
        PingLoad(1280.0).attach(vms[0])
        report = MeasurementScript(pm).run(duration=20.0)
        assert report.mean("vm0", "bw") == pytest.approx(1280.0, rel=0.01)
        assert report.mean("pm", "bw") == pytest.approx(1285.0, rel=0.01)
        assert report.mean("dom0", "bw") == 0.0

    def test_entities_listing(self):
        sim, pm, _ = make_setup(2)
        report = MeasurementScript(pm).run(duration=3.0)
        assert report.entities() == ["dom0", "hyp", "pm", "vm0", "vm1"]

    def test_start_stop_manual(self):
        sim, pm, _ = make_setup()
        script = MeasurementScript(pm)
        script.start()
        sim.run_until(5.0)
        report = script.stop()
        assert len(report.series("pm", "cpu")) == 5

    def test_double_start_rejected(self):
        sim, pm, _ = make_setup()
        script = MeasurementScript(pm)
        script.start()
        with pytest.raises(RuntimeError):
            script.start()

    def test_stop_without_start_rejected(self):
        sim, pm, _ = make_setup()
        with pytest.raises(RuntimeError):
            MeasurementScript(pm).stop()

    def test_bad_parameters(self):
        sim, pm, _ = make_setup()
        with pytest.raises(ValueError):
            MeasurementScript(pm, interval=0.0)
        with pytest.raises(ValueError):
            MeasurementScript(pm, interval=2.0).run(duration=1.0)

    def test_restart_clears_previous_samples(self):
        sim, pm, _ = make_setup()
        script = MeasurementScript(pm)
        script.start()
        sim.run_until(5.0)
        script.stop()
        script.start()
        sim.run_until(8.0)
        report = script.stop()
        assert len(report.series("pm", "cpu")) == 3
