"""Tests for the metric vocabulary and ResourceVector."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.monitor.metrics import (
    RESOURCES,
    UNITS,
    ResourceVector,
    trace_name,
    vm_utilization_vector,
)
from repro.xen.machine import VmUtilization

finite = st.floats(min_value=-1e6, max_value=1e6)


class TestVocabulary:
    def test_resource_order_matches_paper(self):
        # The paper's M = [Mc, Mm, Mi, Mn]^T.
        assert RESOURCES == ("cpu", "mem", "io", "bw")

    def test_units_cover_all_resources(self):
        assert set(UNITS) == set(RESOURCES)

    def test_trace_name(self):
        assert trace_name("vm1", "cpu") == "vm1.cpu"
        with pytest.raises(ValueError):
            trace_name("vm1", "gpu")
        with pytest.raises(ValueError):
            trace_name("", "cpu")


class TestResourceVector:
    def test_iteration_order(self):
        v = ResourceVector(1, 2, 3, 4)
        assert list(v) == [1, 2, 3, 4]

    def test_add_sub(self):
        a = ResourceVector(1, 2, 3, 4)
        b = ResourceVector(10, 20, 30, 40)
        assert list(a + b) == [11, 22, 33, 44]
        assert list(b - a) == [9, 18, 27, 36]

    def test_scale(self):
        assert list(ResourceVector(1, 2, 3, 4).scale(2)) == [2, 4, 6, 8]

    def test_array_roundtrip(self):
        v = ResourceVector(1.5, 2.5, 3.5, 4.5)
        np.testing.assert_array_equal(v.as_array(), [1.5, 2.5, 3.5, 4.5])
        assert ResourceVector.from_array(v.as_array()) == v

    def test_from_array_validates_shape(self):
        with pytest.raises(ValueError):
            ResourceVector.from_array([1, 2, 3])

    def test_get_by_name(self):
        v = ResourceVector(1, 2, 3, 4)
        assert v.get("cpu") == 1
        assert v.get("bw") == 4
        with pytest.raises(ValueError):
            v.get("gpu")

    def test_immutable(self):
        v = ResourceVector()
        with pytest.raises(AttributeError):
            v.cpu = 5.0  # type: ignore[misc]

    @given(finite, finite, finite, finite, finite, finite, finite, finite)
    def test_add_sub_inverse(self, a1, a2, a3, a4, b1, b2, b3, b4):
        a = ResourceVector(a1, a2, a3, a4)
        b = ResourceVector(b1, b2, b3, b4)
        back = (a + b) - b
        np.testing.assert_allclose(back.as_array(), a.as_array(), atol=1e-6)

    def test_vm_utilization_conversion(self):
        util = VmUtilization(cpu_pct=10, mem_mb=20, io_bps=30, bw_kbps=40)
        v = vm_utilization_vector(util)
        assert list(v) == [10, 20, 30, 40]
