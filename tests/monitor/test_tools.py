"""Tests for the Table I tool emulations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.monitor.tools import (
    ALL_TOOLS,
    SCOPE_DOM0,
    SCOPE_PM,
    SCOPE_VM,
    TABLE_I,
    CapabilityError,
    IfConfig,
    MpStat,
    Top,
    VmStat,
    XenTop,
    render_table_i,
)
from repro.sim import Simulator
from repro.xen import DEFAULT_CALIBRATION, PhysicalMachine, VMSpec


@pytest.fixture()
def snapshot():
    sim = Simulator(seed=3)
    pm = PhysicalMachine(sim, name="pm1")
    vm = pm.create_vm(VMSpec(name="vm1"))
    vm.demand.cpu_pct = 60.0
    vm.demand.io_bps = 46.0
    pm.start()
    sim.run_until(5.0)
    return sim, pm.snapshot()


def make_tool(cls, sim, noiseless=True):
    return cls(DEFAULT_CALIBRATION, sim.rng("test-tool"), noiseless=noiseless)


class TestCapabilityMatrix:
    def test_all_tools_have_full_matrix(self):
        scopes = (SCOPE_VM, SCOPE_DOM0, SCOPE_PM)
        for tool, caps in TABLE_I.items():
            assert len(caps) == 12, tool
            for scope in scopes:
                for res in ("cpu", "mem", "io", "bw"):
                    assert (scope, res) in caps

    def test_paper_cells_spotcheck(self):
        # xentop sees VM cpu/io/bw but not memory.
        assert TABLE_I["xentop"][(SCOPE_VM, "cpu")].cell == "Y+"
        assert TABLE_I["xentop"][(SCOPE_VM, "mem")].cell == "-"
        # top must run inside the VM for memory, and is in the script.
        assert TABLE_I["top"][(SCOPE_VM, "mem")].cell == "Y*+"
        # mpstat is the hypervisor CPU view.
        assert TABLE_I["mpstat"][(SCOPE_PM, "cpu")].cell == "Y+"
        # ifconfig gives PM bandwidth.
        assert TABLE_I["ifconfig"][(SCOPE_PM, "bw")].cell == "Y+"
        # vmstat gives PM I/O.
        assert TABLE_I["vmstat"][(SCOPE_PM, "io")].cell == "Y+"

    def test_no_single_tool_covers_everything(self):
        # The motivation for the unified script (Section III-A).
        for tool, caps in TABLE_I.items():
            assert any(not c.supported for c in caps.values()), tool

    def test_script_covers_all_needed_metrics(self):
        # Union of '+' cells covers: VM cpu/mem/io/bw, Dom0 cpu/mem/io/bw,
        # PM cpu(hyp)/io/bw.
        plus = {
            key
            for caps in TABLE_I.values()
            for key, c in caps.items()
            if c.supported and c.in_script
        }
        needed = {
            (SCOPE_VM, r) for r in ("cpu", "mem", "io", "bw")
        } | {
            (SCOPE_DOM0, r) for r in ("cpu", "mem", "io", "bw")
        } | {(SCOPE_PM, "cpu"), (SCOPE_PM, "io"), (SCOPE_PM, "bw")}
        assert needed <= plus

    def test_render_table(self):
        text = render_table_i()
        assert "xentop" in text and "Y*+" in text and "-" in text
        assert len(text.splitlines()) == 6  # header + 5 tools


class TestToolReads:
    def test_xentop_reads_vm_metrics(self, snapshot):
        sim, snap = snapshot
        tool = make_tool(XenTop, sim)
        assert tool.read(snap, SCOPE_VM, "cpu", "vm1") == pytest.approx(
            snap.vm("vm1").cpu_pct
        )
        assert tool.read(snap, SCOPE_VM, "io", "vm1") == pytest.approx(46.0)

    def test_xentop_cannot_read_memory(self, snapshot):
        sim, snap = snapshot
        tool = make_tool(XenTop, sim)
        with pytest.raises(CapabilityError):
            tool.read(snap, SCOPE_VM, "mem", "vm1")

    def test_top_reads_memory(self, snapshot):
        sim, snap = snapshot
        tool = make_tool(Top, sim)
        assert tool.read(snap, SCOPE_VM, "mem", "vm1") == pytest.approx(
            snap.vm("vm1").mem_mb
        )
        assert tool.read(snap, SCOPE_DOM0, "mem") == pytest.approx(
            snap.dom0_mem_mb
        )

    def test_mpstat_reads_hypervisor_cpu(self, snapshot):
        sim, snap = snapshot
        tool = make_tool(MpStat, sim)
        assert tool.read(snap, SCOPE_PM, "cpu") == pytest.approx(
            snap.hypervisor_cpu_pct
        )

    def test_ifconfig_reads_pm_bw(self, snapshot):
        sim, snap = snapshot
        tool = make_tool(IfConfig, sim)
        assert tool.read(snap, SCOPE_PM, "bw") == pytest.approx(
            snap.pm_bw_kbps
        )

    def test_vmstat_reads_pm_io(self, snapshot):
        sim, snap = snapshot
        tool = make_tool(VmStat, sim)
        assert tool.read(snap, SCOPE_PM, "io") == pytest.approx(snap.pm_io_bps)

    def test_vm_scope_requires_name(self, snapshot):
        sim, snap = snapshot
        tool = make_tool(XenTop, sim)
        with pytest.raises(ValueError):
            tool.read(snap, SCOPE_VM, "cpu")

    def test_unknown_resource_rejected(self, snapshot):
        sim, snap = snapshot
        tool = make_tool(XenTop, sim)
        with pytest.raises(ValueError):
            tool.read(snap, SCOPE_VM, "gpu", "vm1")

    def test_every_tool_constructible(self, snapshot):
        sim, _ = snapshot
        for cls in ALL_TOOLS:
            assert make_tool(cls, sim).name in TABLE_I


class TestNoise:
    def test_zero_reads_stay_zero(self, snapshot):
        sim, snap = snapshot
        tool = XenTop(DEFAULT_CALIBRATION, sim.rng("noisy"), noiseless=False)
        assert tool.read(snap, SCOPE_DOM0, "io") == 0.0
        assert tool.read(snap, SCOPE_DOM0, "bw") == 0.0

    def test_noise_is_small_and_nonnegative(self, snapshot):
        sim, snap = snapshot
        tool = XenTop(DEFAULT_CALIBRATION, sim.rng("noisy2"), noiseless=False)
        truth = snap.vm("vm1").cpu_pct
        reads = np.array(
            [tool.read(snap, SCOPE_VM, "cpu", "vm1") for _ in range(400)]
        )
        assert np.all(reads >= 0)
        # ~2 % multiplicative noise plus a small floor.
        assert abs(reads.mean() - truth) / truth < 0.02
        assert 0.001 < reads.std() / truth < 0.05

    def test_noise_is_reproducible(self, snapshot):
        sim, snap = snapshot
        a = XenTop(DEFAULT_CALIBRATION, Simulator(seed=9).rng("t"))
        b = XenTop(DEFAULT_CALIBRATION, Simulator(seed=9).rng("t"))
        ra = [a.read(snap, SCOPE_VM, "cpu", "vm1") for _ in range(10)]
        rb = [b.read(snap, SCOPE_VM, "cpu", "vm1") for _ in range(10)]
        assert ra == rb
