"""Regression tests: restart state and first-tick tool-failure handling.

Both caught real bugs:

* ``start()`` used to leak ``missed_samples`` / ``gap_samples`` /
  ``_corrupt_tick`` from the previous run into the next one, so a
  reused script double-counted faults.
* A ``ToolFailure`` on the very first tick has no previous sample to
  carry forward; the fabricated 0.0 used to pass as a valid reading.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultConfig, SampleFaults
from repro.monitor import GAP_NAN
from repro.monitor.script import MeasurementScript
from repro.monitor.tools import ToolFailure
from repro.sim import Simulator
from repro.workloads import CpuHog
from repro.xen import PhysicalMachine, VMSpec


def make_pm(seed=37):
    sim = Simulator(seed=seed)
    pm = PhysicalMachine(sim, name="pm1")
    vm = pm.create_vm(VMSpec(name="vm1"))
    CpuHog(50.0).attach(vm)
    pm.start()
    sim.run_until(2.0)
    return pm


def fail_first_read(script, tool="_mpstat"):
    """Make one tool's first read raise ToolFailure, then behave."""
    real = getattr(script, tool).read
    calls = {"n": 0}

    def flaky(snap, scope, resource, vm_name=None):
        calls["n"] += 1
        if calls["n"] == 1:
            raise ToolFailure("injected first-tick failure")
        return real(snap, scope, resource, vm_name)

    getattr(script, tool).read = flaky


class TestRestartResetsState:
    def test_start_run_stop_start_resets_fault_counters(self):
        pm = make_pm()
        faults = SampleFaults(
            FaultConfig.sampling_only(dropout=0.4, outliers=0.2),
            pm.sim.rng(f"faults.monitor.{pm.name}"),
        )
        script = MeasurementScript(pm, faults=faults)
        script.run(40.0)
        assert script.gap_samples > 0  # the first run really saw faults

        # A restarted script must begin with a clean slate: counters at
        # zero and no corruption flag leaking into the first new tick.
        script.start()
        assert script.missed_samples == 0
        assert script.gap_samples == 0
        assert script._corrupt_tick is False
        assert script._unseeded_tick is False
        pm.sim.run_until(pm.sim.now + 10.0)
        report = script.stop()
        # The second run's report reflects only the second run.
        assert script.gap_samples == report.n_gaps()
        assert len(report.series("vm1", "cpu").values) <= 11

    def test_restarted_missed_samples_only_count_new_run(self):
        pm = make_pm()
        script = MeasurementScript(pm)
        fail_first_read(script)  # exactly one injected failure, run 1
        script.run(10.0)
        assert script.missed_samples == 1
        # Run 2 sees no failures, so its tally must be zero -- the old
        # code carried run 1's count over and reported 1 here.
        report = script.run(10.0)
        assert script.missed_samples == 0
        assert report.validity is None


class TestFirstTickToolFailure:
    def test_first_tick_failure_marks_tick_invalid(self):
        pm = make_pm()
        script = MeasurementScript(pm)
        script.start()
        fail_first_read(script)
        pm.sim.run_until(pm.sim.now + 10.0)
        report = script.stop()
        assert script.missed_samples == 1
        # The fabricated reading must not count as measured data.
        assert report.validity is not None
        assert report.validity[0] == False  # noqa: E712
        assert report.validity[1:].all()
        # Under the hold policy the placeholder is 0.0 and finite.
        assert report.series("hyp", "cpu").values[0] == 0.0

    def test_first_tick_failure_nan_policy_leaves_nan(self):
        pm = make_pm()
        script = MeasurementScript(pm, gap_policy=GAP_NAN)
        script.start()
        fail_first_read(script)
        pm.sim.run_until(pm.sim.now + 10.0)
        report = script.stop()
        values = report.series("hyp", "cpu").values
        assert np.isnan(values[0])
        assert np.isfinite(values[1:]).all()
        assert not report.validity[0]
        # valid_only mean skips the fabricated tick.
        assert np.isfinite(report.mean("hyp", "cpu", valid_only=True))

    def test_later_failure_carries_forward_and_stays_valid(self):
        pm = make_pm()
        script = MeasurementScript(pm)
        script.start()
        pm.sim.run_until(pm.sim.now + 3.0)  # seed some history first
        fail_first_read(script)
        pm.sim.run_until(pm.sim.now + 5.0)
        report = script.stop()
        assert script.missed_samples == 1
        # Carry-forward of a real previous sample is still valid data.
        assert report.validity is None


class TestEntityName:
    def test_hypervisor_entity_exists(self):
        # Guard for the tests above: the mpstat-backed series is hyp.cpu.
        pm = make_pm()
        report = MeasurementScript(pm).run(5.0)
        assert "hyp" in report.entities()
