"""Failure-injection tests for the monitoring stack."""

from __future__ import annotations

import pytest

from repro.monitor import MeasurementScript, ToolFailure, XenTop
from repro.monitor.tools import SCOPE_VM
from repro.sim import Simulator
from repro.workloads import CpuHog
from repro.xen import DEFAULT_CALIBRATION, PhysicalMachine, VMSpec


def make_pm(seed=23):
    sim = Simulator(seed=seed)
    pm = PhysicalMachine(sim, name="pm1")
    vm = pm.create_vm(VMSpec(name="vm1"))
    CpuHog(50.0).attach(vm)
    pm.start()
    sim.run_until(2.0)
    return sim, pm


class TestToolFailure:
    def test_tool_raises_with_failure_prob_one_ish(self):
        sim, pm = make_pm()
        tool = XenTop(
            DEFAULT_CALIBRATION, sim.rng("flaky"), failure_prob=0.999
        )
        with pytest.raises(ToolFailure):
            for _ in range(50):
                tool.read(pm.snapshot(), SCOPE_VM, "cpu", "vm1")

    def test_zero_failure_prob_never_raises(self):
        sim, pm = make_pm()
        tool = XenTop(DEFAULT_CALIBRATION, sim.rng("solid"), failure_prob=0.0)
        for _ in range(100):
            tool.read(pm.snapshot(), SCOPE_VM, "cpu", "vm1")

    def test_failure_prob_validated(self):
        sim, _ = make_pm()
        with pytest.raises(ValueError):
            XenTop(DEFAULT_CALIBRATION, sim.rng("x"), failure_prob=1.0)
        with pytest.raises(ValueError):
            XenTop(DEFAULT_CALIBRATION, sim.rng("x"), failure_prob=-0.1)


class TestScriptCarryForward:
    def test_script_survives_flaky_tools(self):
        sim, pm = make_pm()
        script = MeasurementScript(pm, tool_failure_prob=0.2)
        report = script.run(duration=60.0)
        # Full-length series despite ~20 % lost readings.
        assert len(report.series("vm1", "cpu")) == 60
        assert script.missed_samples > 0

    def test_carried_values_stay_near_truth(self):
        sim, pm = make_pm()
        script = MeasurementScript(pm, tool_failure_prob=0.3)
        report = script.run(duration=60.0)
        # Carry-forward of a near-steady signal barely moves the mean.
        assert report.mean("vm1", "cpu") == pytest.approx(50.3, abs=1.0)
        assert report.mean("dom0", "cpu") == pytest.approx(
            pm.snapshot().dom0_cpu_pct, rel=0.03
        )

    def test_first_sample_failure_records_zero(self):
        # With no previous reading the script records 0 (cold start),
        # never crashes.
        sim, pm = make_pm()
        script = MeasurementScript(pm, tool_failure_prob=0.95)
        report = script.run(duration=10.0)
        assert len(report.series("pm", "cpu")) == 10

    def test_no_failures_means_no_missed_samples(self):
        sim, pm = make_pm()
        script = MeasurementScript(pm)
        script.run(duration=10.0)
        assert script.missed_samples == 0
