"""Tests for bootstrap statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    ConfidenceInterval,
    bootstrap_mean_ci,
    means_differ,
    percentile_band,
)


class TestConfidenceInterval:
    def test_properties(self):
        ci = ConfidenceInterval(point=5.0, lo=4.0, hi=6.0, level=0.9)
        assert ci.halfwidth == pytest.approx(1.0)
        assert ci.contains(5.5)
        assert not ci.contains(7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConfidenceInterval(point=1.0, lo=2.0, hi=1.0, level=0.9)
        with pytest.raises(ValueError):
            ConfidenceInterval(point=1.0, lo=0.0, hi=2.0, level=1.5)


class TestBootstrapMeanCi:
    def test_covers_true_mean(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10.0, 2.0, 200)
        ci = bootstrap_mean_ci(data, level=0.95, rng=np.random.default_rng(1))
        assert ci.contains(10.0)
        assert ci.point == pytest.approx(data.mean())

    def test_interval_narrows_with_samples(self):
        rng = np.random.default_rng(2)
        small = bootstrap_mean_ci(
            rng.normal(0, 1, 10), rng=np.random.default_rng(3)
        )
        big = bootstrap_mean_ci(
            rng.normal(0, 1, 1000), rng=np.random.default_rng(3)
        )
        assert big.halfwidth < small.halfwidth

    def test_deterministic_with_seeded_rng(self):
        data = [1.0, 2.0, 3.0, 4.0]
        a = bootstrap_mean_ci(data, rng=np.random.default_rng(7))
        b = bootstrap_mean_ci(data, rng=np.random.default_rng(7))
        assert (a.lo, a.hi) == (b.lo, b.hi)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], level=1.5)
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], n_resamples=5)


class TestPercentileBand:
    def test_default_band_matches_paper_error_bars(self):
        values = list(range(1, 101))
        lo, hi = percentile_band(values)
        assert lo == pytest.approx(10.9)
        assert hi == pytest.approx(90.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile_band([])
        with pytest.raises(ValueError):
            percentile_band([1.0], lo_pct=90, hi_pct=10)


class TestMeansDiffer:
    def test_detects_clear_separation(self):
        rng = np.random.default_rng(4)
        voa = rng.normal(83.0, 1.0, 10)
        vou = rng.normal(60.0, 5.0, 10)
        assert means_differ(voa, vou, rng=np.random.default_rng(5))

    def test_no_false_positive_on_identical(self):
        rng = np.random.default_rng(6)
        a = rng.normal(50.0, 5.0, 15)
        b = rng.normal(50.0, 5.0, 15)
        assert not means_differ(a, b, rng=np.random.default_rng(7))

    def test_validation(self):
        with pytest.raises(ValueError):
            means_differ([], [1.0])
