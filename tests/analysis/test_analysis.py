"""Tests for increase-rate and CDF analysis utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    empirical_cdf,
    fit_slope,
    fraction_at_value,
    increase_rates,
    is_convex,
    summarize_rates,
    value_at_fraction,
)


class TestIncreaseRates:
    def test_linear_curve_has_constant_rate(self):
        xs = [0, 10, 20, 30]
        ys = [1, 2, 3, 4]
        np.testing.assert_allclose(increase_rates(xs, ys), [0.1, 0.1, 0.1])

    def test_quadratic_curve_has_growing_rate(self):
        xs = np.array([0.0, 1, 2, 3, 4])
        rates = increase_rates(xs, xs**2)
        assert np.all(np.diff(rates) > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            increase_rates([1.0], [1.0])
        with pytest.raises(ValueError):
            increase_rates([1.0, 1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            increase_rates([2.0, 1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            increase_rates([[1, 2]], [[1, 2]])

    def test_summary_matches_paper_style(self):
        # A curve like Dom0 CPU under CPU load: rate 0.01 -> ~0.25.
        xs = np.array([1.0, 30, 60, 90, 99])
        ys = 16.8 + 0.01 * xs + 0.0012 * xs**2
        s = summarize_rates(xs, ys)
        assert s.initial == pytest.approx(0.01 + 0.0012 * 31, abs=0.01)
        assert s.final > s.initial
        assert s.growth > 3
        assert s.overall == pytest.approx((ys[-1] - ys[0]) / 98, rel=1e-9)

    def test_growth_with_zero_initial(self):
        s = summarize_rates([0, 1, 2], [5.0, 5.0, 6.0])
        assert s.growth == float("inf")


class TestFitSlope:
    def test_exact_line(self):
        xs = np.linspace(0, 10, 20)
        assert fit_slope(xs, 3.0 * xs + 2) == pytest.approx(3.0)

    def test_noisy_line(self):
        rng = np.random.default_rng(0)
        xs = np.linspace(0, 100, 200)
        ys = 0.01 * xs + rng.normal(0, 0.01, 200)
        assert fit_slope(xs, ys) == pytest.approx(0.01, abs=0.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_slope([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_slope([2.0, 2.0], [1.0, 2.0])


class TestConvexity:
    def test_detects_convex(self):
        xs = np.arange(5, dtype=float)
        assert is_convex(xs**2)
        assert is_convex(xs)  # linear counts as (weakly) convex

    def test_detects_concave(self):
        assert not is_convex(np.sqrt(np.arange(1, 10, dtype=float)))

    def test_needs_three_points(self):
        with pytest.raises(ValueError):
            is_convex([1.0, 2.0])


class TestCdfHelpers:
    def test_empirical_cdf(self):
        vals, frac = empirical_cdf([3.0, 1.0, 2.0, 4.0])
        np.testing.assert_array_equal(vals, [1, 2, 3, 4])
        np.testing.assert_allclose(frac, [25, 50, 75, 100])

    def test_value_at_fraction(self):
        vals = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert value_at_fraction(vals, 90.0) == 5.0
        assert value_at_fraction(vals, 40.0) == 2.0
        with pytest.raises(ValueError):
            value_at_fraction(vals, 0.0)
        with pytest.raises(ValueError):
            value_at_fraction(vals, 101.0)

    def test_fraction_at_value(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert fraction_at_value(vals, 2.5) == pytest.approx(50.0)
        assert fraction_at_value(vals, 0.0) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])
        with pytest.raises(ValueError):
            fraction_at_value([], 1.0)

    @given(
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100)
    )
    def test_fraction_and_value_are_inverse_ish(self, values):
        v90 = value_at_fraction(values, 90.0)
        assert fraction_at_value(values, v90) >= 90.0 - 1e-9
