"""Tests for calibration sensitivity analysis."""

from __future__ import annotations

import pytest

from repro.analysis import (
    parameter_sensitivity,
    render_sensitivity,
    sensitivity_matrix,
)
from repro.xen import DEFAULT_CALIBRATION


def dom0_at_99(cal):
    return cal.dom0_ctl_demand([99.0])


def hyp_at_99(cal):
    return cal.hyp_ctl_demand([99.0])


class TestParameterSensitivity:
    def test_baseline_drives_its_own_output(self):
        s = parameter_sensitivity("dom0_cpu_base", "dom0@99", dom0_at_99)
        # Dom0 baseline contributes 16.8 of 29.5 -> elasticity ~0.57.
        assert s.elasticity == pytest.approx(16.8 / 29.5, abs=0.02)
        assert s.significant

    def test_cross_parameter_is_inert(self):
        # Hypervisor output must not react to a Dom0 parameter.
        s = parameter_sensitivity("dom0_ctl_quad", "hyp@99", hyp_at_99)
        assert s.elasticity == pytest.approx(0.0, abs=1e-9)
        assert not s.significant

    def test_quadratic_term_dominates_endpoint(self):
        s = parameter_sensitivity("dom0_ctl_quad", "dom0@99", dom0_at_99)
        # quad contributes 11.7 of 29.5 at the endpoint.
        assert s.elasticity == pytest.approx(11.71 / 29.5, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown calibration"):
            parameter_sensitivity("not_a_param", "x", dom0_at_99)
        with pytest.raises(ValueError):
            parameter_sensitivity(
                "dom0_cpu_base", "x", dom0_at_99, rel_delta=0.0
            )

    def test_base_values_recorded(self):
        s = parameter_sensitivity("dom0_cpu_base", "dom0@99", dom0_at_99)
        assert s.base_value == pytest.approx(29.5, abs=0.1)
        assert s.perturbed_value > s.base_value


class TestSensitivityMatrix:
    def test_matrix_shape_and_render(self):
        matrix = sensitivity_matrix(
            ["dom0_cpu_base", "hyp_cpu_base"],
            {"dom0@99": dom0_at_99, "hyp@99": hyp_at_99},
        )
        assert set(matrix) == {"dom0_cpu_base", "hyp_cpu_base"}
        assert set(matrix["dom0_cpu_base"]) == {"dom0@99", "hyp@99"}
        text = render_sensitivity(matrix)
        assert "dom0_cpu_base" in text and "hyp@99" in text

    def test_orthogonality_of_baselines(self):
        matrix = sensitivity_matrix(
            ["dom0_cpu_base", "hyp_cpu_base"],
            {"dom0@99": dom0_at_99, "hyp@99": hyp_at_99},
        )
        # Each baseline moves only its own component's output.
        assert matrix["dom0_cpu_base"]["hyp@99"].elasticity == 0.0
        assert matrix["hyp_cpu_base"]["dom0@99"].elasticity == 0.0
        assert matrix["dom0_cpu_base"]["dom0@99"].significant
        assert matrix["hyp_cpu_base"]["hyp@99"].significant

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            sensitivity_matrix([], {"x": dom0_at_99})
        with pytest.raises(ValueError):
            sensitivity_matrix(["dom0_cpu_base"], {})


class TestEndToEndSensitivity:
    def test_io_amplification_drives_pm_io(self):
        from repro.monitor import MeasurementScript
        from repro.sim import Simulator
        from repro.workloads import IoHog
        from repro.xen import PhysicalMachine, VMSpec

        def pm_io(cal):
            sim = Simulator(seed=3)
            pm = PhysicalMachine(sim, name="pm1", calibration=cal)
            vm = pm.create_vm(VMSpec(name="v"))
            IoHog(46.0).attach(vm)
            pm.start()
            sim.run_until(2.0)
            return pm.snapshot().pm_io_bps

        s = parameter_sensitivity(
            "io_amplification", "pm.io@46", pm_io,
            calibration=DEFAULT_CALIBRATION,
        )
        # pm_io = amp * 46 + floor: elasticity = amp*46 / (amp*46+18.8).
        expect = 2.05 * 46 / (2.05 * 46 + 18.8)
        assert s.elasticity == pytest.approx(expect, abs=0.03)
