"""Tests for synthetic trace generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces import synth


class TestConstant:
    def test_values(self):
        tr = synth.constant(10, 42.0)
        assert len(tr) == 10
        assert np.all(tr.values == 42.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            synth.constant(0, 1.0)
        with pytest.raises(ValueError):
            synth.constant(5, -1.0)
        with pytest.raises(ValueError):
            synth.constant(5, 1.0, period=0.0)


class TestPeriodic:
    def test_mean_and_amplitude(self):
        tr = synth.periodic(1000, mean=50.0, amplitude=10.0, wave_period=50.0)
        assert tr.mean() == pytest.approx(50.0, abs=0.5)
        assert tr.values.max() == pytest.approx(60.0, abs=0.1)
        assert tr.values.min() == pytest.approx(40.0, abs=0.1)

    def test_noise_is_seeded(self):
        a = synth.periodic(
            50, mean=10, amplitude=2, wave_period=10,
            rng=np.random.default_rng(3), noise=0.05,
        )
        b = synth.periodic(
            50, mean=10, amplitude=2, wave_period=10,
            rng=np.random.default_rng(3), noise=0.05,
        )
        np.testing.assert_array_equal(a.values, b.values)

    def test_never_negative(self):
        tr = synth.periodic(200, mean=1.0, amplitude=5.0, wave_period=7.0)
        assert np.all(tr.values >= 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            synth.periodic(10, mean=-1, amplitude=1, wave_period=5)
        with pytest.raises(ValueError):
            synth.periodic(10, mean=1, amplitude=1, wave_period=0)


class TestOnOff:
    def test_square_wave_shape(self):
        tr = synth.onoff(20, low=1.0, high=9.0, on_len=3, off_len=2)
        np.testing.assert_array_equal(tr.values[:5], [9, 9, 9, 1, 1])
        np.testing.assert_array_equal(tr.values[5:10], [9, 9, 9, 1, 1])

    def test_validation(self):
        with pytest.raises(ValueError):
            synth.onoff(10, low=5.0, high=1.0, on_len=2, off_len=2)
        with pytest.raises(ValueError):
            synth.onoff(10, low=1.0, high=2.0, on_len=0, off_len=2)


class TestRandomWalk:
    def test_stays_in_bounds(self):
        tr = synth.random_walk(
            500, start=50.0, step_sigma=10.0,
            rng=np.random.default_rng(0), lo=0.0, hi=100.0,
        )
        assert np.all(tr.values >= 0.0)
        assert np.all(tr.values <= 100.0)

    def test_deterministic_given_rng(self):
        a = synth.random_walk(50, start=10, step_sigma=1, rng=np.random.default_rng(5))
        b = synth.random_walk(50, start=10, step_sigma=1, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.values, b.values)

    def test_validation(self):
        with pytest.raises(ValueError):
            synth.random_walk(10, start=-5, step_sigma=1, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            synth.random_walk(10, start=5, step_sigma=-1, rng=np.random.default_rng(0))


class TestRamp:
    def test_endpoints(self):
        tr = synth.ramp(11, start=0.0, end=100.0)
        assert tr.values[0] == 0.0
        assert tr.values[-1] == 100.0
        assert np.all(np.diff(tr.values) > 0)

    def test_descending(self):
        tr = synth.ramp(5, start=10.0, end=0.0)
        assert np.all(np.diff(tr.values) < 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            synth.ramp(5, start=-1.0, end=1.0)


class TestPredictorIntegration:
    def test_predictor_locks_onto_synthetic_signature(self):
        from repro.placement import DemandPredictor

        tr = synth.onoff(60, low=10.0, high=50.0, on_len=5, off_len=5)
        p = DemandPredictor()
        for v in tr.values:
            p.update(float(v))
        # Period 10: prediction follows the wave, i.e. equals the value
        # one period back.
        assert p.predict_raw() == pytest.approx(tr.values[-10], abs=1.0)
