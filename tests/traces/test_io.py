"""Round-trip tests for trace CSV/JSON persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces import Trace, TraceSet, load_csv, load_json, save_csv, save_json


@pytest.fixture()
def sample_set():
    times = np.arange(5, dtype=float)
    return TraceSet(
        [
            Trace("vm1.cpu", times, [1.5, 2.5, 3.5, 4.5, 5.5], "%"),
            Trace("pm.bw", times, [100.0, 200.0, 300.0, 400.0, 500.0], "Kb/s"),
        ]
    )


class TestCsvRoundTrip:
    def test_roundtrip_preserves_data(self, sample_set, tmp_path):
        path = tmp_path / "run.csv"
        save_csv(sample_set, path)
        loaded = load_csv(path, units={"vm1.cpu": "%", "pm.bw": "Kb/s"})
        assert loaded.names == sample_set.names
        for name in sample_set.names:
            np.testing.assert_allclose(
                loaded[name].values, sample_set[name].values
            )
            np.testing.assert_allclose(
                loaded[name].times, sample_set[name].times
            )
        assert loaded["vm1.cpu"].units == "%"

    def test_empty_set_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_csv(TraceSet(), tmp_path / "x.csv")

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="time"):
            load_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("time,a\n")
        with pytest.raises(ValueError, match="no samples"):
            load_csv(path)


class TestJsonRoundTrip:
    def test_roundtrip_preserves_everything(self, sample_set, tmp_path):
        path = tmp_path / "run.json"
        save_json(sample_set, path)
        loaded = load_json(path)
        assert loaded.names == sample_set.names
        for name in sample_set.names:
            np.testing.assert_allclose(
                loaded[name].values, sample_set[name].values
            )
            assert loaded[name].units == sample_set[name].units

    def test_schema_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other", "traces": []}')
        with pytest.raises(ValueError, match="repro.traceset.v1"):
            load_json(path)

    def test_empty_set_roundtrips(self, tmp_path):
        path = tmp_path / "empty.json"
        save_json(TraceSet(), path)
        assert len(load_json(path)) == 0
