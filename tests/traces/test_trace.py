"""Tests for Trace and TraceSet."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.traces import Trace, TraceSet


def make_trace(n=10, name="x", start=0.0, step=1.0):
    times = start + step * np.arange(n)
    values = np.linspace(0, 1, n) if n else np.array([])
    return Trace(name, times, values, "%")


class TestTraceBasics:
    def test_construction_and_len(self):
        tr = make_trace(5)
        assert len(tr) == 5
        assert tr.units == "%"

    def test_iteration_yields_pairs(self):
        tr = Trace("t", [0.0, 1.0], [5.0, 7.0])
        assert list(tr) == [(0.0, 5.0), (1.0, 7.0)]

    def test_mean_std_percentile(self):
        tr = Trace("t", [0, 1, 2, 3], [1.0, 2.0, 3.0, 4.0])
        assert tr.mean() == pytest.approx(2.5)
        assert tr.std() == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert tr.percentile(50) == pytest.approx(2.5)

    def test_singleton_std_is_zero(self):
        assert Trace("t", [0.0], [5.0]).std() == 0.0

    def test_empty_trace_statistics_raise(self):
        tr = Trace("t", [], [])
        with pytest.raises(ValueError):
            tr.mean()
        with pytest.raises(ValueError):
            tr.std()
        with pytest.raises(ValueError):
            tr.percentile(50)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Trace("t", [0, 1], [1.0])

    def test_rejects_unsorted_times(self):
        with pytest.raises(ValueError):
            Trace("t", [1.0, 0.5], [1, 2])
        with pytest.raises(ValueError):
            Trace("t", [1.0, 1.0], [1, 2])

    def test_window(self):
        tr = make_trace(10)
        w = tr.window(2.0, 5.0)
        assert len(w) == 4
        assert w.times[0] == 2.0
        assert w.times[-1] == 5.0
        with pytest.raises(ValueError):
            tr.window(5.0, 2.0)

    def test_map(self):
        tr = Trace("t", [0, 1], [1.0, 2.0])
        doubled = tr.map(lambda v: 2 * v)
        np.testing.assert_array_equal(doubled.values, [2.0, 4.0])
        # Original untouched.
        np.testing.assert_array_equal(tr.values, [1.0, 2.0])


class TestResample:
    def test_bucket_average(self):
        tr = Trace("t", [0.5, 1.0, 1.5, 2.5], [2.0, 4.0, 6.0, 8.0])
        r = tr.resample(2.0)
        # Bucket [0,2): samples 0.5, 1.0, 1.5 -> mean 4; bucket [2,4): 8.
        np.testing.assert_allclose(r.times, [2.0, 4.0])
        np.testing.assert_allclose(r.values, [4.0, 8.0])

    def test_empty_trace(self):
        r = Trace("t", [], []).resample(1.0)
        assert len(r) == 0

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            make_trace().resample(0.0)

    @given(
        st.lists(
            st.floats(min_value=0, max_value=100),
            min_size=1,
            max_size=50,
            unique=True,
        ),
        st.floats(min_value=0.1, max_value=20),
    )
    def test_resampled_mean_within_value_range(self, times, period):
        times = sorted(times)
        values = np.sin(np.asarray(times))
        tr = Trace("t", times, values)
        r = tr.resample(period)
        assert len(r) <= len(tr)
        assert r.values.min() >= values.min() - 1e-9
        assert r.values.max() <= values.max() + 1e-9


class TestTraceSet:
    def test_add_get_contains(self):
        ts = TraceSet([make_trace(name="a")])
        ts.add(make_trace(name="b"))
        assert "a" in ts and "b" in ts
        assert ts["a"].name == "a"
        assert len(ts) == 2
        assert ts.names == ["a", "b"]

    def test_duplicate_rejected(self):
        ts = TraceSet([make_trace(name="a")])
        with pytest.raises(ValueError):
            ts.add(make_trace(name="a"))

    def test_missing_key_message_lists_names(self):
        ts = TraceSet([make_trace(name="a")])
        with pytest.raises(KeyError, match="'a'"):
            ts["zz"]

    def test_means(self):
        ts = TraceSet(
            [
                Trace("a", [0, 1], [1.0, 3.0]),
                Trace("b", [0, 1], [10.0, 20.0]),
            ]
        )
        assert ts.means() == {"a": 2.0, "b": 15.0}

    def test_matrix_alignment(self):
        ts = TraceSet(
            [
                Trace("a", [0, 1, 2], [1, 2, 3]),
                Trace("b", [0, 1, 2], [4, 5, 6]),
            ]
        )
        mat = ts.matrix(["b", "a"])
        np.testing.assert_array_equal(mat, [[4, 1], [5, 2], [6, 3]])

    def test_matrix_rejects_misaligned(self):
        ts = TraceSet(
            [
                Trace("a", [0, 1, 2], [1, 2, 3]),
                Trace("b", [0, 1], [4, 5]),
            ]
        )
        with pytest.raises(ValueError):
            ts.matrix(["a", "b"])
        with pytest.raises(ValueError):
            ts.matrix([])

    def test_iteration(self):
        ts = TraceSet([make_trace(name="a"), make_trace(name="b")])
        assert {tr.name for tr in ts} == {"a", "b"}
