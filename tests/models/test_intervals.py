"""Tests for OLS prediction intervals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import TrainingConfig, gather_training_samples
from repro.models.intervals import (
    IntervalModel,
    PredictionInterval,
    fit_intervals,
    pessimistic_pm_cpu,
)


def planted(n=200, noise=1.0, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 10, size=(n, 2))
    y = 3.0 + X @ [2.0, -1.0] + noise * rng.normal(size=n)
    return X, y


class TestPredictionInterval:
    def test_halfwidth(self):
        pi = PredictionInterval(point=5.0, lo=3.0, hi=7.0, level=0.9)
        assert pi.halfwidth == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictionInterval(point=5.0, lo=6.0, hi=7.0, level=0.9)
        with pytest.raises(ValueError):
            PredictionInterval(point=5.0, lo=4.0, hi=6.0, level=1.5)


class TestIntervalModel:
    def test_point_prediction_matches_ols(self):
        X, y = planted(noise=0.0)
        m = IntervalModel(X, y)
        pi = m.predict([2.0, 3.0])
        assert pi.point == pytest.approx(3.0 + 4.0 - 3.0, abs=1e-6)
        # Noiseless fit: intervals collapse.
        assert pi.halfwidth < 1e-5

    def test_coverage_near_nominal(self):
        # ~90 % of held-out points fall inside 90 % intervals.
        X, y = planted(n=400, noise=2.0, seed=1)
        m = IntervalModel(X[:200], y[:200])
        inside = 0
        for xi, yi in zip(X[200:], y[200:]):
            pi = m.predict(xi, level=0.9)
            inside += pi.lo <= yi <= pi.hi
        assert 0.82 <= inside / 200 <= 0.97

    def test_width_grows_with_noise(self):
        Xq, yq = planted(noise=0.5, seed=2)
        Xn, yn = planted(noise=5.0, seed=2)
        quiet = IntervalModel(Xq, yq).predict([5.0, 5.0])
        loud = IntervalModel(Xn, yn).predict([5.0, 5.0])
        assert loud.halfwidth > 5 * quiet.halfwidth

    def test_width_grows_away_from_data(self):
        X, y = planted(noise=1.0, seed=3)
        m = IntervalModel(X, y)
        inside = m.predict([5.0, 5.0])
        outside = m.predict([50.0, 50.0])
        assert outside.halfwidth > inside.halfwidth

    def test_higher_level_wider(self):
        X, y = planted(noise=1.0, seed=4)
        m = IntervalModel(X, y)
        assert (
            m.predict([5.0, 5.0], level=0.99).halfwidth
            > m.predict([5.0, 5.0], level=0.8).halfwidth
        )

    def test_validation(self):
        X, y = planted(n=20)
        m = IntervalModel(X, y)
        with pytest.raises(ValueError):
            m.predict([1.0])
        with pytest.raises(ValueError):
            m.predict([1.0, 2.0], level=0.0)
        with pytest.raises(ValueError):
            IntervalModel(np.ones((3, 3)), np.ones(3))

    def test_handles_rank_deficient_design(self):
        # A constant column (like memory in single-resource sweeps).
        rng = np.random.default_rng(5)
        X = np.column_stack([rng.uniform(0, 10, 100), np.full(100, 7.0)])
        y = 2.0 * X[:, 0] + 1.0 + rng.normal(0, 0.1, 100)
        m = IntervalModel(X, y)
        pi = m.predict([5.0, 7.0])
        assert pi.lo <= pi.point <= pi.hi
        assert pi.halfwidth < 1.0


class TestOverheadIntervals:
    @pytest.fixture(scope="class")
    def samples(self):
        return gather_training_samples(
            TrainingConfig(
                vm_counts=(1,), kinds=("cpu", "bw"), duration=12.0, warmup=2.0
            )
        )

    def test_fit_intervals_all_targets(self, samples):
        models = fit_intervals(samples)
        assert set(models) == {
            "dom0.cpu",
            "hyp.cpu",
            "pm.mem",
            "pm.io",
            "pm.bw",
        }
        x = samples[10].vm_sum.as_array()
        pi = models["dom0.cpu"].predict(x)
        assert pi.lo < samples[10].targets["dom0.cpu"] < pi.hi + 5.0

    def test_pessimistic_pm_cpu_exceeds_point(self, samples):
        models = fit_intervals(samples)
        x = samples[10].vm_sum.as_array()
        point = (
            models["dom0.cpu"].predict(x).point
            + models["hyp.cpu"].predict(x).point
            + x[0]
        )
        pessimistic = pessimistic_pm_cpu(models, x, guest_cpu=float(x[0]))
        assert pessimistic > point

    def test_fit_intervals_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_intervals([])
