"""End-to-end tests for the single-VM and multi-VM overhead models.

The pivotal property: trained on (short) micro-benchmark sweeps, the
models must predict held-out mixed workloads within a few percent --
that is the paper's Section VI-A claim in miniature.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    MultiVMOverheadModel,
    SingleVMOverheadModel,
    TrainingConfig,
    alpha_constant,
    alpha_linear,
    error_report,
    gather_training_samples,
    run_benchmark_measurement,
    samples_from_report,
    train_multi_vm_model,
    train_single_vm_model,
)
from repro.monitor import MeasurementScript
from repro.monitor.metrics import ResourceVector
from repro.sim import Simulator
from repro.workloads import CpuHog, PingLoad
from repro.xen import PhysicalMachine, VMSpec

# Short sweeps keep the test suite fast; the benchmarks run the full
# 120 s / 1-2-4-VM grids.
FAST_SINGLE = TrainingConfig(vm_counts=(1,), duration=15.0, warmup=2.0)
FAST_MULTI = TrainingConfig(vm_counts=(1, 2), duration=15.0, warmup=2.0)


@pytest.fixture(scope="module")
def single_model() -> SingleVMOverheadModel:
    return train_single_vm_model(FAST_SINGLE)


@pytest.fixture(scope="module")
def multi_model() -> MultiVMOverheadModel:
    return train_multi_vm_model(FAST_MULTI)


class TestSingleVMModel:
    def test_intercepts_capture_idle_overhead(self, single_model):
        # a_o for dom0.cpu should be near the 16.8 % baseline, hyp near 3.
        dom0 = single_model.coefficients("dom0.cpu")
        hyp = single_model.coefficients("hyp.cpu")
        assert dom0.intercept == pytest.approx(16.8, abs=1.0)
        assert hyp.intercept == pytest.approx(3.0, abs=1.0)

    def test_io_coefficient_near_amplification(self, single_model):
        # pm.io ~ 2.05 * vm.io + floor.
        m = single_model.coefficients("pm.io")
        assert m.coef[2] == pytest.approx(2.05, abs=0.1)
        assert m.intercept == pytest.approx(18.8, abs=1.0)

    def test_bw_coefficient_near_unity(self, single_model):
        m = single_model.coefficients("pm.bw")
        assert m.coef[3] == pytest.approx(1.0, abs=0.05)

    def test_coefficient_matrix_shape(self, single_model):
        a = single_model.coefficient_matrix()
        assert a.shape == (5, 5)  # 5 targets x [a_o, a_c, a_m, a_i, a_n]

    def test_predicts_held_out_cpu_point(self, single_model):
        # 45 % CPU was never in the Table II grid.  The linear Eq. (1)
        # model carries an intrinsic interpolation error on the *convex*
        # Dom0/hypervisor response curves (a limitation the paper's own
        # higher PM2 errors reflect), so per-target bounds differ: the
        # PM-level prediction is diluted by the guest CPU term and must
        # stay tight.
        report = run_benchmark_measurement(
            "cpu", 45.0, 1, duration=15.0, seed=777, warmup=2.0
        )
        samples = samples_from_report(report)
        pred = single_model.predict_many(
            np.vstack([s.vm_sum.as_array() for s in samples])
        )
        bounds = {"dom0.cpu": 16.0, "hyp.cpu": 25.0, "pm.cpu": 7.0}
        for target, bound in bounds.items():
            if target == "pm.cpu":
                measured = np.array(
                    [
                        s.targets["dom0.cpu"]
                        + s.targets["hyp.cpu"]
                        + s.vm_sum.cpu
                        for s in samples
                    ]
                )
            else:
                measured = np.array([s.targets[target] for s in samples])
            rep = error_report(pred[target], measured)
            assert rep.p90 < bound, (target, rep.p90)

    def test_predict_single_vector(self, single_model):
        pred = single_model.predict(ResourceVector(cpu=60.0, mem=130.0))
        assert 16.8 < pred.dom0_cpu < 29.5
        assert pred.pm_cpu == pytest.approx(
            pred.dom0_cpu + pred.hyp_cpu + 60.0
        )
        assert pred.get("pm.cpu") == pred.pm_cpu
        with pytest.raises(ValueError):
            pred.get("nope.cpu")

    def test_rejects_multi_vm_samples(self):
        report = run_benchmark_measurement(
            "cpu", 30.0, 2, duration=6.0, seed=1, warmup=1.0
        )
        samples = samples_from_report(report)
        with pytest.raises(ValueError, match="n_vms"):
            SingleVMOverheadModel.fit(samples)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SingleVMOverheadModel.fit([])

    def test_unknown_target_access(self, single_model):
        with pytest.raises(ValueError):
            single_model.coefficients("gpu.cpu")

    def test_predict_many_validates_shape(self, single_model):
        with pytest.raises(ValueError):
            single_model.predict_many(np.ones((3, 3)))


class TestMultiVMModel:
    def test_needs_two_vm_counts(self):
        report = run_benchmark_measurement(
            "cpu", 30.0, 2, duration=6.0, seed=1, warmup=1.0
        )
        samples = samples_from_report(report)
        with pytest.raises(ValueError, match="distinct VM counts"):
            MultiVMOverheadModel.fit(samples)

    def test_coefficient_rows(self, multi_model):
        a = multi_model.base_coefficients("dom0.cpu")
        o = multi_model.colocation_coefficients("dom0.cpu")
        assert a.shape == (5,)
        assert o.shape == (5,)

    def test_alpha_variants(self):
        assert alpha_linear(1) == 0.0
        assert alpha_linear(2) == 1.0
        assert alpha_linear(4) == 3.0
        assert alpha_constant(1) == 0.0
        assert alpha_constant(4) == 1.0

    def test_predicts_held_out_two_vm_mix(self, multi_model):
        # Mixed workload (CPU hog + network load), never in training.
        sim = Simulator(seed=555)
        pm = PhysicalMachine(sim, name="pm1")
        vm_a = pm.create_vm(VMSpec(name="a"))
        vm_b = pm.create_vm(VMSpec(name="b"))
        CpuHog(40.0).attach(vm_a)
        PingLoad(800.0).attach(vm_b)
        pm.start()
        sim.run_until(2.0)
        report = MeasurementScript(pm).run(duration=15.0)
        samples = samples_from_report(report)
        pred = multi_model.predict_samples(samples)
        for target in ("dom0.cpu", "hyp.cpu", "pm.bw"):
            measured = np.array([s.targets[target] for s in samples])
            rep = error_report(pred[target], measured)
            assert rep.p90 < 8.0, (target, rep.p90)

    def test_predict_interface(self, multi_model):
        pred = multi_model.predict(
            [ResourceVector(cpu=30.0), ResourceVector(cpu=30.0)]
        )
        assert pred.pm_cpu == pytest.approx(
            pred.dom0_cpu + pred.hyp_cpu + 60.0
        )
        with pytest.raises(ValueError):
            multi_model.predict([])

    def test_predict_samples_rejects_empty(self, multi_model):
        with pytest.raises(ValueError):
            multi_model.predict_samples([])

    def test_model_learns_colocation_batching_discount(self, multi_model):
        # Splitting the same total CPU load across two guests *lowers*
        # Dom0 control cost in the substrate (event-channel batching);
        # the ground truth is ~17.9 % for 2x20 % vs ~19.1 % for 1x40 %.
        # The fitted o coefficients must capture that discount.
        one = multi_model.predict([ResourceVector(cpu=40.0)])
        two = multi_model.predict(
            [ResourceVector(cpu=20.0), ResourceVector(cpu=20.0)]
        )
        assert two.dom0_cpu < one.dom0_cpu
        assert two.dom0_cpu == pytest.approx(17.9, abs=1.5)


class TestTrainingPipeline:
    def test_gather_produces_expected_count(self):
        cfg = TrainingConfig(
            kinds=("cpu",), vm_counts=(1,), duration=8.0, warmup=2.0
        )
        samples = gather_training_samples(cfg)
        # 5 levels x 6 one-second samples each.
        assert len(samples) == 5 * 6
        assert all(s.n_vms == 1 for s in samples)

    def test_progress_callback(self):
        seen = []
        cfg = TrainingConfig(
            kinds=("io",), vm_counts=(1,), duration=5.0, warmup=1.0
        )
        gather_training_samples(cfg, progress=seen.append)
        assert len(seen) == 5
        assert "io" in seen[0]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(duration=1.0, warmup=2.0)
        with pytest.raises(ValueError):
            TrainingConfig(kinds=())
        with pytest.raises(ValueError):
            TrainingConfig(vm_counts=(0,))
