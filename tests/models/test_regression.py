"""Tests for the OLS and LMS regression engines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.regression import (
    LinearModel,
    fit,
    fit_auto,
    fit_lms,
    fit_ols,
    outlier_fraction,
)


def planted_problem(rng, n=200, coef=(2.0, -1.5, 0.5), intercept=3.0, noise=0.0):
    X = rng.uniform(-10, 10, size=(n, len(coef)))
    y = intercept + X @ np.asarray(coef) + noise * rng.normal(size=n)
    return X, y


class TestLinearModel:
    def test_predict_vector_and_matrix(self):
        m = LinearModel(intercept=1.0, coef=[2.0, 3.0])
        assert m.predict([1.0, 1.0]) == pytest.approx(6.0)
        out = m.predict([[1.0, 1.0], [0.0, 0.0]])
        np.testing.assert_allclose(out, [6.0, 1.0])

    def test_feature_count_checked(self):
        m = LinearModel(intercept=0.0, coef=[1.0, 2.0])
        with pytest.raises(ValueError):
            m.predict([1.0])

    def test_residuals(self):
        m = LinearModel(intercept=0.0, coef=[1.0])
        res = m.residuals([[1.0], [2.0]], [2.0, 2.0])
        np.testing.assert_allclose(res, [1.0, 0.0])


class TestOls:
    def test_recovers_planted_coefficients(self):
        rng = np.random.default_rng(1)
        X, y = planted_problem(rng)
        m = fit_ols(X, y)
        assert m.intercept == pytest.approx(3.0, abs=1e-9)
        np.testing.assert_allclose(m.coef, [2.0, -1.5, 0.5], atol=1e-9)

    def test_recovers_with_noise(self):
        rng = np.random.default_rng(2)
        X, y = planted_problem(rng, n=2000, noise=0.5)
        m = fit_ols(X, y)
        np.testing.assert_allclose(m.coef, [2.0, -1.5, 0.5], atol=0.05)

    def test_handles_constant_column(self):
        # Single-resource benchmarks leave other features constant; the
        # fit must not blow up on the rank-deficient design.
        rng = np.random.default_rng(3)
        X = np.column_stack([rng.uniform(0, 1, 50), np.full(50, 7.0)])
        y = 2.0 * X[:, 0] + 1.0
        m = fit_ols(X, y)
        np.testing.assert_allclose(m.predict(X), y, atol=1e-8)

    @pytest.mark.parametrize(
        "X,y",
        [
            (np.zeros((0, 2)), []),
            (np.ones((3, 2)), [1.0, 2.0]),
            ([[np.nan, 1.0]], [1.0]),
            (np.ones(5), np.ones(5)),  # 1-D X
        ],
    )
    def test_input_validation(self, X, y):
        with pytest.raises(ValueError):
            fit_ols(X, y)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=5, max_value=60),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_ols_exact_on_noiseless_data(self, n, p, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, p))
        coef = rng.normal(size=p)
        y = 1.5 + X @ coef
        m = fit_ols(X, y)
        np.testing.assert_allclose(m.predict(X), y, atol=1e-6)


class TestLms:
    def test_recovers_planted_coefficients(self):
        rng = np.random.default_rng(4)
        X, y = planted_problem(rng, n=150)
        m = fit_lms(X, y, rng=np.random.default_rng(0))
        np.testing.assert_allclose(m.coef, [2.0, -1.5, 0.5], atol=1e-6)

    def test_robust_to_40_percent_outliers(self):
        # The whole point of Rousseeuw's estimator: OLS breaks, LMS holds.
        rng = np.random.default_rng(5)
        X, y = planted_problem(rng, n=200, noise=0.1)
        n_out = 80
        y = y.copy()
        y[:n_out] += rng.uniform(50, 150, size=n_out)  # gross corruption
        lms = fit_lms(X, y, rng=np.random.default_rng(0), n_subsets=500)
        ols = fit_ols(X, y)
        lms_err = np.abs(np.asarray(lms.coef) - [2.0, -1.5, 0.5]).max()
        ols_err = np.abs(np.asarray(ols.coef) - [2.0, -1.5, 0.5]).max()
        assert lms_err < 0.1
        assert ols_err > 5 * lms_err

    def test_requires_enough_samples(self):
        with pytest.raises(ValueError, match="at least"):
            fit_lms(np.ones((2, 3)), [1.0, 2.0])

    def test_n_subsets_validated(self):
        with pytest.raises(ValueError):
            fit_lms(np.ones((10, 1)), np.ones(10), n_subsets=0)

    def test_reproducible_with_seeded_rng(self):
        rng = np.random.default_rng(6)
        X, y = planted_problem(rng, n=100, noise=1.0)
        a = fit_lms(X, y, rng=np.random.default_rng(42))
        b = fit_lms(X, y, rng=np.random.default_rng(42))
        assert a.intercept == b.intercept
        np.testing.assert_array_equal(a.coef, b.coef)

    def test_refine_flag(self):
        rng = np.random.default_rng(7)
        X, y = planted_problem(rng, n=100, noise=0.5)
        raw = fit_lms(X, y, rng=np.random.default_rng(1), refine=False)
        polished = fit_lms(X, y, rng=np.random.default_rng(1), refine=True)
        # Refinement must not be worse in RMS on clean data.
        rms = lambda m: float(np.sqrt(np.mean(m.residuals(X, y) ** 2)))
        assert rms(polished) <= rms(raw) + 1e-9


class TestOutlierFraction:
    def test_clean_noise_has_small_fraction(self):
        rng = np.random.default_rng(8)
        X, y = planted_problem(rng, n=500, noise=0.5)
        m = fit_ols(X, y)
        assert outlier_fraction(m, X, y) < 0.05

    def test_gross_corruption_detected(self):
        rng = np.random.default_rng(9)
        X, y = planted_problem(rng, n=400, noise=0.2)
        y = y.copy()
        y[:60] *= 5.0  # 15 % corrupted
        m = fit_ols(X, y)
        assert outlier_fraction(m, X, y) > 0.05

    def test_zero_mad_counts_nonzero_residuals(self):
        X = np.arange(20, dtype=float)[:, None]
        y = 2 * X.ravel() + 1
        y[-1] += 100.0  # one wild point on otherwise exact data
        m = LinearModel(intercept=1.0, coef=[2.0])
        frac = outlier_fraction(m, X, y)
        assert frac == pytest.approx(1 / 20)


class TestFitAuto:
    def test_clean_data_is_exactly_ols(self):
        rng = np.random.default_rng(10)
        X, y = planted_problem(rng, n=300, noise=0.5)
        auto = fit_auto(X, y)
        ols = fit_ols(X, y)
        assert auto.intercept == ols.intercept
        np.testing.assert_array_equal(auto.coef, ols.coef)

    def test_corrupted_data_falls_back_to_lms(self):
        rng = np.random.default_rng(11)
        X, y = planted_problem(rng, n=300, noise=0.2)
        y = y.copy()
        y[:60] += rng.uniform(80, 200, size=60)
        auto = fit_auto(X, y, rng=np.random.default_rng(0), n_subsets=500)
        ols = fit_ols(X, y)
        true = np.array([2.0, -1.5, 0.5])
        auto_err = np.abs(np.asarray(auto.coef) - true).max()
        ols_err = np.abs(np.asarray(ols.coef) - true).max()
        assert auto_err < 0.1
        assert ols_err > 5 * auto_err

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            fit_auto(np.ones((10, 1)), np.ones(10), outlier_threshold=1.0)

    def test_deterministic_with_seeded_rng(self):
        rng = np.random.default_rng(12)
        X, y = planted_problem(rng, n=200, noise=0.2)
        y = y.copy()
        y[:50] += 300.0
        a = fit_auto(X, y, rng=np.random.default_rng(3))
        b = fit_auto(X, y, rng=np.random.default_rng(3))
        assert a.intercept == b.intercept
        np.testing.assert_array_equal(a.coef, b.coef)


class TestDispatch:
    def test_fit_dispatches(self):
        X = np.arange(10, dtype=float)[:, None]
        y = 2 * X.ravel() + 1
        assert fit(X, y, method="ols").predict([5.0]) == pytest.approx(11.0)
        assert fit(
            X, y, method="lms", rng=np.random.default_rng(0)
        ).predict([5.0]) == pytest.approx(11.0, abs=1e-6)

    def test_auto_dispatch(self):
        X = np.arange(10, dtype=float)[:, None]
        y = 2 * X.ravel() + 1
        assert fit(X, y, method="auto").predict([5.0]) == pytest.approx(11.0)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            fit(np.ones((5, 1)), np.ones(5), method="ridge")

    def test_ols_rejects_extra_kwargs(self):
        with pytest.raises(TypeError):
            fit(np.ones((5, 1)), np.ones(5), method="ols", n_subsets=3)
