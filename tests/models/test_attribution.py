"""Tests for model-based overhead attribution."""

from __future__ import annotations

import pytest

from repro.models import (
    TrainingConfig,
    attribute_overhead,
    train_multi_vm_model,
    train_single_vm_model,
)
from repro.monitor.metrics import ResourceVector


@pytest.fixture(scope="module")
def single_model():
    return train_single_vm_model(
        TrainingConfig(vm_counts=(1,), duration=12.0, warmup=2.0)
    )


@pytest.fixture(scope="module")
def multi_model():
    return train_multi_vm_model(
        TrainingConfig(vm_counts=(1, 2), duration=12.0, warmup=2.0)
    )


class TestAttribution:
    def test_shares_plus_base_reproduce_measurement(self, single_model):
        report = attribute_overhead(
            single_model,
            {
                "a": ResourceVector(cpu=60.0, mem=80.0),
                "b": ResourceVector(cpu=20.0, mem=80.0, bw=500.0),
            },
            measured_dom0_cpu_pct=30.0,
            measured_hyp_cpu_pct=10.0,
        )
        total_dom0 = report.base_dom0_cpu_pct + sum(
            s.dom0_cpu_pct for s in report.shares.values()
        )
        total_hyp = report.base_hyp_cpu_pct + sum(
            s.hyp_cpu_pct for s in report.shares.values()
        )
        assert total_dom0 == pytest.approx(30.0)
        assert total_hyp == pytest.approx(10.0)

    def test_network_heavy_guest_pays_more_dom0(self, single_model):
        # Dom0's dominant driver is network traffic (0.01 %/Kb/s); the
        # BW-heavy guest must carry the larger Dom0 share.
        report = attribute_overhead(
            single_model,
            {
                "cpu-guy": ResourceVector(cpu=60.0, mem=80.0),
                "net-guy": ResourceVector(cpu=5.0, mem=80.0, bw=1200.0),
            },
            measured_dom0_cpu_pct=32.0,
            measured_hyp_cpu_pct=8.0,
        )
        assert (
            report.share("net-guy").dom0_cpu_pct
            > report.share("cpu-guy").dom0_cpu_pct
        )
        # The CPU-heavy guest dominates hypervisor cost (scheduling).
        assert (
            report.share("cpu-guy").hyp_cpu_pct
            > report.share("net-guy").hyp_cpu_pct
        )

    def test_billed_fractions_sum_to_one(self, single_model):
        report = attribute_overhead(
            single_model,
            {
                "a": ResourceVector(cpu=40.0, mem=80.0),
                "b": ResourceVector(cpu=40.0, mem=80.0),
            },
            measured_dom0_cpu_pct=25.0,
            measured_hyp_cpu_pct=8.0,
        )
        assert report.billed_fraction("a") + report.billed_fraction(
            "b"
        ) == pytest.approx(1.0)
        # Symmetric guests pay symmetric shares.
        assert report.billed_fraction("a") == pytest.approx(0.5, abs=0.01)

    def test_idle_guests_split_jitter_evenly(self, single_model):
        report = attribute_overhead(
            single_model,
            {
                "a": ResourceVector(mem=80.0),
                "b": ResourceVector(mem=80.0),
            },
            # Slightly above base from measurement jitter.
            measured_dom0_cpu_pct=17.2,
            measured_hyp_cpu_pct=3.1,
        )
        a, b = report.share("a"), report.share("b")
        # Memory has (near) zero overhead coefficients, so attribution
        # falls back to an even split of the small residual.
        assert a.total_pct == pytest.approx(b.total_pct, abs=0.1)

    def test_measurement_below_base_bills_nothing(self, single_model):
        report = attribute_overhead(
            single_model,
            {"a": ResourceVector(cpu=10.0, mem=80.0)},
            measured_dom0_cpu_pct=10.0,  # below the ~16.8 base
            measured_hyp_cpu_pct=2.0,
        )
        assert report.share("a").total_pct == pytest.approx(0.0, abs=1e-9)
        assert report.billed_fraction("a") == 0.0

    def test_works_with_multi_vm_model(self, multi_model):
        report = attribute_overhead(
            multi_model,
            {
                "a": ResourceVector(cpu=50.0, mem=80.0),
                "b": ResourceVector(cpu=10.0, mem=80.0, bw=800.0),
            },
            measured_dom0_cpu_pct=28.0,
            measured_hyp_cpu_pct=9.0,
        )
        assert set(report.shares) == {"a", "b"}
        assert (
            report.share("b").dom0_cpu_pct > report.share("a").dom0_cpu_pct
        )

    def test_validation(self, single_model):
        with pytest.raises(ValueError):
            attribute_overhead(
                single_model, {}, measured_dom0_cpu_pct=1, measured_hyp_cpu_pct=1
            )
        with pytest.raises(ValueError):
            attribute_overhead(
                single_model,
                {"a": ResourceVector()},
                measured_dom0_cpu_pct=-1,
                measured_hyp_cpu_pct=1,
            )
        report = attribute_overhead(
            single_model,
            {"a": ResourceVector(cpu=10.0, mem=80.0)},
            measured_dom0_cpu_pct=20.0,
            measured_hyp_cpu_pct=5.0,
        )
        with pytest.raises(KeyError):
            report.share("ghost")
