"""Tests for residual diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    SingleVMOverheadModel,
    TrainingConfig,
    bias_by_bin,
    gather_training_samples,
    max_abs_bias,
    render_bias,
)


@pytest.fixture(scope="module")
def cpu_samples():
    return gather_training_samples(
        TrainingConfig(
            vm_counts=(1,), kinds=("cpu",), duration=20.0, warmup=2.0
        )
    )


@pytest.fixture(scope="module")
def model(cpu_samples):
    return SingleVMOverheadModel.fit(cpu_samples)


class TestBiasByBin:
    def test_detects_convexity_bow(self, model, cpu_samples):
        """The documented fig7 deviation, made explicit: a linear fit of
        the convex Dom0 curve over-predicts in the middle of the range
        (negative residual) and under-predicts at the ends."""
        bias = bias_by_bin(
            model, cpu_samples, target="dom0.cpu", feature="cpu", bins=5
        )
        populated = [b for b in bias if b.n > 0]
        assert len(populated) >= 3
        mid = populated[len(populated) // 2]
        ends = (populated[0], populated[-1])
        assert mid.mean_residual < 0  # over-prediction mid-range
        assert all(e.mean_residual > mid.mean_residual for e in ends)

    def test_linear_target_has_no_bow(self, model, cpu_samples):
        # pm.mem is linear in the inputs: well-populated bins ~unbiased
        # (thin bins carry measurement noise and are filtered).
        bias = bias_by_bin(
            model, cpu_samples, target="pm.mem", feature="cpu", bins=5
        )
        assert max_abs_bias(bias, min_n=5) < 0.5

    def test_bin_partition_covers_all_samples(self, model, cpu_samples):
        bias = bias_by_bin(model, cpu_samples, bins=4)
        assert sum(b.n for b in bias) == len(cpu_samples)

    def test_constant_feature_single_bin(self, model):
        # A truly constant feature collapses to one bin.  (The measured
        # memory jitters by fractions of an MB, so build noiseless
        # synthetic samples.)
        from repro.models import TrainingSample
        from repro.models.samples import TARGETS
        from repro.monitor.metrics import ResourceVector

        samples = [
            TrainingSample(
                n_vms=1,
                vm_sum=ResourceVector(cpu=float(c), mem=80.0),
                targets={t: 1.0 for t in TARGETS},
            )
            for c in range(10)
        ]
        bias = bias_by_bin(model, samples, feature="mem", bins=5)
        assert len(bias) == 1
        assert bias[0].n == len(samples)

    def test_validation(self, model, cpu_samples):
        with pytest.raises(ValueError):
            bias_by_bin(model, [])
        with pytest.raises(ValueError):
            bias_by_bin(model, cpu_samples, target="nope")
        with pytest.raises(ValueError):
            bias_by_bin(model, cpu_samples, feature="gpu")
        with pytest.raises(ValueError):
            bias_by_bin(model, cpu_samples, bins=1)

    def test_render(self, model, cpu_samples):
        text = render_bias(bias_by_bin(model, cpu_samples, bins=3))
        assert "mean residual" in text
        assert len(text.splitlines()) == 4

    def test_max_abs_bias_requires_population(self):
        from repro.models.residuals import BinBias

        with pytest.raises(ValueError):
            max_abs_bias([BinBias(lo=0, hi=1, n=0, mean_residual=0.0)])
