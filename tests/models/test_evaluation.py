"""Tests for prediction-error evaluation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.models.evaluation import (
    ErrorReport,
    error_report,
    relative_errors,
    summarize,
)


class TestRelativeErrors:
    def test_basic(self):
        errs = relative_errors([11.0, 9.0], [10.0, 10.0])
        np.testing.assert_allclose(errs, [10.0, 10.0])

    def test_perfect_prediction(self):
        errs = relative_errors([5.0], [5.0])
        np.testing.assert_allclose(errs, [0.0])

    def test_rejects_zero_measurement(self):
        with pytest.raises(ValueError):
            relative_errors([1.0], [0.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_errors([1.0, 2.0], [1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            relative_errors([], [])


class TestErrorReport:
    def test_percentiles(self):
        rep = ErrorReport(np.arange(1, 101, dtype=float))
        assert rep.percentile(50) == pytest.approx(50.5)
        assert rep.p90 == pytest.approx(90.1)
        assert len(rep) == 100

    def test_fraction_below(self):
        rep = ErrorReport([1.0, 2.0, 3.0, 4.0])
        assert rep.fraction_below(2.0) == pytest.approx(0.5)
        assert rep.fraction_below(10.0) == 1.0

    def test_cdf_shape(self):
        rep = ErrorReport([3.0, 1.0, 2.0])
        vals, frac = rep.cdf()
        np.testing.assert_array_equal(vals, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(frac, [100 / 3, 200 / 3, 100.0])

    def test_rejects_negative_errors(self):
        with pytest.raises(ValueError):
            ErrorReport([-1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ErrorReport([])

    @given(
        st.lists(
            st.floats(min_value=0, max_value=100), min_size=1, max_size=200
        )
    )
    def test_cdf_monotone(self, errors):
        vals, frac = ErrorReport(errors).cdf()
        assert np.all(np.diff(vals) >= 0)
        assert np.all(np.diff(frac) > 0)
        assert frac[-1] == pytest.approx(100.0)

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=50), min_size=2, max_size=100
        )
    )
    def test_percentile_bounds(self, errors):
        rep = ErrorReport(errors)
        assert min(errors) - 1e-9 <= rep.p90 <= max(errors) + 1e-9


class TestSummaries:
    def test_error_report_builder(self):
        rep = error_report([11.0], [10.0])
        assert rep.errors[0] == pytest.approx(10.0)

    def test_summarize(self):
        reps = {
            "pm1.cpu": ErrorReport([1.0, 2.0, 3.0]),
            "pm2.cpu": ErrorReport([5.0]),
        }
        table = summarize(reps)
        assert table["pm1.cpu"]["n"] == 3
        assert table["pm2.cpu"]["p90"] == pytest.approx(5.0)
        assert table["pm1.cpu"]["max"] == pytest.approx(3.0)
