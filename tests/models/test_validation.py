"""Tests for model validation utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    MultiVMOverheadModel,
    SingleVMOverheadModel,
    TrainingConfig,
    cross_validate_multi,
    fit_quality,
    gather_training_samples,
    kfold_indices,
    render_quality_table,
)
from repro.models.samples import TARGETS


@pytest.fixture(scope="module")
def training_samples():
    return gather_training_samples(
        TrainingConfig(vm_counts=(1, 2), duration=10.0, warmup=2.0)
    )


@pytest.fixture(scope="module")
def multi_model(training_samples):
    return MultiVMOverheadModel.fit(training_samples)


class TestKfold:
    def test_partition_covers_everything(self):
        folds = kfold_indices(23, 5, np.random.default_rng(0))
        assert len(folds) == 5
        joined = np.concatenate(folds)
        assert sorted(joined.tolist()) == list(range(23))

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            kfold_indices(10, 1, rng)
        with pytest.raises(ValueError):
            kfold_indices(3, 5, rng)

    def test_shuffled(self):
        folds = kfold_indices(100, 2, np.random.default_rng(1))
        assert folds[0].tolist() != list(range(50))


class TestFitQuality:
    def test_multi_model_fits_training_data_well(
        self, multi_model, training_samples
    ):
        quality = fit_quality(multi_model, training_samples)
        assert set(quality) == set(TARGETS)
        # Bandwidth and memory are near-deterministic linear maps.
        assert quality["pm.bw"].r_squared > 0.99
        assert quality["pm.mem"].r_squared > 0.99
        assert quality["pm.io"].r_squared > 0.99
        # Dom0 is convex, fitted linearly: good but not perfect.
        assert 0.9 < quality["dom0.cpu"].r_squared <= 1.0

    def test_single_model_quality(self, training_samples):
        singles = [s for s in training_samples if s.n_vms == 1]
        model = SingleVMOverheadModel.fit(singles)
        quality = fit_quality(model, singles)
        assert quality["pm.bw"].rmse < 10.0
        assert quality["hyp.cpu"].max_abs_residual < 5.0

    def test_empty_samples_rejected(self, multi_model):
        with pytest.raises(ValueError):
            fit_quality(multi_model, [])

    def test_render_table(self, multi_model, training_samples):
        text = render_quality_table(fit_quality(multi_model, training_samples))
        assert "dom0.cpu" in text
        assert "R^2" in text
        assert len(text.splitlines()) == 1 + len(TARGETS)


class TestCrossValidation:
    def test_cv_rmse_reasonable(self, training_samples):
        rmse = cross_validate_multi(training_samples, k=4, seed=1)
        assert set(rmse) == set(TARGETS)
        # Held-out RMSE on Dom0 CPU stays within a couple of points.
        assert rmse["dom0.cpu"] < 3.0
        assert rmse["pm.bw"] < 30.0
        assert all(v >= 0 for v in rmse.values())

    def test_cv_deterministic(self, training_samples):
        a = cross_validate_multi(training_samples, k=3, seed=7)
        b = cross_validate_multi(training_samples, k=3, seed=7)
        assert a == b
