"""Property-based tests for the regression engines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import RecursiveLeastSquares, fit_ols


@st.composite
def regression_problem(draw):
    n = draw(st.integers(min_value=8, max_value=60))
    p = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 3, size=(n, p))
    coef = rng.normal(0, 2, size=p)
    intercept = float(rng.normal(0, 5))
    noise = draw(st.floats(min_value=0.0, max_value=0.5))
    y = intercept + X @ coef + noise * rng.normal(size=n)
    return X, y


class TestOlsProperties:
    @settings(max_examples=40, deadline=None)
    @given(regression_problem())
    def test_residuals_orthogonal_to_features(self, problem):
        # The defining normal-equation property of least squares.
        X, y = problem
        m = fit_ols(X, y)
        resid = m.residuals(X, y)
        assert abs(float(np.sum(resid))) < 1e-6 * (1 + abs(y).sum())
        for j in range(X.shape[1]):
            dot = float(np.dot(resid, X[:, j]))
            assert abs(dot) < 1e-5 * (1 + np.abs(X[:, j]).sum() * np.abs(y).max())

    @settings(max_examples=30, deadline=None)
    @given(regression_problem(), st.integers(min_value=0, max_value=2**31))
    def test_fit_invariant_under_row_permutation(self, problem, seed):
        X, y = problem
        perm = np.random.default_rng(seed).permutation(len(y))
        a = fit_ols(X, y)
        b = fit_ols(X[perm], y[perm])
        assert a.intercept == pytest.approx(b.intercept, abs=1e-6)
        np.testing.assert_allclose(a.coef, b.coef, atol=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(
        regression_problem(),
        st.floats(min_value=0.1, max_value=10.0),
    )
    def test_output_scaling_equivariance(self, problem, scale):
        # Scaling y scales the fit.
        X, y = problem
        a = fit_ols(X, y)
        b = fit_ols(X, scale * y)
        assert b.intercept == pytest.approx(scale * a.intercept, rel=1e-6, abs=1e-6)
        np.testing.assert_allclose(b.coef, scale * a.coef, atol=1e-6)


class TestRlsProperties:
    @settings(max_examples=20, deadline=None)
    @given(regression_problem())
    def test_rls_converges_to_ols(self, problem):
        X, y = problem
        rls = RecursiveLeastSquares(X.shape[1], delta=1e9)
        for xi, yi in zip(X, y):
            rls.update(xi, float(yi))
        batch = fit_ols(X, y)
        # With an uninformative prior the RLS estimate matches batch OLS
        # on the observed design (predictions, not raw coefficients --
        # rank-deficient designs admit many coefficient splits).
        np.testing.assert_allclose(
            rls.as_linear_model().predict(X),
            batch.predict(X),
            atol=1e-3 * (1 + np.abs(y).max()),
        )
