"""Tests for recursive least squares and the online overhead model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    OnlineOverheadModel,
    RecursiveLeastSquares,
    TrainingConfig,
    gather_training_samples,
)
from repro.models.samples import TARGETS
from repro.monitor.metrics import ResourceVector


class TestRecursiveLeastSquares:
    def test_converges_to_planted_line(self):
        rng = np.random.default_rng(0)
        rls = RecursiveLeastSquares(2)
        coef = np.array([1.5, -0.7])
        for _ in range(300):
            x = rng.uniform(-5, 5, 2)
            rls.update(x, 2.0 + x @ coef + rng.normal(0, 0.01))
        m = rls.as_linear_model()
        assert m.intercept == pytest.approx(2.0, abs=0.02)
        np.testing.assert_allclose(m.coef, coef, atol=0.02)

    def test_matches_batch_ols_without_forgetting(self):
        from repro.models import fit_ols

        rng = np.random.default_rng(1)
        X = rng.uniform(0, 10, size=(200, 3))
        y = 1.0 + X @ [0.5, -1.0, 2.0] + rng.normal(0, 0.1, 200)
        rls = RecursiveLeastSquares(3, delta=1e8)
        for xi, yi in zip(X, y):
            rls.update(xi, float(yi))
        batch = fit_ols(X, y)
        np.testing.assert_allclose(
            rls.as_linear_model().coef, batch.coef, atol=0.01
        )

    def test_forgetting_tracks_drift(self):
        rng = np.random.default_rng(2)
        tracking = RecursiveLeastSquares(1, forgetting=0.95)
        stale = RecursiveLeastSquares(1, forgetting=1.0)
        # Regime 1: slope 1; regime 2: slope 3.
        for slope in (1.0, 3.0):
            for _ in range(200):
                x = rng.uniform(0, 10)
                y = slope * x + rng.normal(0, 0.05)
                tracking.update([x], y)
                stale.update([x], y)
        assert tracking.as_linear_model().coef[0] == pytest.approx(3.0, abs=0.1)
        # Plain RLS averages the regimes and lags behind.
        assert abs(stale.as_linear_model().coef[0] - 3.0) > 0.5

    def test_predict_before_any_update_is_prior(self):
        rls = RecursiveLeastSquares(2)
        assert rls.predict([1.0, 1.0]) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_features": 0},
            {"n_features": 2, "forgetting": 0.0},
            {"n_features": 2, "forgetting": 1.5},
            {"n_features": 2, "delta": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RecursiveLeastSquares(**kwargs)

    def test_shape_checks(self):
        rls = RecursiveLeastSquares(2)
        with pytest.raises(ValueError):
            rls.update([1.0], 1.0)
        with pytest.raises(ValueError):
            rls.predict([1.0, 2.0, 3.0])


class TestOnlineOverheadModel:
    @pytest.fixture(scope="class")
    def samples(self):
        return gather_training_samples(
            TrainingConfig(
                vm_counts=(1,), kinds=("cpu", "bw"), duration=15.0, warmup=2.0
            )
        )

    def test_streaming_fit_predicts_like_batch(self, samples):
        from repro.models import SingleVMOverheadModel

        online = OnlineOverheadModel()
        for s in samples:
            online.update(s)
        batch = SingleVMOverheadModel.fit(samples)
        # Probe inside the observed region (guest memory sat near its
        # ~80 MB OS baseline throughout these runs; outside that region
        # the intercept/memory-coefficient split is unidentifiable and
        # the two fitters may extrapolate differently).
        probe = ResourceVector(cpu=55.0, mem=80.0, bw=700.0)
        got = online.predict(probe)
        want = batch.predict(probe)
        assert got["dom0.cpu"] == pytest.approx(want.dom0_cpu, abs=0.5)
        assert got["pm.cpu"] == pytest.approx(want.pm_cpu, abs=1.0)

    def test_update_counter(self, samples):
        online = OnlineOverheadModel()
        for s in samples[:7]:
            online.update(s)
        assert online.n_updates == 7

    def test_predict_requires_data(self):
        with pytest.raises(RuntimeError):
            OnlineOverheadModel().predict(ResourceVector(cpu=10.0))

    def test_coefficient_snapshot(self, samples):
        online = OnlineOverheadModel()
        for s in samples:
            online.update(s)
        m = online.coefficients("dom0.cpu")
        assert m.n_features == 4
        # The *effective* idle baseline (evaluated at the guest's ~80 MB
        # resident set) recovers the calibrated 16.8 %.
        baseline = m.predict([0.0, 80.0, 0.0, 0.0])
        assert baseline == pytest.approx(16.8, abs=1.5)
        with pytest.raises(ValueError):
            online.coefficients("nope")

    def test_all_targets_updated(self, samples):
        online = OnlineOverheadModel()
        online.update(samples[0])
        got = online.predict(ResourceVector())
        assert set(got) == set(TARGETS) | {"pm.cpu"}
