"""Tests for recursive least squares and the online overhead model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    OnlineOverheadModel,
    RecursiveLeastSquares,
    TrainingConfig,
    gather_training_samples,
)
from repro.models.samples import TARGETS
from repro.monitor.metrics import ResourceVector


class TestRecursiveLeastSquares:
    def test_converges_to_planted_line(self):
        rng = np.random.default_rng(0)
        rls = RecursiveLeastSquares(2)
        coef = np.array([1.5, -0.7])
        for _ in range(300):
            x = rng.uniform(-5, 5, 2)
            rls.update(x, 2.0 + x @ coef + rng.normal(0, 0.01))
        m = rls.as_linear_model()
        assert m.intercept == pytest.approx(2.0, abs=0.02)
        np.testing.assert_allclose(m.coef, coef, atol=0.02)

    def test_matches_batch_ols_without_forgetting(self):
        from repro.models import fit_ols

        rng = np.random.default_rng(1)
        X = rng.uniform(0, 10, size=(200, 3))
        y = 1.0 + X @ [0.5, -1.0, 2.0] + rng.normal(0, 0.1, 200)
        rls = RecursiveLeastSquares(3, delta=1e8)
        for xi, yi in zip(X, y):
            rls.update(xi, float(yi))
        batch = fit_ols(X, y)
        np.testing.assert_allclose(
            rls.as_linear_model().coef, batch.coef, atol=0.01
        )

    def test_forgetting_tracks_drift(self):
        rng = np.random.default_rng(2)
        tracking = RecursiveLeastSquares(1, forgetting=0.95)
        stale = RecursiveLeastSquares(1, forgetting=1.0)
        # Regime 1: slope 1; regime 2: slope 3.
        for slope in (1.0, 3.0):
            for _ in range(200):
                x = rng.uniform(0, 10)
                y = slope * x + rng.normal(0, 0.05)
                tracking.update([x], y)
                stale.update([x], y)
        assert tracking.as_linear_model().coef[0] == pytest.approx(3.0, abs=0.1)
        # Plain RLS averages the regimes and lags behind.
        assert abs(stale.as_linear_model().coef[0] - 3.0) > 0.5

    def test_predict_before_any_update_is_prior(self):
        rls = RecursiveLeastSquares(2)
        assert rls.predict([1.0, 1.0]) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_features": 0},
            {"n_features": 2, "forgetting": 0.0},
            {"n_features": 2, "forgetting": 1.5},
            {"n_features": 2, "delta": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RecursiveLeastSquares(**kwargs)

    def test_shape_checks(self):
        rls = RecursiveLeastSquares(2)
        with pytest.raises(ValueError):
            rls.update([1.0], 1.0)
        with pytest.raises(ValueError):
            rls.predict([1.0, 2.0, 3.0])


class TestOnlineOverheadModel:
    @pytest.fixture(scope="class")
    def samples(self):
        return gather_training_samples(
            TrainingConfig(
                vm_counts=(1,), kinds=("cpu", "bw"), duration=15.0, warmup=2.0
            )
        )

    def test_streaming_fit_predicts_like_batch(self, samples):
        from repro.models import SingleVMOverheadModel

        online = OnlineOverheadModel()
        for s in samples:
            online.update(s)
        batch = SingleVMOverheadModel.fit(samples)
        # Probe inside the observed region (guest memory sat near its
        # ~80 MB OS baseline throughout these runs; outside that region
        # the intercept/memory-coefficient split is unidentifiable and
        # the two fitters may extrapolate differently).
        probe = ResourceVector(cpu=55.0, mem=80.0, bw=700.0)
        got = online.predict(probe)
        want = batch.predict(probe)
        assert got["dom0.cpu"] == pytest.approx(want.dom0_cpu, abs=0.5)
        assert got["pm.cpu"] == pytest.approx(want.pm_cpu, abs=1.0)

    def test_update_counter(self, samples):
        online = OnlineOverheadModel()
        for s in samples[:7]:
            online.update(s)
        assert online.n_updates == 7

    def test_predict_requires_data(self):
        with pytest.raises(RuntimeError):
            OnlineOverheadModel().predict(ResourceVector(cpu=10.0))

    def test_coefficient_snapshot(self, samples):
        online = OnlineOverheadModel()
        for s in samples:
            online.update(s)
        m = online.coefficients("dom0.cpu")
        assert m.n_features == 4
        # The *effective* idle baseline (evaluated at the guest's ~80 MB
        # resident set) recovers the calibrated 16.8 %.
        baseline = m.predict([0.0, 80.0, 0.0, 0.0])
        assert baseline == pytest.approx(16.8, abs=1.5)
        with pytest.raises(ValueError):
            online.coefficients("nope")

    def test_all_targets_updated(self, samples):
        online = OnlineOverheadModel()
        online.update(samples[0])
        got = online.predict(ResourceVector())
        assert set(got) == set(TARGETS) | {"pm.cpu"}


class TestNumericHardening:
    """Long-stream stability of the RLS update (serve-path regression)."""

    def test_million_update_stream_stays_finite_and_accurate(self):
        # The prediction service folds samples in forever; after 10^6
        # updates with forgetting the covariance must stay symmetric,
        # finite and informative -- no drift blow-up, no NaN estimate.
        rng = np.random.default_rng(0)
        rls = RecursiveLeastSquares(4, forgetting=0.999, delta=1e6)
        coef = np.array([0.5, -0.2, 0.1, 0.3])
        X = rng.uniform(0, 100, size=(1_000_000, 4))
        noise = rng.normal(0, 0.01, 1_000_000)
        for i in range(1_000_000):
            rls.update(X[i], 2.0 + X[i] @ coef + noise[i])
        assert np.isfinite(rls._theta).all()
        assert np.isfinite(rls._P).all()
        # Symmetrization keeps the covariance exactly symmetric.
        np.testing.assert_array_equal(rls._P, rls._P.T)
        m = rls.as_linear_model()
        assert m.intercept == pytest.approx(2.0, abs=0.01)
        np.testing.assert_allclose(m.coef, coef, atol=1e-3)

    def test_gain_denominator_guard(self):
        # A rounding-collapsed covariance can push the gain denominator
        # to (or below) zero; the guard clamps it at the forgetting
        # factor so one pathological step cannot destroy the estimate.
        rls = RecursiveLeastSquares(2, forgetting=1.0)
        rls.update([1.0, 2.0], 3.0)
        theta_before = rls._theta.copy()
        rls._P = -0.9 * np.eye(3)  # quadratic form now negative
        rls.update([1.0, 1.0], 100.0)
        assert np.isfinite(rls._theta).all()
        # With denom clamped at lam=1, the step is bounded by |Pphi*err|.
        assert np.abs(rls._theta - theta_before).max() < 1000.0

    def test_guard_never_engages_on_healthy_streams(self):
        # On a well-conditioned stream the clamp must be inert: the
        # guarded update stays bitwise identical to the raw textbook
        # recursion computed here without any guard.
        rng = np.random.default_rng(3)
        rls = RecursiveLeastSquares(3, delta=1e4)
        theta = np.zeros(4)
        P = 1e4 * np.eye(4)
        for _ in range(500):
            x = rng.uniform(-2, 2, 3)
            y = 1.0 + x @ [0.5, -1.0, 2.0]
            rls.update(x, y)
            phi = np.concatenate(([1.0], x))
            Pphi = P @ phi
            gain = Pphi / (1.0 + phi @ Pphi)
            theta = theta + gain * (y - phi @ theta)
            P = P - np.outer(gain, Pphi)
            P = 0.5 * (P + P.T)
        np.testing.assert_array_equal(rls._theta, theta)


class TestBatchParity:
    """RLS with forgetting=1.0 reproduces the batch OLS coefficients."""

    def test_matches_single_vm_ols_per_target(self):
        from repro.models import SingleVMOverheadModel
        from repro.models.samples import TrainingSample

        rng = np.random.default_rng(1)
        planted = {
            t: (0.01 * (i + 1), rng.uniform(0.05, 0.5, 4))
            for i, t in enumerate(TARGETS)
        }
        samples = []
        for _ in range(400):
            x = rng.uniform(0, 80, 4)
            targets = {
                t: b + w @ x + rng.normal(0, 0.05)
                for t, (b, w) in planted.items()
            }
            samples.append(
                TrainingSample(
                    n_vms=1, vm_sum=ResourceVector(*x), targets=targets
                )
            )
        batch = SingleVMOverheadModel.fit(samples)
        online = OnlineOverheadModel(forgetting=1.0, delta=1e10)
        for s in samples:
            online.update(s)
        for t in TARGETS:
            bm = batch.coefficients(t)
            om = online.coefficients(t)
            assert om.intercept == pytest.approx(bm.intercept, abs=1e-4)
            np.testing.assert_allclose(
                np.asarray(om.coef), np.asarray(bm.coef), atol=1e-4
            )
