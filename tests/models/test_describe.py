"""Tests for model description rendering."""

from __future__ import annotations

import pytest

from repro.models import (
    MultiVMOverheadModel,
    SingleVMOverheadModel,
    TrainingConfig,
    describe_multi_vm,
    describe_single_vm,
    gather_training_samples,
)
from repro.models.samples import TARGETS


@pytest.fixture(scope="module")
def samples():
    return gather_training_samples(
        TrainingConfig(
            vm_counts=(1, 2), kinds=("cpu", "bw"), duration=10.0, warmup=2.0
        )
    )


class TestDescribe:
    def test_single_vm_table(self, samples):
        model = SingleVMOverheadModel.fit(
            [s for s in samples if s.n_vms == 1]
        )
        text = describe_single_vm(model)
        assert "Eq. 2" in text
        for target in TARGETS:
            assert target in text
        for label in ("a_o", "a_c", "a_m", "a_i", "a_n"):
            assert label in text
        # 1 title + 1 header + 5 targets.
        assert len(text.splitlines()) == 7

    def test_multi_vm_tables(self, samples):
        model = MultiVMOverheadModel.fit(samples)
        text = describe_multi_vm(model)
        assert "Eq. 3" in text
        assert "Colocation coefficients" in text
        assert "o_const" in text
        assert text.count("dom0.cpu") == 2  # once per table

    def test_values_match_model(self, samples):
        model = MultiVMOverheadModel.fit(samples)
        text = describe_multi_vm(model)
        a_o = model.base_coefficients("dom0.cpu")[0]
        assert f"{a_o:.5g}" in text
