"""Tests for the heterogeneous-VM overhead model (future-work feature)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import HeterogeneousOverheadModel, TypedSample
from repro.models.samples import TARGETS
from repro.monitor.metrics import ResourceVector


def make_sample(a_cpu=0.0, b_cpu=0.0, a_bw=0.0, b_bw=0.0, noise=0.0, rng=None):
    """A synthetic PM observation with two VM types.

    Ground truth: type 'web' costs Dom0 0.02 %/Kb/s, type 'batch' only
    0.005 (e.g. large batched transfers); both cost 0.05 %/% CPU.
    """
    dom0 = 16.8 + 0.05 * (a_cpu + b_cpu) + 0.02 * a_bw + 0.005 * b_bw
    hyp = 3.0 + 0.02 * (a_cpu + b_cpu)
    if rng is not None and noise > 0:
        dom0 += rng.normal(0, noise)
        hyp += rng.normal(0, noise)
    n_a = 1 if (a_cpu or a_bw) else 0
    n_b = 1 if (b_cpu or b_bw) else 0
    return TypedSample(
        by_type={
            "web": ResourceVector(cpu=a_cpu, bw=a_bw),
            "batch": ResourceVector(cpu=b_cpu, bw=b_bw),
        },
        counts={"web": n_a, "batch": n_b},
        targets={
            "dom0.cpu": dom0,
            "hyp.cpu": hyp,
            "pm.mem": 350.0,
            "pm.io": 18.8,
            "pm.bw": a_bw + b_bw,
        },
    )


@pytest.fixture(scope="module")
def typed_dataset():
    # Mix of web-only, batch-only and combined observations: the VM
    # count (hence alpha) varies, keeping the per-type blocks
    # identifiable alongside the colocation features.
    rng = np.random.default_rng(8)
    samples = []
    for i in range(200):
        a_cpu, b_cpu = rng.uniform(5, 80, 2)
        a_bw, b_bw = rng.uniform(10, 2000, 2)
        kind = i % 3
        if kind == 0:
            b_cpu = b_bw = 0.0
        elif kind == 1:
            a_cpu = a_bw = 0.0
        samples.append(
            make_sample(a_cpu, b_cpu, a_bw, b_bw, noise=0.05, rng=rng)
        )
    return samples


class TestTypedSample:
    def test_totals(self):
        s = make_sample(a_cpu=10, b_cpu=20, a_bw=100, b_bw=200)
        assert s.total().cpu == 30
        assert s.total().bw == 300
        assert s.n_vms == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="missing targets"):
            TypedSample(by_type={}, counts={}, targets={})
        with pytest.raises(ValueError, match="without counts"):
            TypedSample(
                by_type={"x": ResourceVector()},
                counts={},
                targets={t: 0.0 for t in TARGETS},
            )
        with pytest.raises(ValueError, match="counts"):
            TypedSample(
                by_type={},
                counts={"x": -1},
                targets={t: 0.0 for t in TARGETS},
            )


class TestHeterogeneousModel:
    def test_recovers_per_type_coefficients(self, typed_dataset):
        model = HeterogeneousOverheadModel.fit(
            ("web", "batch"), typed_dataset
        )
        web = model.type_coefficients("web", "dom0.cpu")
        batch = model.type_coefficients("batch", "dom0.cpu")
        # [cpu, mem, io, bw] blocks: bw coefficients differ 4x by type.
        assert web[3] == pytest.approx(0.02, abs=0.002)
        assert batch[3] == pytest.approx(0.005, abs=0.002)
        assert web[0] == pytest.approx(0.05, abs=0.01)

    def test_beats_pooled_model_on_typed_workload(self, typed_dataset):
        """The pooled Eq. (3) model sees only the type-blind sum and must
        average the two bandwidth costs; the typed model separates them."""
        from repro.models import MultiVMOverheadModel, TrainingSample

        pooled_samples = [
            TrainingSample(
                n_vms=max(1, s.n_vms),
                vm_sum=s.total(),
                targets=s.targets,
            )
            for s in typed_dataset
        ]
        # Vary N artificially so the pooled fit is identifiable.
        pooled = MultiVMOverheadModel.fit(
            pooled_samples
            + [
                TrainingSample(
                    n_vms=1,
                    vm_sum=ResourceVector(),
                    targets={
                        "dom0.cpu": 16.8,
                        "hyp.cpu": 3.0,
                        "pm.mem": 350.0,
                        "pm.io": 18.8,
                        "pm.bw": 0.0,
                    },
                )
            ]
        )
        typed = HeterogeneousOverheadModel.fit(("web", "batch"), typed_dataset)
        # Held-out point: all bandwidth on the cheap type.
        s = make_sample(a_cpu=20, b_cpu=20, a_bw=0, b_bw=3000)
        truth = s.targets["dom0.cpu"]
        typed_err = abs(typed.predict_samples([s])["dom0.cpu"][0] - truth)
        pooled_err = abs(
            pooled.predict([ResourceVector(cpu=20), ResourceVector(cpu=20, bw=3000)]).dom0_cpu
            - truth
        )
        assert typed_err < 0.5
        assert pooled_err > 4 * max(typed_err, 0.5)

    def test_predict_interface(self, typed_dataset):
        model = HeterogeneousOverheadModel.fit(("web", "batch"), typed_dataset)
        pred = model.predict(
            [("web", ResourceVector(cpu=30, bw=500)),
             ("batch", ResourceVector(cpu=10, bw=500))]
        )
        assert pred.pm_cpu == pytest.approx(
            pred.dom0_cpu + pred.hyp_cpu + 40.0
        )
        with pytest.raises(ValueError):
            model.predict([])
        with pytest.raises(ValueError):
            model.predict([("gpu-node", ResourceVector())])

    def test_fit_validation(self, typed_dataset):
        with pytest.raises(ValueError, match="never appears"):
            HeterogeneousOverheadModel.fit(
                ("web", "batch", "ghost"), typed_dataset
            )
        with pytest.raises(ValueError, match="undeclared"):
            HeterogeneousOverheadModel.fit(("web",), typed_dataset)
        with pytest.raises(ValueError):
            HeterogeneousOverheadModel.fit(("web", "batch"), [])
        with pytest.raises(ValueError, match="duplicate"):
            HeterogeneousOverheadModel(
                ("a", "a"), {}
            )

    def test_unknown_lookups(self, typed_dataset):
        model = HeterogeneousOverheadModel.fit(("web", "batch"), typed_dataset)
        with pytest.raises(ValueError):
            model.type_coefficients("ghost", "dom0.cpu")
        with pytest.raises(ValueError):
            model.type_coefficients("web", "gpu.cpu")
        with pytest.raises(ValueError):
            model.predict_samples([])

    def test_single_type_degenerates_to_pooled(self):
        """With one declared type the model is exactly Eq. (3)."""
        rng = np.random.default_rng(9)
        samples = []
        for _ in range(80):
            cpu = float(rng.uniform(0, 90))
            bw = float(rng.uniform(0, 1500))
            s = TypedSample(
                by_type={"only": ResourceVector(cpu=cpu, bw=bw)},
                counts={"only": 1},
                targets={
                    "dom0.cpu": 16.8 + 0.1 * cpu + 0.01 * bw,
                    "hyp.cpu": 3.0 + 0.04 * cpu,
                    "pm.mem": 350.0,
                    "pm.io": 18.8,
                    "pm.bw": bw,
                },
            )
            samples.append(s)
        model = HeterogeneousOverheadModel.fit(("only",), samples)
        coefs = model.type_coefficients("only", "dom0.cpu")
        assert coefs[0] == pytest.approx(0.1, abs=0.01)
        assert coefs[3] == pytest.approx(0.01, abs=0.001)


class TestTypedSamplesFromReport:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.monitor import MeasurementScript
        from repro.sim import Simulator
        from repro.workloads import CpuHog, PingLoad
        from repro.xen import PhysicalMachine, VMSpec

        sim = Simulator(seed=55)
        pm = PhysicalMachine(sim, name="pm1")
        web = pm.create_vm(VMSpec(name="web0"))
        batch = pm.create_vm(VMSpec(name="batch0"))
        PingLoad(900.0).attach(web)
        CpuHog(40.0).attach(batch)
        pm.start()
        sim.run_until(2.0)
        return MeasurementScript(pm, noiseless=True).run(duration=12.0)

    def test_explodes_per_second(self, report):
        from repro.models import typed_samples_from_report

        samples = typed_samples_from_report(
            report, {"web0": "web", "batch0": "batch"}
        )
        assert len(samples) == 12
        s = samples[-1]
        assert s.counts == {"web": 1, "batch": 1}
        assert s.by_type["web"].bw == pytest.approx(900.0, rel=0.01)
        assert s.by_type["batch"].cpu == pytest.approx(40.3, abs=0.5)
        assert s.targets["dom0.cpu"] > 16.8

    def test_same_type_vms_are_summed(self, report):
        from repro.models import typed_samples_from_report

        samples = typed_samples_from_report(
            report, {"web0": "app", "batch0": "app"}
        )
        s = samples[-1]
        assert s.counts == {"app": 2}
        assert s.by_type["app"].cpu == pytest.approx(40.3 + 2.3, abs=1.0)

    def test_unmapped_vm_rejected(self, report):
        from repro.models import typed_samples_from_report

        with pytest.raises(ValueError, match="without a declared type"):
            typed_samples_from_report(report, {"web0": "web"})

    def test_trains_hetero_model_end_to_end(self, report):
        from repro.models import typed_samples_from_report

        samples = typed_samples_from_report(
            report, {"web0": "web", "batch0": "batch"}
        )
        # Single VM count -> alpha constant; augment with a synthetic
        # single-type observation so fitting stays identified.
        model = HeterogeneousOverheadModel.fit(
            ("web", "batch"),
            samples
            + [
                TypedSample(
                    by_type={"web": ResourceVector()},
                    counts={"web": 1},
                    targets={
                        "dom0.cpu": 16.8,
                        "hyp.cpu": 3.0,
                        "pm.mem": 430.0,
                        "pm.io": 18.8,
                        "pm.bw": 2.0,
                    },
                )
            ],
        )
        pred = model.predict_samples(samples)
        measured = np.array([s.targets["dom0.cpu"] for s in samples])
        assert np.abs(pred["dom0.cpu"] - measured).max() < 2.0
