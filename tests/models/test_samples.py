"""Tests for training-sample extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.samples import (
    TARGETS,
    TrainingSample,
    design_matrix,
    samples_from_report,
    target_vector,
    vm_counts,
)
from repro.monitor import MeasurementScript
from repro.monitor.metrics import ResourceVector
from repro.sim import Simulator
from repro.workloads import CpuHog
from repro.xen import PhysicalMachine, VMSpec


def sample(n=1, cpu=10.0, **targets):
    base = {t: 1.0 for t in TARGETS}
    base.update(targets)
    return TrainingSample(
        n_vms=n, vm_sum=ResourceVector(cpu=cpu), targets=base
    )


class TestTrainingSample:
    def test_valid_sample(self):
        s = sample()
        assert s.n_vms == 1
        assert s.vm_sum.cpu == 10.0

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            TrainingSample(
                n_vms=0,
                vm_sum=ResourceVector(),
                targets={t: 0.0 for t in TARGETS},
            )

    def test_rejects_missing_targets(self):
        with pytest.raises(ValueError, match="missing targets"):
            TrainingSample(
                n_vms=1, vm_sum=ResourceVector(), targets={"dom0.cpu": 1.0}
            )


class TestMatrixHelpers:
    def test_design_matrix(self):
        mat = design_matrix([sample(cpu=1.0), sample(cpu=2.0)])
        np.testing.assert_array_equal(mat[:, 0], [1.0, 2.0])
        assert mat.shape == (2, 4)

    def test_design_matrix_empty(self):
        with pytest.raises(ValueError):
            design_matrix([])

    def test_target_vector(self):
        s1 = sample(**{"dom0.cpu": 17.0})
        s2 = sample(**{"dom0.cpu": 20.0})
        np.testing.assert_array_equal(
            target_vector([s1, s2], "dom0.cpu"), [17.0, 20.0]
        )

    def test_target_vector_unknown(self):
        with pytest.raises(ValueError):
            target_vector([sample()], "gpu.cpu")

    def test_vm_counts(self):
        np.testing.assert_array_equal(
            vm_counts([sample(n=1), sample(n=4)]), [1.0, 4.0]
        )


class TestSamplesFromReport:
    @pytest.fixture()
    def report(self):
        sim = Simulator(seed=11)
        pm = PhysicalMachine(sim, name="pm1")
        for k in range(2):
            vm = pm.create_vm(VMSpec(name=f"vm{k}"))
            CpuHog(30.0).attach(vm)
        pm.start()
        sim.run_until(2.0)
        return MeasurementScript(pm, noiseless=True).run(duration=10.0)

    def test_one_sample_per_second(self, report):
        samples = samples_from_report(report)
        assert len(samples) == 10
        assert all(s.n_vms == 2 for s in samples)

    def test_vm_sum_is_elementwise_sum(self, report):
        samples = samples_from_report(report)
        s = samples[-1]
        expect_cpu = (
            report.series("vm0", "cpu").values[-1]
            + report.series("vm1", "cpu").values[-1]
        )
        assert s.vm_sum.cpu == pytest.approx(expect_cpu)

    def test_targets_filled(self, report):
        s = samples_from_report(report)[0]
        assert s.targets["dom0.cpu"] > 16.0
        assert s.targets["hyp.cpu"] > 2.0
        assert s.targets["pm.io"] > 0.0

    def test_n_vms_override(self, report):
        samples = samples_from_report(report, n_vms=7)
        assert samples[0].n_vms == 7
