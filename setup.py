"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP-517 editable
installs fail with ``invalid command 'bdist_wheel'``.  Keeping this shim
(and omitting ``[build-system]`` from pyproject.toml) lets
``pip install -e .`` use the legacy ``setup.py develop`` code path.
"""

from setuptools import setup

setup()
