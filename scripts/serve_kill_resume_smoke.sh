#!/usr/bin/env bash
# Serve kill-and-resume smoke: SIGKILL the prediction service mid-stream
# while it ingests a faulted monitor trace, restart it against the same
# state dir, and require the final WAL + model registry to be
# byte-identical to an uninterrupted run's.  Then exercise the degraded
# query path (quarantined / dark streams must answer from the last
# promoted version, never crash or go silent) and the observability
# export of a served run.
#
# Usage: bash scripts/serve_kill_resume_smoke.sh   (from the repo root)
#   KILL_AFTER=2   seconds before the SIGKILL lands (default 2; the
#                  20000-tick trace needs ~15 s wall, so the default
#                  interrupts the stream early even on fast runners)
set -euo pipefail

export PYTHONPATH=src
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

CLEAN="$WORK/clean"
CRASH="$WORK/crash"
OBSERVED="$WORK/observed"
OBS_DIR="$WORK/obs"
KILL_AFTER="${KILL_AFTER:-2}"

# One faulted, drifting trace shared by every leg: delivery loss,
# duplicates, reordering and NaN/outlier corruption bursts, plus a
# planted coefficient shift halfway through to force a refit epoch.
ARGS=(
    --pms 3 --ticks 20000 --seed 2015
    --min-fit-samples 12 --drift-at 10000
    --fault-loss 0.01 --fault-dup 0.02 --fault-reorder 0.02
    --fault-corrupt 0.005
)

echo "== clean run (uninterrupted baseline) =="
python -m repro serve run --state-dir "$CLEAN" "${ARGS[@]}" \
    > "$WORK/clean.log" 2>&1
grep "swarm:" "$WORK/clean.log"
# Corruption bursts must have tripped quarantine, and queries during
# those windows must have been answered degraded -- not dropped.
grep -Eq "queries: [0-9]+ \(ok=[0-9]+ degraded=[1-9]" "$WORK/clean.log"
grep -Eq "quarantines=[1-9]" "$WORK/clean.log"

echo "== interrupted run (SIGKILL after ${KILL_AFTER}s) =="
set +e
python -m repro serve run --state-dir "$CRASH" "${ARGS[@]}" \
    > "$WORK/killed.log" 2>&1 &
PID=$!
sleep "$KILL_AFTER"
kill -9 "$PID" 2>/dev/null
wait "$PID" 2>/dev/null
set -e

echo "== resumed run (same command, same state dir) =="
python -m repro serve run --state-dir "$CRASH" "${ARGS[@]}" \
    > "$WORK/resume.log" 2>&1
# On a fast machine the kill may land after completion; either way the
# resume replays the WAL and must converge on identical state.
grep "recovery:" "$WORK/resume.log" || true

echo "== diff: resumed service state vs clean run =="
diff -r "$CLEAN" "$CRASH"

echo "== degraded query path (last-good answers, never silence) =="
# Long past the end of the trace every stream is dark: answers must
# still come from the promoted registry, flagged degraded.
python -m repro serve query --state-dir "$CLEAN" --at 100000 \
    > "$WORK/query.log"
test "$(grep -c "status=degraded degraded=True" "$WORK/query.log")" -eq 3
grep -q "dom0.cpu=" "$WORK/query.log"
python -m repro serve status --state-dir "$CLEAN" > "$WORK/status.log"
grep -q "model registry:" "$WORK/status.log"
# Reopening for query/status is read-only: state stays byte-identical.
diff -r "$CLEAN" "$CRASH"

echo "== observability export (--obs-dir, byte-identity, gating) =="
python -m repro serve run --state-dir "$OBSERVED" "${ARGS[@]}" \
    --obs-dir "$OBS_DIR" > "$WORK/observed.log" 2>&1
grep "observability: wrote" "$WORK/observed.log"
diff -r "$CLEAN" "$OBSERVED"
python -m repro obs summary --obs-dir "$OBS_DIR" --require serve

echo "serve smoke passed: resume byte-identical, degraded queries answered"
