#!/usr/bin/env bash
# Fleet-scale smoke: run the sharded fleet experiment at CI scale at
# two shard counts (plus a parallel run), require the artifacts to be
# byte-identical, and bound the driver's peak RSS to prove the
# streaming (incremental-consume) results path holds memory flat.
#
# Usage: bash scripts/fleet_smoke.sh   (from the repo root)
set -euo pipefail

export PYTHONPATH=src
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# CI scale: big enough that VOU overloads and migrates (every shape
# check is real), small enough for a couple of minutes of runtime.
SCALE=(--pms 48 --vms 480 --clients 40000 --duration 120 --trials 2)

# Peak RSS bound for the whole driver process (MB).  The summaries
# streamed per cell are a few KB; the bound mostly covers numpy +
# the simulator working set, and catches any return to buffering
# every CellOutcome in memory.
RSS_BOUND_MB=400

run_bounded() {
    local out="$1"; shift
    python - "$out" "$RSS_BOUND_MB" "$@" <<'EOF'
import resource
import sys

out_dir, bound_mb, *argv = sys.argv[1:]
from repro.cli import main

code = main(["fleet", *argv, "--out", out_dir])
peak_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
print(f"peak RSS {peak_mb:.0f} MB (bound {bound_mb} MB)")
if code != 0:
    sys.exit(code)
if peak_mb > float(bound_mb):
    sys.exit(f"peak RSS {peak_mb:.0f} MB exceeds bound {bound_mb} MB")
EOF
}

echo "== fleet run, 1 shard =="
run_bounded "$WORK/s1" "${SCALE[@]}" --shards 1 | tail -2

echo "== fleet run, 4 shards =="
run_bounded "$WORK/s4" "${SCALE[@]}" --shards 4 | tail -2

echo "== fleet run, 2 shards + --jobs 2 =="
run_bounded "$WORK/s2j2" "${SCALE[@]}" --shards 2 --jobs 2 | tail -2

echo "== diff: artifacts across shard counts and parallel dispatch =="
diff -r "$WORK/s1" "$WORK/s4"
diff -r "$WORK/s1" "$WORK/s2j2"

echo "== sanitizer draw-count invariance across shards =="
python - "${SCALE[@]}" <<'EOF'
import sys

from repro.cli import main
from repro.sim import sanitize

counts = {}
for shards in (1, 4):
    sanitize.reset_collector()
    code = main(["fleet", *sys.argv[1:], "--shards", str(shards),
                 "--sanitize"])
    assert code == 0, f"fleet --shards {shards} exited {code}"
    counts[shards] = dict(sanitize.aggregate_draw_counts())
assert counts[1], "sanitized fleet run recorded no draws"
assert counts[1] == counts[4], "per-stream draw counts diverged"
print(f"draw counts identical over {len(counts[1])} stream(s)")
EOF

echo "fleet smoke passed: byte-identical across shards/jobs, RSS bounded"
