#!/usr/bin/env bash
# Kill-and-resume smoke: SIGKILL a checkpointed paper-scale run
# mid-sweep, resume it, and require the final artifacts to be
# byte-identical to an uninterrupted clean run.
#
# Usage: bash scripts/kill_resume_smoke.sh   (from the repo root)
#   KILL_AFTER=1.5   seconds before the SIGKILL lands (default 1.5;
#                    fig5 at paper scale needs ~2.5 s wall with 2 jobs,
#                    so the default interrupts mid-sweep on CI runners)
set -euo pipefail

export PYTHONPATH=src
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

CLEAN="$WORK/clean"
RESUMED="$WORK/resumed"
RUN_DIR="$WORK/run"
KILL_AFTER="${KILL_AFTER:-1.5}"

echo "== clean run (uninterrupted baseline) =="
python -m repro run fig5 --jobs 2 --out "$CLEAN" > "$WORK/clean.log" 2>&1

echo "== interrupted run (SIGKILL after ${KILL_AFTER}s) =="
set +e
python -m repro run fig5 --jobs 2 --run-dir "$RUN_DIR" \
    --out "$RESUMED" > "$WORK/killed.log" 2>&1 &
PID=$!
sleep "$KILL_AFTER"
kill -9 "$PID" 2>/dev/null
wait "$PID" 2>/dev/null
set -e

# On a fast machine the kill may land after completion; resume must
# converge to the same artifacts either way.
python -m repro runs status "$RUN_DIR"

echo "== resumed run =="
python -m repro run fig5 --jobs 2 --resume "$RUN_DIR" \
    --out "$RESUMED" > "$WORK/resume.log" 2>&1
grep "run manifest:" "$WORK/resume.log"

echo "== diff: resumed artifacts vs clean run =="
diff -r "$CLEAN" "$RESUMED"

python -m repro runs status "$RUN_DIR" | grep -q "state: *complete"
echo "kill-and-resume smoke passed: artifacts byte-identical"
