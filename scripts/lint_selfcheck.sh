#!/usr/bin/env bash
# Autofixer self-check: `repro lint --fix` must be (a) a byte-identical
# no-op on the already-clean source tree, and (b) idempotent -- fixing
# a planted violation twice produces the same bytes as fixing it once,
# and the fixed file lints clean of the fixable codes.
#
# Usage: bash scripts/lint_selfcheck.sh   (from the repo root)
set -euo pipefail

export PYTHONPATH=src
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== --fix is a byte-identical no-op on the clean tree =="
cp -r src "$WORK/clean"
python -m repro lint "$WORK/clean" --fix --config pyproject.toml \
    > "$WORK/clean.log" 2>&1 || {
    cat "$WORK/clean.log"
    echo "FAIL: clean tree does not lint clean under --fix" >&2
    exit 1
}
diff -r src "$WORK/clean" || {
    echo "FAIL: --fix modified an already-clean tree" >&2
    exit 1
}

echo "== --fix converges on a planted fixable violation =="
PLANT="$WORK/plant/repro/models"
mkdir -p "$PLANT"
cat > "$PLANT/seeded.py" <<'EOF'
def merge(xs=[]):
    for k in {"b", "a"}:
        xs.append(k)
    return xs
EOF

python -m repro lint "$WORK/plant" --fix --config pyproject.toml \
    > "$WORK/fix1.log" 2>&1 || true
cp "$PLANT/seeded.py" "$WORK/after-one-fix.py"

grep -q "def merge(xs=None):" "$PLANT/seeded.py" || {
    echo "FAIL: REP005 sentinel rewrite missing" >&2
    exit 1
}
grep -q 'sorted({"b", "a"})' "$PLANT/seeded.py" || {
    echo "FAIL: REP003 sort wrap missing" >&2
    exit 1
}

echo "== second --fix pass is byte-identical (idempotent) =="
python -m repro lint "$WORK/plant" --fix --config pyproject.toml \
    > "$WORK/fix2.log" 2>&1 || true
cmp "$WORK/after-one-fix.py" "$PLANT/seeded.py" || {
    echo "FAIL: --fix is not idempotent" >&2
    exit 1
}

echo "== fixed file lints clean of the fixable codes =="
if python -m repro lint "$WORK/plant" --select REP003 \
    --config pyproject.toml > "$WORK/left.log" 2>&1 \
    && python -m repro lint "$WORK/plant" --select REP005 \
    --config pyproject.toml >> "$WORK/left.log" 2>&1; then
    :
else
    cat "$WORK/left.log"
    echo "FAIL: fixable violations survived --fix" >&2
    exit 1
fi

echo "lint selfcheck OK: --fix is a clean-tree no-op and idempotent"
