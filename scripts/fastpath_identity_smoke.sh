#!/usr/bin/env bash
# Fast-path byte-identity smoke: the paper-scale fig5 artifacts must be
# byte-for-byte identical between
#   1. the default fast path (batched drain, vectorized scheduler,
#      precompiled monitor sampling),
#   2. the scalar/per-event reference path (REPRO_SIM_SLOWPATH=1),
#   3. a parallel chunked run (--jobs 4 --chunk 2).
#
# Usage: bash scripts/fastpath_identity_smoke.sh   (from the repo root)
set -euo pipefail

export PYTHONPATH=src
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

FAST="$WORK/fast"
SLOW="$WORK/slow"
PAR="$WORK/parallel"

echo "== fast path (default) =="
python -m repro run fig5 --out "$FAST" > "$WORK/fast.log" 2>&1

echo "== slow path (REPRO_SIM_SLOWPATH=1) =="
REPRO_SIM_SLOWPATH=1 python -m repro run fig5 --out "$SLOW" \
    > "$WORK/slow.log" 2>&1

echo "== parallel chunked (--jobs 4 --chunk 2) =="
python -m repro run fig5 --jobs 4 --chunk 2 --out "$PAR" \
    > "$WORK/parallel.log" 2>&1

echo "== diff =="
diff -r "$FAST" "$SLOW"
diff -r "$FAST" "$PAR"
echo "fast == slow == parallel: byte-identical"
