#!/usr/bin/env bash
# Observability smoke: run a small sweep with --obs-dir, require the
# OpenMetrics/JSONL exports to parse and cover the core span sources,
# and require the run's artifacts to be byte-identical to a plain run
# with observability off.
#
# Usage: bash scripts/obs_smoke.sh   (from the repo root)
set -euo pipefail

export PYTHONPATH=src
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

PLAIN="$WORK/plain"
OBSERVED="$WORK/observed"
OBS_DIR="$WORK/obs"

echo "== plain run (no observability) =="
python -m repro run fig5 --fast --jobs 2 --out "$PLAIN" \
    > "$WORK/plain.log" 2>&1

echo "== observed run (--obs-dir) =="
python -m repro run fig5 --fast --jobs 2 --out "$OBSERVED" \
    --obs-dir "$OBS_DIR" > "$WORK/observed.log" 2>&1
grep "observability: wrote" "$WORK/observed.log"

echo "== diff: observed artifacts vs plain run =="
diff -r "$PLAIN" "$OBSERVED"

echo "== validate exports (strict re-parse + source coverage) =="
test -f "$OBS_DIR/metrics.om"
test -f "$OBS_DIR/spans.jsonl"
test -f "$OBS_DIR/summary.json"
# `repro obs` refuses to load an obs-dir whose OpenMetrics text or
# span rows fail schema validation, so these ARE the parse checks.
python -m repro obs summary --obs-dir "$OBS_DIR" \
    --require sim,executor,supervisor,monitor
python -m repro obs export --obs-dir "$OBS_DIR" | tail -1 | grep -q "# EOF"
python -m repro obs spans --obs-dir "$OBS_DIR" --source sim --limit 5

echo "observability smoke passed: exports valid, artifacts byte-identical"
