#!/usr/bin/env bash
# Chaos-fuzz smoke: run a fixed-seed fuzz campaign twice and require
# byte-identical plans and resilience.json (the campaign is a pure
# function of its seed); require every invariant oracle to hold on
# HEAD; then replay the committed planted-violation fixture, require
# the vm-conservation oracle to catch it, and require the shrinker to
# reduce it to exactly the committed known-minimal plan.
#
# Usage: bash scripts/chaos_fuzz_smoke.sh   (from the repo root)
#   FUZZ_SEED=2015  campaign master seed (default 2015)
#   FUZZ_RUNS=4     campaign size (default 4)
set -euo pipefail

export PYTHONPATH=src
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

SEED="${FUZZ_SEED:-2015}"
RUNS="${FUZZ_RUNS:-4}"
FIXTURES=tests/faults/fixtures

echo "== fuzz campaign (seed $SEED, $RUNS runs): invariants on HEAD =="
python -m repro chaos fuzz --seed "$SEED" --runs "$RUNS" \
    --out-dir "$WORK/camp-a" | tee "$WORK/camp-a.log"
grep -q "all invariants held" "$WORK/camp-a.log"
test -f "$WORK/camp-a/resilience.json"

echo "== re-run: same seed must be byte-identical =="
python -m repro chaos fuzz --seed "$SEED" --runs "$RUNS" \
    --out-dir "$WORK/camp-b" > /dev/null
diff -r "$WORK/camp-a" "$WORK/camp-b"

echo "== planted violation fixture must fail under replay =="
set +e
python -m repro chaos replay "$FIXTURES/planted_vm_leak.json" \
    --out-dir "$WORK/replay" > "$WORK/replay.log" 2>&1
REPLAY_CODE=$?
set -e
test "$REPLAY_CODE" -eq 1
grep -q "\[FAIL\] vm-conservation" "$WORK/replay.log"

echo "== shrinker must reduce it to the committed minimal plan =="
python -m repro chaos shrink "$FIXTURES/planted_vm_leak.json" \
    --out "$WORK/shrunk.min.json" --out-dir "$WORK/shrink" \
    | tee "$WORK/shrink.log"
diff "$WORK/shrunk.min.json" "$FIXTURES/planted_vm_leak.min.json"
grep -q "still failing: vm-conservation" "$WORK/shrink.log"

echo "== minimal repro still fails under replay =="
set +e
python -m repro chaos replay "$FIXTURES/planted_vm_leak.min.json" \
    --out-dir "$WORK/replay-min" > "$WORK/replay-min.log" 2>&1
MIN_CODE=$?
set -e
test "$MIN_CODE" -eq 1
grep -q "\[FAIL\] vm-conservation" "$WORK/replay-min.log"

# Keep the scorecard around for the CI artifact upload.
cp "$WORK/camp-a/resilience.json" resilience.json

echo "chaos-fuzz smoke passed: campaign byte-reproducible, planted" \
     "violation caught and shrunk to the known minimum"
